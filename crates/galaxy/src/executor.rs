//! The galaxy execution engine: one CJOIN operator per fact table plus the
//! fact-to-fact join operator over their outputs.
//!
//! §5 of the paper: "it now becomes possible to register each Qi with the CJOIN
//! operator that handles the concurrent star queries on the corresponding fact table,
//! the difference being that the Distributor pipes the results of Qi to a
//! fact-to-fact join operator instead of an aggregation operator." [`GalaxyEngine`]
//! realises exactly that topology: it keeps an always-on [`CjoinEngine`] per fact
//! table, so the star sub-queries of every in-flight galaxy query (and any plain star
//! queries submitted alongside them) share those pipelines' I/O and computation.

use std::sync::Arc;

use cjoin_common::{Error, Result};
use cjoin_core::{CjoinConfig, CjoinEngine, QueryHandle};
use cjoin_query::{QueryResult, StarQuery};
use cjoin_storage::Catalog;

use crate::merge::{merge_results, MergePlan};
use crate::query::{GalaxyQuery, Side};

/// Builds a per-fact-table view of a galaxy catalog: a new [`Catalog`] that shares
/// every table of `source` (the `Arc`s are cloned, not the data) but designates
/// `fact_table` as its fact table.
///
/// A single [`CjoinEngine`] serves exactly one fact table; a galaxy schema therefore
/// needs one catalog view per fact table. Dimension tables are shared between the
/// views, the way a warehouse shares conformed dimensions between its stars.
///
/// # Errors
/// Fails if `fact_table` is not registered in `source`.
pub fn split_catalog(source: &Arc<Catalog>, fact_table: &str) -> Result<Arc<Catalog>> {
    let fact = source.table(fact_table)?;
    let view = Catalog::new();
    for name in source.table_names() {
        if name != fact_table {
            view.add_table(source.table(&name)?);
        }
    }
    view.add_fact_table(fact);
    if let Some(scheme) = source.fact_partitioning() {
        if source.fact_table_name().as_deref() == Some(fact_table) {
            view.set_fact_partitioning(scheme);
        }
    }
    Ok(Arc::new(view))
}

/// Handle to a galaxy query whose two star sub-queries are in flight.
#[derive(Debug)]
pub struct GalaxyHandle {
    name: String,
    handle_a: QueryHandle,
    handle_b: QueryHandle,
    plan: MergePlan,
}

impl GalaxyHandle {
    /// The query's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The CJOIN handles of the two star sub-queries (side A, side B), e.g. for
    /// progress reporting: each side's progress is its continuous scan position.
    pub fn side_handles(&self) -> (&QueryHandle, &QueryHandle) {
        (&self.handle_a, &self.handle_b)
    }

    /// Blocks until both star sub-queries complete, then runs the fact-to-fact join
    /// operator and returns the finalised result.
    ///
    /// # Errors
    /// Fails if either CJOIN pipeline shuts down before its sub-query completes.
    pub fn wait(self) -> Result<QueryResult> {
        let result_a = self.handle_a.wait()?;
        let result_b = self.handle_b.wait()?;
        Ok(merge_results(&result_a, &result_b, &self.plan))
    }
}

/// A galaxy-schema query engine: one always-on CJOIN pipeline per fact table.
pub struct GalaxyEngine {
    source: Arc<Catalog>,
    fact_tables: [String; 2],
    engines: [CjoinEngine; 2],
}

impl GalaxyEngine {
    /// Starts one CJOIN pipeline over each of the two fact tables of `catalog`.
    ///
    /// # Errors
    /// Fails if either fact table is missing from the catalog or the configuration is
    /// invalid.
    pub fn start(
        catalog: Arc<Catalog>,
        fact_table_a: &str,
        fact_table_b: &str,
        config: CjoinConfig,
    ) -> Result<Self> {
        if fact_table_a == fact_table_b {
            return Err(Error::invalid_config(
                "a galaxy engine needs two distinct fact tables; use CjoinEngine for a single star",
            ));
        }
        let catalog_a = split_catalog(&catalog, fact_table_a)?;
        let catalog_b = split_catalog(&catalog, fact_table_b)?;
        let engine_a = CjoinEngine::start(catalog_a, config.clone())?;
        let engine_b = CjoinEngine::start(catalog_b, config)?;
        Ok(Self {
            source: catalog,
            fact_tables: [fact_table_a.to_string(), fact_table_b.to_string()],
            engines: [engine_a, engine_b],
        })
    }

    /// The CJOIN engine serving `side`'s fact table. Plain star queries over that
    /// fact table can be submitted to it directly and will share the pipeline with
    /// the galaxy sub-queries.
    pub fn engine(&self, side: Side) -> &CjoinEngine {
        &self.engines[side.index()]
    }

    /// The fact table name served by `side`.
    pub fn fact_table(&self, side: Side) -> &str {
        &self.fact_tables[side.index()]
    }

    /// The shared source catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.source
    }

    /// Registers the two star sub-queries of `query` with their respective CJOIN
    /// pipelines and returns a handle for the fact-to-fact join.
    ///
    /// # Errors
    /// Fails if the query decomposition is invalid, a side references the wrong fact
    /// table, or either admission fails (e.g. the `maxConc` limit is reached).
    pub fn submit(&self, query: GalaxyQuery) -> Result<GalaxyHandle> {
        for side in [Side::A, Side::B] {
            let expected = self.fact_table(side);
            let got = &query.side(side).fact_table;
            if got != expected {
                return Err(Error::invalid_config(format!(
                    "galaxy query '{}': side {} references fact table '{}' but this engine serves '{}'",
                    query.name,
                    side.label(),
                    got,
                    expected
                )));
            }
        }
        let mut decomposed = query.decompose()?;
        // Pin both sides to one snapshot so they see the same database state even if
        // updates commit between the two admissions.
        if decomposed.star_a.snapshot.is_none() {
            let snapshot = self.source.snapshots().current();
            decomposed.star_a.snapshot = Some(snapshot);
            decomposed.star_b.snapshot = Some(snapshot);
        }
        let handle_a = self.submit_side(Side::A, decomposed.star_a)?;
        let handle_b = self.submit_side(Side::B, decomposed.star_b)?;
        Ok(GalaxyHandle {
            name: query.name,
            handle_a,
            handle_b,
            plan: decomposed.plan,
        })
    }

    /// Convenience: submits a galaxy query and blocks until its result is available.
    ///
    /// # Errors
    /// Propagates submission and wait errors.
    pub fn execute(&self, query: GalaxyQuery) -> Result<QueryResult> {
        self.submit(query)?.wait()
    }

    /// Shuts both pipelines down. Idempotent.
    pub fn shutdown(&self) {
        for engine in &self.engines {
            engine.shutdown();
        }
    }

    fn submit_side(&self, side: Side, star: StarQuery) -> Result<QueryHandle> {
        self.engines[side.index()].submit(star)
    }
}

impl cjoin_query::JoinEngine for GalaxyEngine {
    fn name(&self) -> &str {
        "GALAXY (2×CJOIN)"
    }

    /// Routes a plain star query to the side pipeline whose catalog it binds
    /// against, so star and galaxy queries share the same always-on operators.
    /// A query that binds against both sides (e.g. a fact-predicate-free
    /// `COUNT(*)` with no dimension joins) is ambiguous in a galaxy schema and
    /// is deterministically routed to side A.
    fn submit(&self, query: StarQuery) -> Result<Box<dyn cjoin_query::QueryTicket>> {
        let side = if query.bind(self.engines[Side::A.index()].catalog()).is_ok() {
            Side::A
        } else {
            Side::B
        };
        let handle = self.submit_side(side, query)?;
        Ok(Box::new(handle))
    }

    /// Sums the two side pipelines' counters. Galaxy queries contribute two
    /// submissions/completions each (one star sub-query per side).
    fn stats(&self) -> cjoin_query::EngineStats {
        let mut total = cjoin_query::EngineStats::default();
        for engine in &self.engines {
            let stats = engine.stats();
            total.queries_submitted += stats.queries_admitted;
            total.queries_completed += stats.queries_completed;
            total.active_queries += stats.active_queries;
            total.fact_tuples_scanned += stats.tuples_scanned;
        }
        total
    }

    fn shutdown(&self) {
        GalaxyEngine::shutdown(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_query::{AggFunc, ColumnRef, Predicate};
    use cjoin_storage::{Column, Row, Schema, SnapshotId, Table, Value};

    use crate::query::{GalaxyAggregateSpec, SideSpec};

    /// A small galaxy: `orders` and `shipments` share a `customer` dimension and join
    /// on `custkey`.
    fn galaxy_catalog() -> Arc<Catalog> {
        let catalog = Catalog::new();

        let customer = Table::new(Schema::new(
            "customer",
            vec![Column::int("c_custkey"), Column::str("c_region")],
        ));
        for (k, region) in [(1, "ASIA"), (2, "ASIA"), (3, "EUROPE"), (4, "AMERICA")] {
            customer
                .insert(vec![Value::int(k), Value::str(region)], SnapshotId::INITIAL)
                .unwrap();
        }
        catalog.add_table(Arc::new(customer));

        let orders = Table::new(Schema::new(
            "orders",
            vec![Column::int("o_custkey"), Column::int("o_amount")],
        ));
        orders.insert_batch_unchecked(
            (0..120).map(|i| Row::new(vec![Value::int(i % 4 + 1), Value::int(10 + i)])),
            SnapshotId::INITIAL,
        );
        catalog.add_table(Arc::new(orders));

        let shipments = Table::new(Schema::new(
            "shipments",
            vec![Column::int("s_custkey"), Column::int("s_weight")],
        ));
        shipments.insert_batch_unchecked(
            (0..90).map(|i| Row::new(vec![Value::int(i % 3 + 1), Value::int(i)])),
            SnapshotId::INITIAL,
        );
        catalog.add_table(Arc::new(shipments));

        Arc::new(catalog)
    }

    fn test_config() -> CjoinConfig {
        CjoinConfig::default()
            .with_worker_threads(2)
            .with_max_concurrency(16)
            .with_batch_size(64)
    }

    fn cross_query() -> GalaxyQuery {
        GalaxyQuery::builder("orders_x_shipments")
            .side_a(SideSpec::new("orders", "o_custkey").join_dimension(
                "customer",
                "o_custkey",
                "c_custkey",
                Predicate::eq("c_region", "ASIA"),
            ))
            .side_b(SideSpec::new("shipments", "s_custkey"))
            .group_by(Side::A, ColumnRef::dim("customer", "c_region"))
            .aggregate(GalaxyAggregateSpec::count_star())
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Sum,
                Side::B,
                ColumnRef::fact("s_weight"),
            ))
            .build()
    }

    #[test]
    fn split_catalog_shares_tables_and_designates_fact() {
        let source = galaxy_catalog();
        let view = split_catalog(&source, "orders").unwrap();
        assert_eq!(view.fact_table().unwrap().name(), "orders");
        assert!(Arc::ptr_eq(
            &view.table("customer").unwrap(),
            &source.table("customer").unwrap()
        ));
        assert_eq!(view.table_names().len(), 3);
        assert!(split_catalog(&source, "nonexistent").is_err());
    }

    #[test]
    fn galaxy_engine_matches_reference_oracle() {
        let catalog = galaxy_catalog();
        let engine =
            GalaxyEngine::start(Arc::clone(&catalog), "orders", "shipments", test_config())
                .unwrap();
        let query = cross_query();
        let expected = crate::reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();
        let result = engine.execute(query).unwrap();
        assert!(
            result.approx_eq(&expected),
            "diff: {:?}",
            result.diff(&expected)
        );
        assert!(!result.is_empty());
        engine.shutdown();
    }

    #[test]
    fn rejects_mismatched_fact_tables_and_duplicate_facts() {
        let catalog = galaxy_catalog();
        assert!(
            GalaxyEngine::start(Arc::clone(&catalog), "orders", "orders", test_config()).is_err()
        );

        let engine =
            GalaxyEngine::start(Arc::clone(&catalog), "orders", "shipments", test_config())
                .unwrap();
        let swapped = GalaxyQuery::builder("swapped")
            .side_a(SideSpec::new("shipments", "s_custkey"))
            .side_b(SideSpec::new("orders", "o_custkey"))
            .aggregate(GalaxyAggregateSpec::count_star())
            .build();
        assert!(engine.submit(swapped).is_err());
        assert_eq!(engine.fact_table(Side::A), "orders");
        assert_eq!(engine.fact_table(Side::B), "shipments");
        engine.shutdown();
    }

    #[test]
    fn plain_star_queries_share_the_side_pipelines() {
        let catalog = galaxy_catalog();
        let engine =
            GalaxyEngine::start(Arc::clone(&catalog), "orders", "shipments", test_config())
                .unwrap();

        // A plain star query on side A's engine runs alongside the galaxy query.
        let star = cjoin_query::StarQuery::builder("plain_star")
            .join_dimension(
                "customer",
                "o_custkey",
                "c_custkey",
                Predicate::eq("c_region", "EUROPE"),
            )
            .aggregate(cjoin_query::AggregateSpec::count_star())
            .build();
        let star_expected = cjoin_query::reference::evaluate(
            engine.engine(Side::A).catalog(),
            &star,
            SnapshotId::INITIAL,
        )
        .unwrap();

        let galaxy_handle = engine.submit(cross_query()).unwrap();
        let star_handle = engine.engine(Side::A).submit(star).unwrap();

        let galaxy_expected =
            crate::reference::evaluate(&catalog, &cross_query(), SnapshotId::INITIAL).unwrap();
        assert!(galaxy_handle.wait().unwrap().approx_eq(&galaxy_expected));
        assert!(star_handle.wait().unwrap().approx_eq(&star_expected));
        engine.shutdown();
    }

    #[test]
    fn handles_expose_names_and_side_progress() {
        let catalog = galaxy_catalog();
        let engine =
            GalaxyEngine::start(Arc::clone(&catalog), "orders", "shipments", test_config())
                .unwrap();
        let handle = engine.submit(cross_query()).unwrap();
        assert_eq!(handle.name(), "orders_x_shipments");
        let (a, b) = handle.side_handles();
        assert_eq!(a.name(), "orders_x_shipments#a");
        assert_eq!(b.name(), "orders_x_shipments#b");
        let _ = handle.wait().unwrap();
        engine.shutdown();
    }
}
