//! The fact-to-fact join operator: merging two partially aggregated star results.
//!
//! Each star sub-query produced by [`crate::GalaxyQuery::decompose`] returns one row
//! per `(pivot key, side group-by columns)` combination, carrying the side-local
//! partial aggregates plus the group's row multiplicity. This module joins the two
//! results on the pivot key and finalises the galaxy query's aggregates:
//!
//! * `COUNT(*)` over the join = Σ multiplicity_A × multiplicity_B
//! * `SUM(col@A)` = Σ partial_sum_A × multiplicity_B (each A-row pairs with every
//!   B-row of the same pivot key), and symmetrically for side B
//! * `COUNT(col@A)` = Σ partial_count_A × multiplicity_B
//! * `MIN`/`MAX` are join-invariant: the minimum over the join equals the minimum of
//!   the per-pivot partial minima that actually find a join partner
//! * `AVG(col@A)` = `SUM(col@A)` / `COUNT(col@A)` computed from the partials above
//!
//! This is the role §5 assigns to the operator that the Distributor pipes star
//! results into, in place of a per-query aggregation operator.

use cjoin_common::FxHashMap;
use cjoin_query::{AggValue, QueryResult};
use cjoin_storage::Value;

use crate::query::Side;

/// How one output group-by column is read from the joined side results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeGroupColumn {
    /// Which side's group key carries the value.
    pub side: Side,
    /// Position within that side's group key (position 0 is the pivot).
    pub key_position: usize,
    /// Output column name.
    pub name: String,
}

/// How one output aggregate is computed from the side partials.
///
/// `partial` indices refer to positions within the owning side's aggregate list
/// (the multiplicity `COUNT(*)` appended by the decomposition is *not* counted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeAgg {
    /// `COUNT(*)` over the joined rows.
    CountStar,
    /// `COUNT(col)` on one side.
    CountColumn {
        /// Owning side.
        side: Side,
        /// Index of the side's `COUNT(col)` partial.
        partial: usize,
    },
    /// `SUM(col)` on one side.
    Sum {
        /// Owning side.
        side: Side,
        /// Index of the side's `SUM(col)` partial.
        partial: usize,
    },
    /// `MIN(col)` on one side.
    Min {
        /// Owning side.
        side: Side,
        /// Index of the side's `MIN(col)` partial.
        partial: usize,
    },
    /// `MAX(col)` on one side.
    Max {
        /// Owning side.
        side: Side,
        /// Index of the side's `MAX(col)` partial.
        partial: usize,
    },
    /// `AVG(col)` on one side, finalised from a SUM and a COUNT partial.
    Avg {
        /// Owning side.
        side: Side,
        /// Index of the side's `SUM(col)` partial.
        sum_partial: usize,
        /// Index of the side's `COUNT(col)` partial.
        count_partial: usize,
    },
}

/// The full plan for joining and finalising the two star sub-query results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergePlan {
    /// Output group-by columns, in the galaxy query's order.
    pub group_columns: Vec<MergeGroupColumn>,
    /// Output aggregates, in the galaxy query's order.
    pub aggregates: Vec<MergeAgg>,
    /// Output aggregate labels, parallel to `aggregates`.
    pub aggregate_labels: Vec<String>,
    /// Number of partial aggregates (excluding the multiplicity) per side.
    pub partial_counts: [usize; 2],
}

/// Running state of one output aggregate while pairs of side groups are combined.
#[derive(Debug, Clone)]
enum MergeAcc {
    Count(i128),
    Sum {
        sum: i128,
        seen: bool,
    },
    Extreme {
        current: Option<AggValue>,
        is_min: bool,
    },
    Avg {
        sum: i128,
        count: i128,
    },
}

impl MergeAcc {
    fn new(agg: &MergeAgg) -> Self {
        match agg {
            MergeAgg::CountStar | MergeAgg::CountColumn { .. } => MergeAcc::Count(0),
            MergeAgg::Sum { .. } => MergeAcc::Sum {
                sum: 0,
                seen: false,
            },
            MergeAgg::Min { .. } => MergeAcc::Extreme {
                current: None,
                is_min: true,
            },
            MergeAgg::Max { .. } => MergeAcc::Extreme {
                current: None,
                is_min: false,
            },
            MergeAgg::Avg { .. } => MergeAcc::Avg { sum: 0, count: 0 },
        }
    }

    fn finalize(&self) -> AggValue {
        match self {
            MergeAcc::Count(c) => AggValue::Int(*c),
            MergeAcc::Sum { sum, seen } => {
                if *seen {
                    AggValue::Int(*sum)
                } else {
                    AggValue::Null
                }
            }
            MergeAcc::Extreme { current, .. } => current.clone().unwrap_or(AggValue::Null),
            MergeAcc::Avg { sum, count } => {
                if *count == 0 {
                    AggValue::Null
                } else {
                    AggValue::Float(*sum as f64 / *count as f64)
                }
            }
        }
    }
}

/// Extracts the integer payload of a partial COUNT/SUM, treating NULL as "absent".
fn as_int(value: &AggValue) -> Option<i128> {
    match value {
        AggValue::Int(i) => Some(*i),
        _ => None,
    }
}

/// Compares two MIN/MAX partial values of the same type.
fn better(candidate: &AggValue, current: &AggValue, is_min: bool) -> bool {
    match (candidate, current) {
        (AggValue::Int(a), AggValue::Int(b)) => {
            if is_min {
                a < b
            } else {
                a > b
            }
        }
        (AggValue::Str(a), AggValue::Str(b)) => {
            if is_min {
                a < b
            } else {
                a > b
            }
        }
        // Mismatched or float partials cannot be produced by the decomposition.
        _ => false,
    }
}

/// Joins the two partially aggregated star results on the pivot key and finalises the
/// galaxy query's aggregates.
///
/// `result_a` / `result_b` must be the outputs of the star sub-queries produced by
/// [`crate::GalaxyQuery::decompose`] for the same plan.
pub fn merge_results(
    result_a: &QueryResult,
    result_b: &QueryResult,
    plan: &MergePlan,
) -> QueryResult {
    /// One partially aggregated group row: `(group key, aggregate states)`.
    type GroupRow<'a> = (&'a Vec<Value>, &'a Vec<AggValue>);
    // Index side B by pivot value (position 0 of its group key).
    let mut b_by_pivot: FxHashMap<&Value, Vec<GroupRow<'_>>> = FxHashMap::default();
    for (key, aggs) in result_b.rows() {
        b_by_pivot.entry(&key[0]).or_default().push((key, aggs));
    }

    let multiplicity = |aggs: &[AggValue]| -> i128 { aggs.last().and_then(as_int).unwrap_or(0) };

    let mut groups: std::collections::BTreeMap<Vec<Value>, Vec<MergeAcc>> =
        std::collections::BTreeMap::new();

    for (key_a, aggs_a) in result_a.rows() {
        let Some(matches) = b_by_pivot.get(&key_a[0]) else {
            continue;
        };
        let mult_a = multiplicity(aggs_a);
        for (key_b, aggs_b) in matches {
            let mult_b = multiplicity(aggs_b);
            if mult_a == 0 || mult_b == 0 {
                continue;
            }

            // Assemble the output group key.
            let output_key: Vec<Value> = plan
                .group_columns
                .iter()
                .map(|col| match col.side {
                    Side::A => key_a[col.key_position].clone(),
                    Side::B => key_b[col.key_position].clone(),
                })
                .collect();

            let accs = groups
                .entry(output_key)
                .or_insert_with(|| plan.aggregates.iter().map(MergeAcc::new).collect());

            for (acc, agg) in accs.iter_mut().zip(&plan.aggregates) {
                // The partials of `side` together with the *other* side's multiplicity.
                let side_aggs = |side: Side| -> (&[AggValue], i128) {
                    match side {
                        Side::A => (aggs_a.as_slice(), mult_b),
                        Side::B => (aggs_b.as_slice(), mult_a),
                    }
                };
                match (acc, agg) {
                    (MergeAcc::Count(c), MergeAgg::CountStar) => *c += mult_a * mult_b,
                    (MergeAcc::Count(c), MergeAgg::CountColumn { side, partial }) => {
                        let (aggs, other) = side_aggs(*side);
                        if let Some(count) = as_int(&aggs[*partial]) {
                            *c += count * other;
                        }
                    }
                    (MergeAcc::Sum { sum, seen }, MergeAgg::Sum { side, partial }) => {
                        let (aggs, other) = side_aggs(*side);
                        if let Some(s) = as_int(&aggs[*partial]) {
                            *sum += s * other;
                            *seen = true;
                        }
                    }
                    (MergeAcc::Extreme { current, is_min }, MergeAgg::Min { side, partial })
                    | (MergeAcc::Extreme { current, is_min }, MergeAgg::Max { side, partial }) => {
                        let (aggs, _) = side_aggs(*side);
                        let candidate = &aggs[*partial];
                        if !matches!(candidate, AggValue::Null)
                            && current
                                .as_ref()
                                .is_none_or(|cur| better(candidate, cur, *is_min))
                        {
                            *current = Some(candidate.clone());
                        }
                    }
                    (
                        MergeAcc::Avg { sum, count },
                        MergeAgg::Avg {
                            side,
                            sum_partial,
                            count_partial,
                        },
                    ) => {
                        let (aggs, other) = side_aggs(*side);
                        if let Some(s) = as_int(&aggs[*sum_partial]) {
                            *sum += s * other;
                        }
                        if let Some(c) = as_int(&aggs[*count_partial]) {
                            *count += c * other;
                        }
                    }
                    (acc, agg) => unreachable!("accumulator/plan mismatch: {acc:?} vs {agg:?}"),
                }
            }
        }
    }

    let mut result = QueryResult::new(
        plan.group_columns.iter().map(|c| c.name.clone()).collect(),
        plan.aggregate_labels.clone(),
    );
    for (key, accs) in groups {
        result.insert(key, accs.iter().map(MergeAcc::finalize).collect());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a side result with the given rows: `(key, partials + multiplicity)`.
    fn side_result(rows: Vec<(Vec<Value>, Vec<AggValue>)>) -> QueryResult {
        let key_width = rows.first().map_or(1, |(k, _)| k.len());
        let agg_width = rows.first().map_or(1, |(_, a)| a.len());
        let mut r = QueryResult::new(
            (0..key_width).map(|i| format!("k{i}")).collect(),
            (0..agg_width).map(|i| format!("p{i}")).collect(),
        );
        for (k, a) in rows {
            r.insert(k, a);
        }
        r
    }

    fn count_star_plan() -> MergePlan {
        MergePlan {
            group_columns: vec![],
            aggregates: vec![MergeAgg::CountStar],
            aggregate_labels: vec!["COUNT(*)".into()],
            partial_counts: [0, 0],
        }
    }

    #[test]
    fn count_star_multiplies_multiplicities() {
        // Pivot 1: 2 rows on A, 3 on B -> 6 joined rows. Pivot 2: A only -> dropped.
        let a = side_result(vec![
            (vec![Value::int(1)], vec![AggValue::Int(2)]),
            (vec![Value::int(2)], vec![AggValue::Int(5)]),
        ]);
        let b = side_result(vec![(vec![Value::int(1)], vec![AggValue::Int(3)])]);
        let merged = merge_results(&a, &b, &count_star_plan());
        assert_eq!(merged.num_rows(), 1);
        assert_eq!(merged.aggregate_for(&[]).unwrap()[0], AggValue::Int(6));
    }

    #[test]
    fn empty_join_produces_empty_result() {
        let a = side_result(vec![(vec![Value::int(1)], vec![AggValue::Int(2)])]);
        let b = side_result(vec![(vec![Value::int(9)], vec![AggValue::Int(3)])]);
        let merged = merge_results(&a, &b, &count_star_plan());
        assert!(merged.is_empty());
        assert_eq!(merged.aggregate_columns(), &["COUNT(*)".to_string()]);
    }

    #[test]
    fn sum_scales_with_other_side_multiplicity() {
        // Side A carries SUM partial 100 over 2 rows at pivot 1; side B has 3 rows.
        let plan = MergePlan {
            group_columns: vec![],
            aggregates: vec![MergeAgg::Sum {
                side: Side::A,
                partial: 0,
            }],
            aggregate_labels: vec!["SUM(a.v)".into()],
            partial_counts: [1, 0],
        };
        let a = side_result(vec![(
            vec![Value::int(1)],
            vec![AggValue::Int(100), AggValue::Int(2)],
        )]);
        let b = side_result(vec![(vec![Value::int(1)], vec![AggValue::Int(3)])]);
        let merged = merge_results(&a, &b, &plan);
        assert_eq!(merged.aggregate_for(&[]).unwrap()[0], AggValue::Int(300));
    }

    #[test]
    fn group_columns_come_from_their_side() {
        let plan = MergePlan {
            group_columns: vec![
                MergeGroupColumn {
                    side: Side::A,
                    key_position: 1,
                    name: "a.g".into(),
                },
                MergeGroupColumn {
                    side: Side::B,
                    key_position: 1,
                    name: "b.h".into(),
                },
            ],
            aggregates: vec![MergeAgg::CountStar],
            aggregate_labels: vec!["COUNT(*)".into()],
            partial_counts: [0, 0],
        };
        let a = side_result(vec![
            (vec![Value::int(1), Value::str("x")], vec![AggValue::Int(1)]),
            (vec![Value::int(1), Value::str("y")], vec![AggValue::Int(2)]),
        ]);
        let b = side_result(vec![
            (vec![Value::int(1), Value::str("p")], vec![AggValue::Int(1)]),
            (vec![Value::int(1), Value::str("q")], vec![AggValue::Int(4)]),
        ]);
        let merged = merge_results(&a, &b, &plan);
        assert_eq!(merged.num_rows(), 4);
        assert_eq!(
            merged.group_columns(),
            &["a.g".to_string(), "b.h".to_string()]
        );
        assert_eq!(
            merged
                .aggregate_for(&[Value::str("y"), Value::str("q")])
                .unwrap()[0],
            AggValue::Int(8)
        );
        assert_eq!(
            merged
                .aggregate_for(&[Value::str("x"), Value::str("p")])
                .unwrap()[0],
            AggValue::Int(1)
        );
    }

    #[test]
    fn min_max_ignore_multiplicity_and_nulls() {
        let plan = MergePlan {
            group_columns: vec![],
            aggregates: vec![
                MergeAgg::Min {
                    side: Side::A,
                    partial: 0,
                },
                MergeAgg::Max {
                    side: Side::A,
                    partial: 0,
                },
            ],
            aggregate_labels: vec!["MIN(a.v)".into(), "MAX(a.v)".into()],
            partial_counts: [1, 0],
        };
        let a = side_result(vec![
            (
                vec![Value::int(1)],
                vec![AggValue::Int(5), AggValue::Int(10)],
            ),
            (
                vec![Value::int(2)],
                vec![AggValue::Int(-3), AggValue::Int(1)],
            ),
            (vec![Value::int(3)], vec![AggValue::Null, AggValue::Int(1)]),
            // Pivot 4 has a larger value but no join partner: must not influence MAX.
            (
                vec![Value::int(4)],
                vec![AggValue::Int(999), AggValue::Int(1)],
            ),
        ]);
        let b = side_result(vec![
            (vec![Value::int(1)], vec![AggValue::Int(7)]),
            (vec![Value::int(2)], vec![AggValue::Int(1)]),
            (vec![Value::int(3)], vec![AggValue::Int(1)]),
        ]);
        let merged = merge_results(&a, &b, &plan);
        let aggs = merged.aggregate_for(&[]).unwrap();
        assert_eq!(aggs[0], AggValue::Int(-3));
        assert_eq!(aggs[1], AggValue::Int(5));
    }

    #[test]
    fn avg_combines_sum_and_count_partials() {
        let plan = MergePlan {
            group_columns: vec![],
            aggregates: vec![MergeAgg::Avg {
                side: Side::B,
                sum_partial: 0,
                count_partial: 1,
            }],
            aggregate_labels: vec!["AVG(b.v)".into()],
            partial_counts: [0, 2],
        };
        // Pivot 1: B sum=30 over 3 values, A multiplicity 2 -> contributes 60/6.
        // Pivot 2: B sum=10 over 1 value, A multiplicity 1 -> contributes 10/1.
        let a = side_result(vec![
            (vec![Value::int(1)], vec![AggValue::Int(2)]),
            (vec![Value::int(2)], vec![AggValue::Int(1)]),
        ]);
        let b = side_result(vec![
            (
                vec![Value::int(1)],
                vec![AggValue::Int(30), AggValue::Int(3), AggValue::Int(3)],
            ),
            (
                vec![Value::int(2)],
                vec![AggValue::Int(10), AggValue::Int(1), AggValue::Int(1)],
            ),
        ]);
        let merged = merge_results(&a, &b, &plan);
        let avg = &merged.aggregate_for(&[]).unwrap()[0];
        assert!(avg.approx_eq(&AggValue::Float(70.0 / 7.0)), "{avg:?}");
    }

    #[test]
    fn sum_of_all_null_partials_is_null() {
        let plan = MergePlan {
            group_columns: vec![],
            aggregates: vec![MergeAgg::Sum {
                side: Side::A,
                partial: 0,
            }],
            aggregate_labels: vec!["SUM(a.v)".into()],
            partial_counts: [1, 0],
        };
        let a = side_result(vec![(
            vec![Value::int(1)],
            vec![AggValue::Null, AggValue::Int(2)],
        )]);
        let b = side_result(vec![(vec![Value::int(1)], vec![AggValue::Int(3)])]);
        let merged = merge_results(&a, &b, &plan);
        assert_eq!(merged.aggregate_for(&[]).unwrap()[0], AggValue::Null);
    }

    #[test]
    fn string_group_keys_and_string_extremes() {
        let plan = MergePlan {
            group_columns: vec![MergeGroupColumn {
                side: Side::B,
                key_position: 1,
                name: "b.city".into(),
            }],
            aggregates: vec![MergeAgg::Min {
                side: Side::B,
                partial: 0,
            }],
            aggregate_labels: vec!["MIN(b.name)".into()],
            partial_counts: [0, 1],
        };
        let a = side_result(vec![(vec![Value::int(1)], vec![AggValue::Int(1)])]);
        let b = side_result(vec![
            (
                vec![Value::int(1), Value::str("LYON")],
                vec![AggValue::Str("alpha".into()), AggValue::Int(2)],
            ),
            (
                vec![Value::int(1), Value::str("NICE")],
                vec![AggValue::Str("beta".into()), AggValue::Int(1)],
            ),
        ]);
        let merged = merge_results(&a, &b, &plan);
        assert_eq!(merged.num_rows(), 2);
        assert_eq!(
            merged.aggregate_for(&[Value::str("LYON")]).unwrap()[0],
            AggValue::Str("alpha".into())
        );
    }
}
