//! The galaxy (two-fact-table) query model and its decomposition into star sub-queries.

use cjoin_common::{Error, Result};
use cjoin_query::{AggFunc, AggregateSpec, ColumnRef, Predicate, StarQuery};
use cjoin_storage::SnapshotId;

use crate::merge::{MergeAgg, MergeGroupColumn, MergePlan};

/// Which of the two fact tables (and its star) a column or aggregate refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The first fact table.
    A,
    /// The second fact table.
    B,
}

impl Side {
    /// Index of the side (`A` → 0, `B` → 1).
    pub fn index(self) -> usize {
        match self {
            Side::A => 0,
            Side::B => 1,
        }
    }

    /// Short label used in generated column names.
    pub fn label(self) -> &'static str {
        match self {
            Side::A => "a",
            Side::B => "b",
        }
    }
}

/// A column reference qualified with the side it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct GalaxyColumnRef {
    /// Which star the column lives in.
    pub side: Side,
    /// The column within that star (fact column or a joined dimension's column).
    pub column: ColumnRef,
}

impl GalaxyColumnRef {
    /// A column on side `side`.
    pub fn new(side: Side, column: ColumnRef) -> Self {
        Self { side, column }
    }

    /// Display name, e.g. `a.customer.c_region` or `b.lo_revenue`.
    pub fn display(&self) -> String {
        format!("{}.{}", self.side.label(), self.column)
    }
}

/// One aggregate in a galaxy query's SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct GalaxyAggregateSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input column; `None` means `COUNT(*)` over the joined rows.
    pub input: Option<GalaxyColumnRef>,
}

impl GalaxyAggregateSpec {
    /// `COUNT(*)` over the fact-to-fact join result.
    pub fn count_star() -> Self {
        Self {
            func: AggFunc::Count,
            input: None,
        }
    }

    /// An aggregate over a column of one side.
    pub fn over(func: AggFunc, side: Side, column: ColumnRef) -> Self {
        Self {
            func,
            input: Some(GalaxyColumnRef::new(side, column)),
        }
    }

    /// Label used in the result header, e.g. `SUM(b.lo_revenue)`.
    pub fn label(&self) -> String {
        match &self.input {
            Some(col) => format!("{}({})", self.func, col.display()),
            None => format!("{}(*)", self.func),
        }
    }
}

/// One side of a galaxy query: a star sub-query over one fact table, plus the
/// foreign-key column used as the fact-to-fact pivot.
#[derive(Debug, Clone, PartialEq)]
pub struct SideSpec {
    /// The fact table at the centre of this star.
    pub fact_table: String,
    /// The fact column holding the fact-to-fact join key (§5's "pivot").
    pub pivot_column: String,
    /// Selection predicate on the fact table (`c_i0`).
    pub fact_predicate: Predicate,
    /// Fact-to-dimension joins: `(dimension table, fact FK column, dimension key
    /// column, dimension predicate)`.
    pub dimensions: Vec<(String, String, String, Predicate)>,
}

impl SideSpec {
    /// Creates a side over `fact_table`, joined to the other side through
    /// `pivot_column`.
    pub fn new(fact_table: impl Into<String>, pivot_column: impl Into<String>) -> Self {
        Self {
            fact_table: fact_table.into(),
            pivot_column: pivot_column.into(),
            fact_predicate: Predicate::True,
            dimensions: Vec::new(),
        }
    }

    /// Sets the fact-table predicate.
    pub fn fact_predicate(mut self, predicate: Predicate) -> Self {
        self.fact_predicate = predicate;
        self
    }

    /// Adds a fact-to-dimension join with a selection predicate on the dimension.
    pub fn join_dimension(
        mut self,
        table: impl Into<String>,
        fact_fk_column: impl Into<String>,
        dim_key_column: impl Into<String>,
        predicate: Predicate,
    ) -> Self {
        self.dimensions.push((
            table.into(),
            fact_fk_column.into(),
            dim_key_column.into(),
            predicate,
        ));
        self
    }
}

/// A galaxy query: the equi-join of two star sub-queries on their pivot columns, with
/// group-by columns and aggregates drawn from either side.
#[derive(Debug, Clone, PartialEq)]
pub struct GalaxyQuery {
    /// Human-readable name.
    pub name: String,
    /// The two star sides, indexed by [`Side::index`].
    pub sides: [SideSpec; 2],
    /// GROUP BY columns (each on one side).
    pub group_by: Vec<GalaxyColumnRef>,
    /// Aggregates over the joined rows.
    pub aggregates: Vec<GalaxyAggregateSpec>,
    /// Snapshot the query reads; `None` means "latest at submission time".
    pub snapshot: Option<SnapshotId>,
}

impl GalaxyQuery {
    /// Starts building a galaxy query.
    pub fn builder(name: impl Into<String>) -> GalaxyQueryBuilder {
        GalaxyQueryBuilder::new(name)
    }

    /// The side specification for `side`.
    pub fn side(&self, side: Side) -> &SideSpec {
        &self.sides[side.index()]
    }

    /// Decomposes the query into one star sub-query per fact table plus the plan that
    /// joins and finalises their partially aggregated outputs.
    ///
    /// Each star sub-query groups by `(pivot key, this side's group-by columns)` and
    /// computes, per group, the side-local partial aggregates plus the group's row
    /// multiplicity (`COUNT(*)`). The [`MergePlan`] records how the fact-to-fact join
    /// operator combines those partials into the final aggregates.
    ///
    /// # Errors
    /// Fails if the query has no aggregates (the general case of §2.1 assumes at
    /// least one).
    pub fn decompose(&self) -> Result<DecomposedGalaxy> {
        if self.aggregates.is_empty() {
            return Err(Error::invalid_config(format!(
                "galaxy query '{}' has no aggregates",
                self.name
            )));
        }

        // Per-side builders: group-by lists and partial aggregate lists.
        let mut side_group_cols: [Vec<ColumnRef>; 2] = [Vec::new(), Vec::new()];
        let mut side_partials: [Vec<AggregateSpec>; 2] = [Vec::new(), Vec::new()];

        let mut group_columns = Vec::with_capacity(self.group_by.len());
        for col in &self.group_by {
            let side = col.side;
            let list = &mut side_group_cols[side.index()];
            let position = match list.iter().position(|c| c == &col.column) {
                Some(p) => p,
                None => {
                    list.push(col.column.clone());
                    list.len() - 1
                }
            };
            group_columns.push(MergeGroupColumn {
                side,
                // Position 0 of the star sub-query's group key is the pivot.
                key_position: 1 + position,
                name: col.display(),
            });
        }

        // Registers a partial aggregate on `side`, reusing an identical existing one.
        let mut add_partial = |side: Side, func: AggFunc, input: &ColumnRef| -> usize {
            let list = &mut side_partials[side.index()];
            let candidate = AggregateSpec::over(func, input.clone());
            match list.iter().position(|a| a == &candidate) {
                Some(p) => p,
                None => {
                    list.push(candidate);
                    list.len() - 1
                }
            }
        };

        let mut merge_aggs = Vec::with_capacity(self.aggregates.len());
        let mut labels = Vec::with_capacity(self.aggregates.len());
        for agg in &self.aggregates {
            labels.push(agg.label());
            let merge = match (&agg.input, agg.func) {
                (None, AggFunc::Count) => MergeAgg::CountStar,
                (None, func) => {
                    return Err(Error::invalid_config(format!(
                        "galaxy query '{}': {func} requires an input column",
                        self.name
                    )))
                }
                (Some(col), AggFunc::Count) => MergeAgg::CountColumn {
                    side: col.side,
                    partial: add_partial(col.side, AggFunc::Count, &col.column),
                },
                (Some(col), AggFunc::Sum) => MergeAgg::Sum {
                    side: col.side,
                    partial: add_partial(col.side, AggFunc::Sum, &col.column),
                },
                (Some(col), AggFunc::Min) => MergeAgg::Min {
                    side: col.side,
                    partial: add_partial(col.side, AggFunc::Min, &col.column),
                },
                (Some(col), AggFunc::Max) => MergeAgg::Max {
                    side: col.side,
                    partial: add_partial(col.side, AggFunc::Max, &col.column),
                },
                (Some(col), AggFunc::Avg) => MergeAgg::Avg {
                    side: col.side,
                    sum_partial: add_partial(col.side, AggFunc::Sum, &col.column),
                    count_partial: add_partial(col.side, AggFunc::Count, &col.column),
                },
            };
            merge_aggs.push(merge);
        }

        let partial_counts = [side_partials[0].len(), side_partials[1].len()];

        let build_star = |side: Side| -> StarQuery {
            let spec = self.side(side);
            let mut builder = StarQuery::builder(format!("{}#{}", self.name, side.label()))
                .fact_predicate(spec.fact_predicate.clone())
                // The pivot key is the first group-by column of the star sub-query.
                .group_by(ColumnRef::fact(spec.pivot_column.clone()));
            for (table, fk, key, pred) in &spec.dimensions {
                builder =
                    builder.join_dimension(table.clone(), fk.clone(), key.clone(), pred.clone());
            }
            for col in &side_group_cols[side.index()] {
                builder = builder.group_by(col.clone());
            }
            for partial in &side_partials[side.index()] {
                builder = builder.aggregate(partial.clone());
            }
            // The group's multiplicity is always the last aggregate.
            builder = builder.aggregate(AggregateSpec::count_star());
            if let Some(snapshot) = self.snapshot {
                builder = builder.snapshot(snapshot);
            }
            builder.build()
        };

        Ok(DecomposedGalaxy {
            star_a: build_star(Side::A),
            star_b: build_star(Side::B),
            plan: MergePlan {
                group_columns,
                aggregates: merge_aggs,
                aggregate_labels: labels,
                partial_counts,
            },
        })
    }
}

/// Builder for [`GalaxyQuery`].
#[derive(Debug, Clone)]
pub struct GalaxyQueryBuilder {
    name: String,
    side_a: Option<SideSpec>,
    side_b: Option<SideSpec>,
    group_by: Vec<GalaxyColumnRef>,
    aggregates: Vec<GalaxyAggregateSpec>,
    snapshot: Option<SnapshotId>,
}

impl GalaxyQueryBuilder {
    fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            side_a: None,
            side_b: None,
            group_by: Vec::new(),
            aggregates: Vec::new(),
            snapshot: None,
        }
    }

    /// Sets the first star side.
    pub fn side_a(mut self, side: SideSpec) -> Self {
        self.side_a = Some(side);
        self
    }

    /// Sets the second star side.
    pub fn side_b(mut self, side: SideSpec) -> Self {
        self.side_b = Some(side);
        self
    }

    /// Adds a GROUP BY column on `side`.
    pub fn group_by(mut self, side: Side, column: ColumnRef) -> Self {
        self.group_by.push(GalaxyColumnRef::new(side, column));
        self
    }

    /// Adds an aggregate.
    pub fn aggregate(mut self, spec: GalaxyAggregateSpec) -> Self {
        self.aggregates.push(spec);
        self
    }

    /// Pins the query to a snapshot.
    pub fn snapshot(mut self, snapshot: SnapshotId) -> Self {
        self.snapshot = Some(snapshot);
        self
    }

    /// Finishes the query.
    ///
    /// # Panics
    /// Panics if either side was not provided — a galaxy query is by definition
    /// two-sided.
    pub fn build(self) -> GalaxyQuery {
        GalaxyQuery {
            name: self.name,
            sides: [
                self.side_a.expect("galaxy query requires side A"),
                self.side_b.expect("galaxy query requires side B"),
            ],
            group_by: self.group_by,
            aggregates: self.aggregates,
            snapshot: self.snapshot,
        }
    }
}

/// The result of [`GalaxyQuery::decompose`]: one star sub-query per fact table plus
/// the plan for joining their partially aggregated results.
#[derive(Debug, Clone)]
pub struct DecomposedGalaxy {
    /// The star sub-query registered with side A's CJOIN operator.
    pub star_a: StarQuery,
    /// The star sub-query registered with side B's CJOIN operator.
    pub star_b: StarQuery,
    /// The fact-to-fact join / finalisation plan.
    pub plan: MergePlan,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> GalaxyQuery {
        GalaxyQuery::builder("cross_sell")
            .side_a(
                SideSpec::new("orders", "o_custkey")
                    .fact_predicate(Predicate::between("o_orderdate", 19940101, 19941231))
                    .join_dimension(
                        "customer",
                        "o_custkey",
                        "c_custkey",
                        Predicate::eq("c_region", "ASIA"),
                    ),
            )
            .side_b(SideSpec::new("returns", "r_custkey"))
            .group_by(Side::A, ColumnRef::dim("customer", "c_nation"))
            .aggregate(GalaxyAggregateSpec::count_star())
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Sum,
                Side::B,
                ColumnRef::fact("r_amount"),
            ))
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Avg,
                Side::B,
                ColumnRef::fact("r_amount"),
            ))
            .build()
    }

    #[test]
    fn builder_populates_fields() {
        let q = sample_query();
        assert_eq!(q.name, "cross_sell");
        assert_eq!(q.side(Side::A).fact_table, "orders");
        assert_eq!(q.side(Side::B).fact_table, "returns");
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.aggregates.len(), 3);
        assert_eq!(q.aggregates[1].label(), "SUM(b.r_amount)");
        assert_eq!(q.aggregates[0].label(), "COUNT(*)");
        assert!(q.snapshot.is_none());
    }

    #[test]
    #[should_panic(expected = "side B")]
    fn builder_requires_both_sides() {
        let _ = GalaxyQuery::builder("incomplete")
            .side_a(SideSpec::new("orders", "o_custkey"))
            .aggregate(GalaxyAggregateSpec::count_star())
            .build();
    }

    #[test]
    fn decompose_builds_pivot_grouped_star_queries() {
        let q = sample_query();
        let d = q.decompose().unwrap();

        // Side A: groups by pivot + c_nation, carries only the multiplicity count.
        assert_eq!(d.star_a.name, "cross_sell#a");
        assert_eq!(d.star_a.group_by.len(), 2);
        assert_eq!(d.star_a.group_by[0], ColumnRef::fact("o_custkey"));
        assert_eq!(d.star_a.group_by[1], ColumnRef::dim("customer", "c_nation"));
        assert_eq!(d.star_a.aggregates.len(), 1, "only COUNT(*) on side A");
        assert_eq!(d.star_a.dimensions.len(), 1);
        assert!(!d.star_a.fact_predicate.is_true());

        // Side B: groups by pivot only, carries SUM + COUNT partials + multiplicity.
        assert_eq!(d.star_b.name, "cross_sell#b");
        assert_eq!(d.star_b.group_by.len(), 1);
        assert_eq!(d.star_b.aggregates.len(), 3);
        assert_eq!(d.plan.partial_counts, [0, 2]);

        // Merge plan: one group column from side A, three aggregates.
        assert_eq!(d.plan.group_columns.len(), 1);
        assert_eq!(d.plan.group_columns[0].side, Side::A);
        assert_eq!(d.plan.group_columns[0].key_position, 1);
        assert_eq!(d.plan.aggregates.len(), 3);
        assert!(matches!(d.plan.aggregates[0], MergeAgg::CountStar));
        assert!(matches!(
            d.plan.aggregates[1],
            MergeAgg::Sum {
                side: Side::B,
                partial: 0
            }
        ));
        assert!(matches!(
            d.plan.aggregates[2],
            MergeAgg::Avg {
                side: Side::B,
                sum_partial: 0,
                count_partial: 1
            }
        ));
    }

    #[test]
    fn decompose_deduplicates_partials_and_group_columns() {
        let q = GalaxyQuery::builder("dedup")
            .side_a(SideSpec::new("f1", "k"))
            .side_b(SideSpec::new("f2", "k"))
            .group_by(Side::A, ColumnRef::fact("x"))
            .group_by(Side::A, ColumnRef::fact("x"))
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Sum,
                Side::A,
                ColumnRef::fact("v"),
            ))
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Avg,
                Side::A,
                ColumnRef::fact("v"),
            ))
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Sum,
                Side::A,
                ColumnRef::fact("v"),
            ))
            .build();
        let d = q.decompose().unwrap();
        // SUM(v) shared by the two SUMs and the AVG; COUNT(v) added once for the AVG.
        assert_eq!(d.plan.partial_counts, [2, 0]);
        assert_eq!(
            d.star_a.aggregates.len(),
            3,
            "SUM, COUNT partials + multiplicity"
        );
        // The duplicated group-by column maps to the same key position.
        assert_eq!(
            d.plan.group_columns[0].key_position,
            d.plan.group_columns[1].key_position
        );
        assert_eq!(d.star_a.group_by.len(), 2, "pivot + deduplicated x");
    }

    #[test]
    fn decompose_rejects_aggregate_free_queries() {
        let q = GalaxyQuery::builder("no_aggs")
            .side_a(SideSpec::new("f1", "k"))
            .side_b(SideSpec::new("f2", "k"))
            .build();
        assert!(q.decompose().is_err());
    }

    #[test]
    fn snapshot_is_propagated_to_both_sides() {
        let mut q = sample_query();
        q.snapshot = Some(SnapshotId(7));
        let d = q.decompose().unwrap();
        assert_eq!(d.star_a.snapshot, Some(SnapshotId(7)));
        assert_eq!(d.star_b.snapshot, Some(SnapshotId(7)));
    }

    #[test]
    fn side_helpers() {
        assert_eq!(Side::A.index(), 0);
        assert_eq!(Side::B.index(), 1);
        assert_eq!(Side::A.label(), "a");
        assert_eq!(Side::B.label(), "b");
        let col = GalaxyColumnRef::new(Side::B, ColumnRef::dim("date", "d_year"));
        assert_eq!(col.display(), "b.date.d_year");
    }
}
