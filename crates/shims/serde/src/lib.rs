//! Offline shim for `serde`.
//!
//! The build environment has no registry access. The workspace currently uses
//! serde only for `#[derive(Serialize, Deserialize)]` annotations on plain data
//! types — nothing serializes at runtime — so this facade provides marker traits
//! and re-exports the no-op derives from the sibling `serde_derive` shim.
//!
//! Blanket impls make every type "serializable" so generic bounds written
//! against these traits keep compiling. When a registry is available, point the
//! root `[workspace.dependencies]` at the real crates instead.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
