//! Offline shim for `serde_derive`.
//!
//! The build environment for this workspace has no registry access, so the real
//! `serde_derive` cannot be fetched. The workspace only uses serde derives as
//! annotations (no serialization is performed at runtime yet), so these derive
//! macros expand to nothing. When a registry is available, replace the `serde`
//! and `serde_derive` entries in the root `[workspace.dependencies]` with the
//! real crates — no source change needed.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
