//! MPMC channels with crossbeam's API over `Mutex` + `Condvar`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// `None` for unbounded channels.
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn disconnected_for_recv(&self) -> bool {
        self.senders.load(Ordering::Acquire) == 0
    }

    fn disconnected_for_send(&self) -> bool {
        self.receivers.load(Ordering::Acquire) == 0
    }
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded MPMC channel with space for `cap` messages.
///
/// Unlike crossbeam, `cap = 0` (a rendezvous channel) is approximated with a
/// capacity of one; the workspace never creates zero-capacity channels.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Error returned by [`Sender::send`] when every receiver has been dropped.
/// Carries the unsent message.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: Send> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is full.
    Full(T),
    /// Every receiver has been dropped.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers when the last clone is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking while a bounded channel is full.
    ///
    /// # Errors
    /// Returns the message if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.queue.lock().unwrap();
        if let Some(cap) = self.shared.capacity {
            while queue.len() >= cap {
                if self.shared.disconnected_for_send() {
                    return Err(SendError(msg));
                }
                let (q, timeout) = self
                    .shared
                    .not_full
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap();
                queue = q;
                // Re-check disconnection periodically even without a wakeup, so
                // senders blocked on a full channel notice dropped receivers.
                let _ = timeout;
            }
        }
        if self.shared.disconnected_for_send() {
            return Err(SendError(msg));
        }
        queue.push_back(msg);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Attempts to send without blocking.
    ///
    /// # Errors
    /// [`TrySendError::Full`] when a bounded channel is at capacity,
    /// [`TrySendError::Disconnected`] when every receiver is gone.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut queue = self.shared.queue.lock().unwrap();
        if self.shared.disconnected_for_send() {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.capacity {
            if queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Whether the channel currently buffers no messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's capacity (`None` when unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake all blocked receivers so they observe the
            // disconnect. Acquiring (and releasing) the queue mutex before
            // notifying closes the missed-wakeup window: a receiver that read a
            // stale sender count did so under this lock, so by the time we hold
            // it the receiver is parked in `wait()` and will get the
            // notification; any receiver that locks after us re-reads the
            // count and sees the disconnect.
            drop(self.shared.queue.lock().unwrap());
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of a channel. Cloneable; each message is delivered to
/// exactly one receiver.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one is available.
    ///
    /// # Errors
    /// Returns [`RecvError`] once the channel is empty and every sender has
    /// been dropped (buffered messages are still delivered first).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.disconnected_for_recv() {
                return Err(RecvError);
            }
            queue = self.shared.not_empty.wait(queue).unwrap();
        }
    }

    /// Attempts to receive without blocking.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] when no message is buffered,
    /// [`TryRecvError::Disconnected`] when additionally every sender is gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        if let Some(msg) = queue.pop_front() {
            drop(queue);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if self.shared.disconnected_for_recv() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receives a message, blocking for at most `timeout`.
    ///
    /// # Errors
    /// [`RecvTimeoutError::Timeout`] when no message arrived in time,
    /// [`RecvTimeoutError::Disconnected`] when the channel is empty and every
    /// sender has been dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.disconnected_for_recv() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (q, _timed_out) = self
                .shared
                .not_empty
                .wait_timeout(queue, remaining)
                .unwrap();
            queue = q;
        }
    }

    /// Drains currently buffered messages without blocking.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// Blocking iterator over incoming messages; ends when the channel
    /// disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Whether the channel currently buffers no messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's capacity (`None` when unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last receiver gone: wake all blocked senders so they observe the
            // disconnect. Mutex-fenced for the same missed-wakeup reason as
            // `Sender::drop` (senders additionally re-check on a periodic
            // timeout, but the fence makes the wakeup prompt).
            drop(self.shared.queue.lock().unwrap());
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn drop_all_senders_disconnects_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7), "buffered message survives disconnect");
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocked_recv_wakes_when_last_sender_drops() {
        // Regression: the disconnect notification must not be lost when the
        // receiver is already parked in an untimed recv().
        let (tx, rx) = unbounded::<u8>();
        let receiver = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(30));
        drop(tx);
        assert_eq!(receiver.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn drop_all_receivers_fails_sends() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_delivers_every_message_exactly_once() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().collect::<Vec<_>>())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn try_iter_drains_without_blocking() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let drained: Vec<_> = rx.try_iter().collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert!(rx.is_empty());
    }
}
