//! Fixed-capacity concurrent queue with crossbeam's `ArrayQueue` API.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// A bounded MPMC queue. `push` fails (returning the value) when full instead
/// of blocking, `pop` returns `None` when empty — crossbeam's `ArrayQueue`
/// contract, implemented with a mutexed ring buffer.
pub struct ArrayQueue<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T> ArrayQueue<T> {
    /// Creates a queue with space for `capacity` elements.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (matching crossbeam).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        Self {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// Attempts to push `value`.
    ///
    /// # Errors
    /// Returns `value` back when the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut q = self.inner.lock().unwrap();
        if q.len() >= self.capacity {
            Err(value)
        } else {
            q.push_back(value);
            Ok(())
        }
    }

    /// Pops the oldest element, or `None` when empty.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_front()
    }

    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the queue holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    /// The fixed capacity the queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl<T> fmt::Debug for ArrayQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArrayQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let q = ArrayQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3), "full queue rejects");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn len_and_capacity() {
        let q = ArrayQueue::new(3);
        assert!(q.is_empty());
        q.push("a").unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.capacity(), 3);
        assert!(!q.is_full());
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _ = ArrayQueue::<u8>::new(0);
    }
}
