//! Offline shim for `crossbeam`.
//!
//! The build environment has no registry access, so this crate implements the
//! subset of the crossbeam API the workspace uses:
//!
//! * [`channel`] — MPMC channels ([`channel::bounded`] / [`channel::unbounded`])
//!   with cloneable senders *and* receivers, matching crossbeam's semantics:
//!   `recv` on a channel whose senders are all dropped drains buffered messages
//!   before reporting disconnection, and `send` fails only once every receiver
//!   is gone.
//! * [`queue`] — a fixed-capacity [`queue::ArrayQueue`].
//!
//! Built on `Mutex` + `Condvar` rather than lock-free rings: correctness over
//! peak throughput. The pipeline moves batches (thousands of tuples per
//! message), so per-message overhead is amortized. Swap in the real crate via
//! the root `[workspace.dependencies]` when a registry is available.

pub mod channel;
pub mod queue;
