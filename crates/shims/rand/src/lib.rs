//! Offline shim for `rand` (0.8-style API subset).
//!
//! The build environment has no registry access, so this crate provides the
//! pieces of the `rand` API the workspace uses: [`Rng::gen_range`] over integer
//! and float ranges, [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256** seeded through SplitMix64 —
//! deterministic for a given seed, which is all the data and workload
//! generators need. It is **not** the same stream as the real `StdRng`
//! (ChaCha12), so datasets generated under this shim differ from ones generated
//! under real `rand` with the same seed; all workspace tests derive their
//! expectations from the generated data, so this is safe.

/// Random number generator trait: the `rand::Rng` subset the workspace uses.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range` (`a..b` or `a..=b` for the
    /// common integer types, `a..b` for `f64`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen_f64() < p
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction: the `rand::SeedableRng` subset the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly. Implemented for `Range` and
/// `RangeInclusive` over the common integer types and `Range<f64>`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniformly samples from `[0, bound)` without modulo bias, by rejecting the
/// partial block of `u64` values at the top of the space.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // 2^64 mod bound, computed without overflowing u64.
    let excess = (u64::MAX % bound + 1) % bound;
    // Values in [2^64 - excess, 2^64) fall in the biased partial block.
    let last_accepted = u64::MAX - excess;
    loop {
        let v = rng.next_u64();
        if v <= last_accepted {
            return v % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = uniform_below(rng, span);
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = uniform_below(rng, span + 1);
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (rng.gen_f64() as f32) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not the real `rand::rngs::StdRng` stream — see the crate docs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: usize = rng.gen_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_covers_the_space() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u32 = rng.gen_range(5..5);
    }
}
