//! Offline shim for `criterion`.
//!
//! The build environment has no registry access, so this crate implements the
//! subset of the criterion API the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `sample_size`, `measurement_time`,
//! `throughput`, and the `criterion_group!` / `criterion_main!` macros — as a
//! straightforward walltime sampler with a text report:
//!
//! ```text
//! fig5_concurrency_scaleup/cjoin/16
//!                         time: [mean 12.345 ms] min 11.9 ms max 13.1 ms (10 samples)
//! ```
//!
//! No statistical outlier analysis, no HTML reports, no comparison to saved
//! baselines. Each sample is one invocation of the `iter` closure; the closure
//! result is passed through [`black_box`]. Swap in the real crate via the root
//! `[workspace.dependencies]` when a registry is available.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement configuration and report sink. Create with `Criterion::default()`.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; this shim has no configurable CLI.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Overrides the default number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Overrides the default measurement-time budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.default_measurement_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let measurement_time = self.default_measurement_time;
        run_benchmark(
            &id.into().render(None),
            sample_size,
            measurement_time,
            None,
            f,
        );
    }
}

/// Identifies one benchmark within a group: a function name plus an optional
/// parameter rendered as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function_name: function_name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter (criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function_name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: Option<&str>) -> String {
        let mut parts: Vec<&str> = Vec::with_capacity(3);
        if let Some(g) = group {
            parts.push(g);
        }
        if !self.function_name.is_empty() {
            parts.push(&self.function_name);
        }
        if let Some(p) = self.parameter.as_deref() {
            parts.push(p);
        }
        parts.join("/")
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            function_name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            function_name: name,
            parameter: None,
        }
    }
}

/// Units the per-sample time is normalized by in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark; sampling stops early when exceeded.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the per-iteration throughput used to report a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &id.into().render(Some(&self.name)),
            self.sample_size,
            self.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &id.render(Some(&self.name)),
            self.sample_size,
            self.measurement_time,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group. (Reports are printed as benchmarks run.)
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code under
/// measurement.
pub struct Bencher {
    sample: Option<Duration>,
}

impl Bencher {
    /// Times one invocation of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        black_box(routine());
        self.sample = Some(started.elapsed());
    }
}

fn run_benchmark<F>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // One warm-up invocation, not measured.
    let mut bencher = Bencher { sample: None };
    f(&mut bencher);

    let budget_start = Instant::now();
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher { sample: None };
        f(&mut bencher);
        samples.push(bencher.sample.unwrap_or_default());
        if budget_start.elapsed() > measurement_time {
            break;
        }
    }
    report(label, &samples, throughput);
}

fn report(label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label}: no samples collected");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(
            " thrpt: {:.1} elem/s",
            n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
        Throughput::Bytes(n) => format!(
            " thrpt: {:.1} B/s",
            n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
    });
    println!(
        "{label}\n    time: [mean {mean:?}] min {min:?} max {max:?} ({} samples){}",
        samples.len(),
        rate.unwrap_or_default()
    );
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_secs(1));
        let mut ran = 0usize;
        {
            let mut group = c.benchmark_group("shim_smoke");
            group.sample_size(3).throughput(Throughput::Elements(1));
            group.bench_with_input(BenchmarkId::new("inc", 1), &1usize, |b, &x| {
                b.iter(|| x + 1);
                ran += 1;
            });
            group.finish();
        }
        // warm-up + up to 3 samples
        assert!(ran >= 2);
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", 3).render(Some("g")), "g/f/3");
        assert_eq!(BenchmarkId::from("plain").render(None), "plain");
        assert_eq!(BenchmarkId::from_parameter(7).render(Some("g")), "g/7");
    }
}
