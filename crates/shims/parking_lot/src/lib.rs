//! Offline shim for `parking_lot`.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of the `parking_lot` API the workspace uses — [`Mutex`] and [`RwLock`]
//! whose lock methods return guards directly (no `Result`, no poisoning) — as
//! thin wrappers over `std::sync`. A poisoned std lock (a thread panicked while
//! holding it) is recovered by taking the inner guard, which matches
//! parking_lot's no-poisoning semantics. Performance characteristics are those
//! of `std::sync`, which is adequate for this workload; swap in the real crate
//! via the root `[workspace.dependencies]` when a registry is available.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock whose [`Mutex::lock`] returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// A reader-writer lock whose [`RwLock::read`]/[`RwLock::write`] return guards
/// directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Exclusive-write RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: a panic while holding the lock does not poison it.
        assert_eq!(*m.lock(), 0);
    }
}
