//! Command-line entry point that regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <all|fig4|fig5|fig6|fig7|fig8|tab1|tab2|tab3|ablations|io|bench-json> [options]
//!
//! Options:
//!   --scale <f64>          SSB scale factor              (default 0.01)
//!   --selectivity <f64>    predicate selectivity s       (default 0.01)
//!   --threads <usize>      CJOIN worker threads          (default 4)
//!   --concurrency <list>   comma-separated n values      (default 1,32,64,128,256)
//!   --markdown             print Markdown tables instead of plain text
//!   --out <path>           output path for bench-json    (default BENCH_PR10.json)
//! ```
//!
//! `bench-json` runs the filter hot-path ablation (batched vs. per-tuple probing),
//! the distributor-sharding ablation (end-to-end qph/p99 for
//! `distributor_shards` ∈ {1, 2, 4}), the scan-parallelism ablation
//! (end-to-end qph/p99 for `scan_workers` ∈ {1, 2, 4} × `distributor_shards`
//! ∈ {1, 4} on an ingest-bound low-selectivity population), the columnar-scan
//! ablation (`columnar_scan` ∈ {off, on} × `scan_workers` ∈ {1, 4}, plus a
//! clustered date-range probe reporting bytes/row, zone-map skip rate and the
//! per-run probe ratio) and the supervision A/B (`supervision` ∈ {off, on} on
//! the fault-free path, proving the panic-isolation scaffolding costs < 2%
//! qph) and the serving A/B (the same closed loop driven in-process vs through
//! `RemoteEngine` → TCP → `cjoin-server`, measuring what the front door costs
//! in qph and p99 response) and the elastic-scheduler A/B (`auto_tune` ∈
//! {off, on} against a static `worker_threads` ∈ {1, 2, 4} sweep, proving the
//! scheduler's self-chosen widths keep up with the best hand-tuned static
//! configuration on the same host) and the ingest-durability sweep
//! (`SyncPolicy` ∈ {every-record, on-commit, never} × rows-per-batch ∈
//! {1, 64, 1024} at a constant total row count: WAL-logged ingest rate,
//! commits/s, fsync wait per commit, and timed crash recovery of the produced
//! log) on fixed fig5/fig8-style workloads and writes a
//! machine-readable baseline for the perf trajectory of future PRs. The host's
//! available parallelism is recorded alongside: segment scan workers trade
//! extra CPU for wall-clock, so their speedup only materialises where spare
//! cores exist.

use std::env;
use std::process::ExitCode;
use std::time::Duration;

use cjoin_bench::experiments::{
    ablations, columnar_scan_volume, fig4_pipeline_config, fig5_concurrency_scaleup,
    fig6_predictability, fig7_selectivity, fig8_data_scale, modelled_io_comparison,
    tab1_submission_vs_concurrency, tab2_submission_vs_selectivity, tab3_submission_vs_sf,
    ExperimentParams,
};
use cjoin_bench::hotpath::{
    columnar_range_probe, end_to_end_ab, end_to_end_auto_tune, end_to_end_columnar,
    end_to_end_scan_workers, end_to_end_served, end_to_end_sharding, end_to_end_supervision,
    ingest_rate, EndToEndReport, ProbeAblationParams, ProbeHarness,
};
use cjoin_bench::{JsonObject, RunReport, Table};
use cjoin_common::Result;
use cjoin_storage::SyncPolicy;

struct Options {
    experiment: String,
    params: ExperimentParams,
    concurrency: Vec<usize>,
    markdown: bool,
    out: String,
}

fn parse_args() -> std::result::Result<Options, String> {
    let mut args = env::args().skip(1);
    let experiment = args.next().unwrap_or_else(|| "all".to_string());
    let mut params = ExperimentParams::default();
    let mut concurrency = vec![1, 32, 64, 128, 256];
    let mut markdown = false;
    let mut out = "BENCH_PR10.json".to_string();

    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => {
                out = args.next().ok_or("--out needs a value")?;
            }
            "--scale" => {
                params.scale_factor = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --scale: {e}"))?;
            }
            "--selectivity" => {
                params.selectivity = args
                    .next()
                    .ok_or("--selectivity needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --selectivity: {e}"))?;
            }
            "--threads" => {
                params.worker_threads = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?;
            }
            "--concurrency" => {
                let list = args.next().ok_or("--concurrency needs a value")?;
                concurrency = list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .map_err(|e| format!("invalid concurrency '{s}': {e}"))
                    })
                    .collect::<std::result::Result<Vec<usize>, String>>()?;
            }
            "--markdown" => markdown = true,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(Options {
        experiment,
        params,
        concurrency,
        markdown,
        out,
    })
}

/// 99th-percentile response time of a closed-loop run, in milliseconds.
fn p99_response_ms(report: &RunReport) -> f64 {
    let mut samples: Vec<f64> = report
        .timings
        .iter()
        .map(|t| t.response_time.as_secs_f64() * 1e3)
        .collect();
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    samples[((samples.len() - 1) as f64 * 0.99).round() as usize]
}

/// Runs the hot-path ablation and writes the machine-readable perf baseline.
fn run_bench_json(options: &Options) -> Result<()> {
    eprintln!("# filter-stage ablation (fig5-style dimension population)");
    let ab = ProbeAblationParams::fig5_style();
    let harness = ProbeHarness::build(&ab);
    assert!(
        harness.paths_agree(),
        "batched and per-tuple hot paths must produce identical survivors"
    );
    let measure_for = Duration::from_secs(2);
    let batched_tps = harness.measure(true, measure_for);
    let per_tuple_tps = harness.measure(false, measure_for);
    let speedup = batched_tps / per_tuple_tps;
    eprintln!(
        "  batched: {batched_tps:.0} tuples/s, per-tuple: {per_tuple_tps:.0} tuples/s, \
         speedup {speedup:.2}x"
    );

    eprintln!("# end-to-end A/B (fig5-style closed loop)");
    let mut e2e = options.params.clone();
    // Fixed moderate size so the baseline is comparable across machines and PRs.
    e2e.scale_factor = 0.005;
    let concurrency = 32;
    let on = end_to_end_ab(&e2e, concurrency, true)?;
    let off = end_to_end_ab(&e2e, concurrency, false)?;
    let render = |r: &EndToEndReport| {
        JsonObject::new()
            .field_f64("throughput_qph", r.throughput_qph)
            .field_f64("mean_submission_ms", r.mean_submission_ms)
            .field_f64("p99_submission_ms", r.p99_submission_ms)
            .field_f64("mean_response_ms", r.mean_response_ms)
            .field_u64("queries", r.queries as u64)
    };

    eprintln!("# distributor-sharding sweep (fig5-style closed loop)");
    let mut sharding = JsonObject::new();
    for shards in [1usize, 2, 4] {
        let report = end_to_end_sharding(&e2e, concurrency, shards)?;
        eprintln!(
            "  shards={shards}: {:.0} q/h, p99 submission {:.3} ms",
            report.throughput_qph, report.p99_submission_ms
        );
        sharding = sharding.field_obj(&format!("shards_{shards}"), render(&report));
    }

    // Scan-parallelism sweep on the ingest-bound population: a larger table at a
    // low selectivity, so response time is dominated by scan passes rather than
    // filter work — the regime the sharded front-end targets.
    eprintln!("# scan-parallelism sweep (ingest-bound: low selectivity, higher SF)");
    let mut ingest = options.params.clone();
    ingest.scale_factor = 0.01;
    ingest.selectivity = 0.002;
    let scan_concurrency = 16;
    let mut scan_parallelism = JsonObject::new();
    for shards in [1usize, 4] {
        for scan_workers in [1usize, 2, 4] {
            let report = end_to_end_scan_workers(&ingest, scan_concurrency, scan_workers, shards)?;
            eprintln!(
                "  scan_workers={scan_workers} shards={shards}: {:.0} q/h, \
                 p99 submission {:.3} ms",
                report.throughput_qph, report.p99_submission_ms
            );
            scan_parallelism = scan_parallelism.field_obj(
                &format!("scan_{scan_workers}_shards_{shards}"),
                render(&report),
            );
        }
    }

    // Columnar-scan A/B on the fig5-style closed loop: the storage-layout knob
    // toggled over the classic and sharded scan front-end, plus a clustered
    // date-range probe for the byte-level evidence (bytes/row vs the row store,
    // zone-map skip rate, rows answered per RLE probe).
    eprintln!("# columnar-scan sweep (fig5-style closed loop + clustered probe)");
    let mut columnar_sweep = JsonObject::new();
    for scan_workers in [1usize, 4] {
        for columnar in [false, true] {
            let (report, volume) = end_to_end_columnar(&e2e, concurrency, scan_workers, columnar)?;
            let layout = if columnar { "columnar" } else { "row" };
            eprintln!(
                "  layout={layout} scan_workers={scan_workers}: {:.0} q/h, \
                 p99 submission {:.3} ms",
                report.throughput_qph, report.p99_submission_ms
            );
            let mut obj = render(&report);
            if let Some(volume) = volume {
                obj = obj
                    .field_u64("bytes_scanned", volume.bytes_scanned)
                    .field_u64("rows_scanned", volume.rows_scanned)
                    .field_f64("bytes_per_row", volume.bytes_per_row());
            }
            columnar_sweep =
                columnar_sweep.field_obj(&format!("{layout}_scan_{scan_workers}"), obj);
        }
    }
    // Supervision A/B on the fault-free path: same closed loop with the
    // catch_unwind wrappers, supervisor/reaper thread and runtimes registry on
    // vs off. The committed baseline proves the robustness scaffolding costs
    // < 2% qph when nothing fails.
    eprintln!("# supervision overhead A/B (fig5-style closed loop)");
    let sup_off = end_to_end_supervision(&e2e, concurrency, false)?;
    let sup_on = end_to_end_supervision(&e2e, concurrency, true)?;
    let sup_overhead = 1.0 - sup_on.throughput_qph / sup_off.throughput_qph;
    eprintln!(
        "  supervision=off: {:.0} q/h, supervision=on: {:.0} q/h, overhead {:.2}%",
        sup_off.throughput_qph,
        sup_on.throughput_qph,
        100.0 * sup_overhead
    );
    let supervision = JsonObject::new()
        .field_obj("supervision_off", render(&sup_off))
        .field_obj("supervision_on", render(&sup_on))
        .field_f64("qph_overhead_fraction", sup_overhead);

    // Serving A/B: the same closed loop in-process vs through the TCP front
    // door (RemoteEngine → cjoin-server), quantifying what framing,
    // per-connection threads, and admission bookkeeping cost.
    eprintln!("# serving A/B (fig5-style closed loop, in-process vs TCP)");
    let (in_process, served) = end_to_end_served(&e2e, concurrency)?;
    let serving_overhead = 1.0 - served.throughput_qph() / in_process.throughput_qph();
    eprintln!(
        "  in-process: {:.0} q/h p99 {:.3} ms, served: {:.0} q/h p99 {:.3} ms, \
         overhead {:.2}%",
        in_process.throughput_qph(),
        p99_response_ms(&in_process),
        served.throughput_qph(),
        p99_response_ms(&served),
        100.0 * serving_overhead
    );
    let render_run = |r: &RunReport| {
        JsonObject::new()
            .field_f64("throughput_qph", r.throughput_qph())
            .field_f64("mean_response_ms", r.mean_response().as_secs_f64() * 1e3)
            .field_f64("p99_response_ms", p99_response_ms(r))
            .field_u64("queries", r.timings.len() as u64)
    };
    let serving = JsonObject::new()
        .field_obj("in_process", render_run(&in_process))
        .field_obj("served", render_run(&served))
        .field_f64("qph_overhead_fraction", serving_overhead);

    // Elastic-scheduler A/B: the same closed loop with every parallelism knob
    // left at its default, auto-tune off (fixed default widths — the
    // pre-scheduler shape) vs on (scheduler-governed widths, sized from the
    // host at startup and resized from live counters), plus a static
    // worker_threads sweep so "auto-tune keeps up with the best hand-tuned
    // static configuration on this host" is a recorded fact, not a claim.
    eprintln!("# elastic-scheduler A/B (fig5-style closed loop + static width sweep)");
    let tune_off = end_to_end_auto_tune(&e2e, concurrency, false)?;
    let tune_on = end_to_end_auto_tune(&e2e, concurrency, true)?;
    eprintln!(
        "  auto_tune=off: {:.0} q/h, auto_tune=on: {:.0} q/h",
        tune_off.throughput_qph, tune_on.throughput_qph
    );
    let mut static_sweep = JsonObject::new();
    let mut best_static_qph = tune_off.throughput_qph;
    for threads in [1usize, 2, 4] {
        let mut static_params = e2e.clone();
        static_params.worker_threads = threads;
        let report = end_to_end_ab(&static_params, concurrency, true)?;
        eprintln!(
            "  static worker_threads={threads}: {:.0} q/h, p99 submission {:.3} ms",
            report.throughput_qph, report.p99_submission_ms
        );
        best_static_qph = best_static_qph.max(report.throughput_qph);
        static_sweep =
            static_sweep.field_obj(&format!("worker_threads_{threads}"), render(&report));
    }
    eprintln!(
        "  auto-tune vs best static: {:.3}x",
        tune_on.throughput_qph / best_static_qph
    );
    let elastic_scheduler = JsonObject::new()
        .field_obj("auto_tune_off", render(&tune_off))
        .field_obj("auto_tune_on", render(&tune_on))
        .field_obj("static_worker_threads", static_sweep)
        .field_f64("best_static_qph", best_static_qph)
        .field_f64(
            "auto_tune_vs_best_static",
            tune_on.throughput_qph / best_static_qph,
        );

    // Ingest-durability sweep: the WAL-logged ingestion path under every sync
    // policy × batch size at a constant total row count. Contiguous fact rows
    // coalesce into one WAL record, so rows-per-batch is the group-commit
    // amortization axis; each cell also times a cold restart replaying the
    // produced log onto a fresh warehouse.
    eprintln!("# ingest-durability sweep (SyncPolicy x rows-per-batch, constant total rows)");
    let total_rows = 2048usize;
    let mut ingest_durability = JsonObject::new();
    for (policy, policy_name) in [
        (SyncPolicy::EveryRecord, "every_record"),
        (SyncPolicy::OnCommit, "on_commit"),
        (SyncPolicy::Never, "never"),
    ] {
        for rows_per_batch in [1usize, 64, 1024] {
            let batches = total_rows / rows_per_batch;
            let report = ingest_rate(&e2e, policy, rows_per_batch, batches)?;
            eprintln!(
                "  policy={policy_name} rows/batch={rows_per_batch}: \
                 {:.0} rows/s, {:.0} commits/s, {:.0} ns fsync/commit, \
                 recovery {:.1} ms for {} rows",
                report.rows_per_sec,
                report.commits_per_sec,
                report.sync_ns_per_commit,
                report.recovery_ms,
                report.recovered_rows
            );
            ingest_durability = ingest_durability.field_obj(
                &format!("{policy_name}_batch_{rows_per_batch}"),
                JsonObject::new()
                    .field_u64("batches", report.batches as u64)
                    .field_u64("rows_per_batch", report.rows_per_batch as u64)
                    .field_f64("rows_per_sec", report.rows_per_sec)
                    .field_f64("commits_per_sec", report.commits_per_sec)
                    .field_f64("sync_ns_per_commit", report.sync_ns_per_commit)
                    .field_u64("wal_bytes", report.wal_bytes)
                    .field_f64("recovery_ms", report.recovery_ms)
                    .field_u64("recovered_rows", report.recovered_rows),
            );
        }
    }

    let probe = columnar_range_probe(&e2e)?;
    eprintln!(
        "  clustered probe: {:.1} of {:.1} bytes/row ({:.1}% of the row store), \
         skip rate {:.2}, {:.0} rows/probe on an RLE column",
        probe.columnar_bytes_per_row(),
        probe.row_store_bytes_per_row(),
        100.0 * probe.columnar_bytes_per_row() / probe.row_store_bytes_per_row(),
        probe.skip_rate(),
        probe.rle_rows_per_probe
    );
    let columnar_probe = JsonObject::new()
        .field_u64("fact_rows", probe.fact_rows)
        .field_u64("queries", probe.queries as u64)
        .field_f64("row_store_bytes_per_row", probe.row_store_bytes_per_row())
        .field_f64("columnar_bytes_per_row", probe.columnar_bytes_per_row())
        .field_f64(
            "byte_ratio_vs_row_store",
            probe.columnar_bytes_per_row() / probe.row_store_bytes_per_row(),
        )
        .field_f64("zone_map_skip_rate", probe.skip_rate())
        .field_u64("row_groups_skipped", probe.stats.row_groups_skipped)
        .field_f64("rle_rows_per_predicate_probe", probe.rle_rows_per_probe)
        .field_f64("replica_compression_ratio", probe.compression_ratio);

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let json = JsonObject::new()
        .field_str("artifact", "BENCH_PR10")
        .field_str(
            "description",
            "Filter hot path A/B (CjoinConfig::batched_probing) + sharded aggregation \
             stage sweep (CjoinConfig::distributor_shards) + sharded scan front-end \
             sweep (CjoinConfig::scan_workers; speedup requires spare host cores) + \
             compressed columnar scan A/B (CjoinConfig::columnar_scan: encoded \
             predicates, zone-map skipping, late materialization) + pipeline \
             supervision A/B (CjoinConfig::supervision: catch_unwind isolation, \
             supervisor/reaper thread, runtimes registry on the fault-free path) + \
             serving A/B (in-process vs RemoteEngine -> TCP -> cjoin-server: wire \
             framing, per-connection threads, multi-tenant admission) + elastic \
             scheduler A/B (CjoinConfig::auto_tune: scheduler-governed widths vs \
             fixed defaults vs best static worker_threads sweep) + ingest \
             durability sweep (WAL SyncPolicy x rows-per-batch at constant \
             total rows: durable ingest rate, commits/s, fsync wait per \
             commit, timed crash recovery)",
        )
        .field_u64("host_cpus", host_cpus)
        .field_u64("available_parallelism", host_cpus)
        .field_obj(
            "workload",
            JsonObject::new()
                .field_str("shape", "fig5-style")
                .field_u64("filter_stage_queries", ab.queries as u64)
                .field_f64("filter_stage_selectivity", ab.selectivity)
                .field_u64("filter_stage_batch_size", ab.batch_size as u64)
                .field_f64("end_to_end_scale_factor", e2e.scale_factor)
                .field_f64("end_to_end_selectivity", e2e.selectivity)
                .field_u64("end_to_end_concurrency", concurrency as u64)
                .field_f64("ingest_bound_scale_factor", ingest.scale_factor)
                .field_f64("ingest_bound_selectivity", ingest.selectivity)
                .field_u64("ingest_bound_concurrency", scan_concurrency as u64)
                .field_u64("worker_threads", e2e.worker_threads as u64),
        )
        .field_obj(
            "filter_stage",
            JsonObject::new()
                .field_f64("batched_tuples_per_sec", batched_tps)
                .field_f64("per_tuple_tuples_per_sec", per_tuple_tps)
                .field_f64("speedup", speedup),
        )
        .field_obj("end_to_end_batched", render(&on))
        .field_obj("end_to_end_per_tuple", render(&off))
        .field_obj("distributor_sharding", sharding)
        .field_obj("scan_parallelism", scan_parallelism)
        .field_obj("columnar_scan", columnar_sweep)
        .field_obj("columnar_probe", columnar_probe)
        .field_obj("supervision", supervision)
        .field_obj("serving", serving)
        .field_obj("elastic_scheduler", elastic_scheduler)
        .field_obj("ingest_durability", ingest_durability)
        .render();
    std::fs::write(&options.out, &json)
        .map_err(|e| cjoin_common::Error::invalid_state(format!("write {}: {e}", options.out)))?;
    eprintln!("# wrote {}", options.out);
    println!("{json}");
    Ok(())
}

fn print_table(table: &Table, markdown: bool) {
    if markdown {
        println!("{}", table.to_markdown());
    } else {
        println!("{table}");
    }
}

fn run(options: &Options) -> Result<Vec<Table>> {
    let p = &options.params;
    let n = &options.concurrency;
    let mid_concurrency = n.get(n.len() / 2).copied().unwrap_or(32).min(128);
    let selectivities = [0.001, 0.01, 0.10];
    let scale_factors = [p.scale_factor / 10.0, p.scale_factor / 2.0, p.scale_factor];

    let mut tables = Vec::new();
    let experiment = options.experiment.as_str();
    let want = |name: &str| experiment == "all" || experiment == name;

    if want("fig4") {
        tables.push(fig4_pipeline_config(
            p,
            &[1, 2, 3, 4, 5],
            32.min(mid_concurrency * 2),
        )?);
    }
    if want("fig5") {
        tables.push(fig5_concurrency_scaleup(p, n)?);
    }
    if want("fig6") {
        tables.push(fig6_predictability(p, n)?);
    }
    if want("tab1") {
        tables.push(tab1_submission_vs_concurrency(p, n)?);
    }
    if want("fig7") {
        tables.push(fig7_selectivity(p, &selectivities, mid_concurrency)?);
    }
    if want("tab2") {
        tables.push(tab2_submission_vs_selectivity(
            p,
            &selectivities,
            mid_concurrency,
        )?);
    }
    if want("fig8") {
        tables.push(fig8_data_scale(p, &scale_factors, mid_concurrency)?);
    }
    if want("tab3") {
        tables.push(tab3_submission_vs_sf(p, &scale_factors, mid_concurrency)?);
    }
    if want("ablations") {
        tables.push(ablations(p, mid_concurrency)?);
    }
    if want("io") {
        tables.push(modelled_io_comparison(p, n)?);
        tables.push(columnar_scan_volume(p)?);
    }
    Ok(tables)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: experiments <all|fig4|fig5|fig6|fig7|fig8|tab1|tab2|tab3|ablations|io|bench-json> \
                 [--scale F] [--selectivity S] [--threads T] [--concurrency 1,32,...] [--markdown] \
                 [--out PATH]"
            );
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# experiment={} scale={} selectivity={} threads={} concurrency={:?}",
        options.experiment,
        options.params.scale_factor,
        options.params.selectivity,
        options.params.worker_threads,
        options.concurrency
    );
    if options.experiment == "bench-json" {
        return match run_bench_json(&options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match run(&options) {
        Ok(tables) => {
            if tables.is_empty() {
                eprintln!("error: unknown experiment '{}'", options.experiment);
                return ExitCode::FAILURE;
            }
            for table in &tables {
                print_table(table, options.markdown);
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
