//! Command-line entry point that regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <all|fig4|fig5|fig6|fig7|fig8|tab1|tab2|tab3|ablations|io> [options]
//!
//! Options:
//!   --scale <f64>          SSB scale factor              (default 0.01)
//!   --selectivity <f64>    predicate selectivity s       (default 0.01)
//!   --threads <usize>      CJOIN worker threads          (default 4)
//!   --concurrency <list>   comma-separated n values      (default 1,32,64,128,256)
//!   --markdown             print Markdown tables instead of plain text
//! ```

use std::env;
use std::process::ExitCode;

use cjoin_bench::experiments::{
    ablations, fig4_pipeline_config, fig5_concurrency_scaleup, fig6_predictability,
    fig7_selectivity, fig8_data_scale, modelled_io_comparison, tab1_submission_vs_concurrency,
    tab2_submission_vs_selectivity, tab3_submission_vs_sf, ExperimentParams,
};
use cjoin_bench::Table;
use cjoin_common::Result;

struct Options {
    experiment: String,
    params: ExperimentParams,
    concurrency: Vec<usize>,
    markdown: bool,
}

fn parse_args() -> std::result::Result<Options, String> {
    let mut args = env::args().skip(1);
    let experiment = args.next().unwrap_or_else(|| "all".to_string());
    let mut params = ExperimentParams::default();
    let mut concurrency = vec![1, 32, 64, 128, 256];
    let mut markdown = false;

    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                params.scale_factor = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --scale: {e}"))?;
            }
            "--selectivity" => {
                params.selectivity = args
                    .next()
                    .ok_or("--selectivity needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --selectivity: {e}"))?;
            }
            "--threads" => {
                params.worker_threads = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?;
            }
            "--concurrency" => {
                let list = args.next().ok_or("--concurrency needs a value")?;
                concurrency = list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .map_err(|e| format!("invalid concurrency '{s}': {e}"))
                    })
                    .collect::<std::result::Result<Vec<usize>, String>>()?;
            }
            "--markdown" => markdown = true,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(Options {
        experiment,
        params,
        concurrency,
        markdown,
    })
}

fn print_table(table: &Table, markdown: bool) {
    if markdown {
        println!("{}", table.to_markdown());
    } else {
        println!("{table}");
    }
}

fn run(options: &Options) -> Result<Vec<Table>> {
    let p = &options.params;
    let n = &options.concurrency;
    let mid_concurrency = n.get(n.len() / 2).copied().unwrap_or(32).min(128);
    let selectivities = [0.001, 0.01, 0.10];
    let scale_factors = [p.scale_factor / 10.0, p.scale_factor / 2.0, p.scale_factor];

    let mut tables = Vec::new();
    let experiment = options.experiment.as_str();
    let want = |name: &str| experiment == "all" || experiment == name;

    if want("fig4") {
        tables.push(fig4_pipeline_config(
            p,
            &[1, 2, 3, 4, 5],
            32.min(mid_concurrency * 2),
        )?);
    }
    if want("fig5") {
        tables.push(fig5_concurrency_scaleup(p, n)?);
    }
    if want("fig6") {
        tables.push(fig6_predictability(p, n)?);
    }
    if want("tab1") {
        tables.push(tab1_submission_vs_concurrency(p, n)?);
    }
    if want("fig7") {
        tables.push(fig7_selectivity(p, &selectivities, mid_concurrency)?);
    }
    if want("tab2") {
        tables.push(tab2_submission_vs_selectivity(
            p,
            &selectivities,
            mid_concurrency,
        )?);
    }
    if want("fig8") {
        tables.push(fig8_data_scale(p, &scale_factors, mid_concurrency)?);
    }
    if want("tab3") {
        tables.push(tab3_submission_vs_sf(p, &scale_factors, mid_concurrency)?);
    }
    if want("ablations") {
        tables.push(ablations(p, mid_concurrency)?);
    }
    if want("io") {
        tables.push(modelled_io_comparison(p, n)?);
    }
    Ok(tables)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: experiments <all|fig4|fig5|fig6|fig7|fig8|tab1|tab2|tab3|ablations|io> \
                 [--scale F] [--selectivity S] [--threads T] [--concurrency 1,32,...] [--markdown]"
            );
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# experiment={} scale={} selectivity={} threads={} concurrency={:?}",
        options.experiment,
        options.params.scale_factor,
        options.params.selectivity,
        options.params.worker_threads,
        options.concurrency
    );
    match run(&options) {
        Ok(tables) => {
            if tables.is_empty() {
                eprintln!("error: unknown experiment '{}'", options.experiment);
                return ExitCode::FAILURE;
            }
            for table in &tables {
                print_table(table, options.markdown);
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
