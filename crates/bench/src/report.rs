//! Plain-text tables for experiment output.
//!
//! Every experiment produces a [`Table`]: a header plus rows of cells. Tables render
//! both as aligned plain text (for the terminal) and as Markdown (for
//! experiment reports).

use std::fmt;

/// A simple rectangular result table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Table title (e.g. `"Figure 5: throughput vs. concurrency"`).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each row has one cell per column.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: Vec<&str>) -> Self {
        Self {
            title: title.into(),
            columns: columns.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length does not match the number of columns.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let widths = self.column_widths();
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        writeln!(f, "  {}", header.join("  "))?;
        writeln!(
            f,
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "  {}", cells.join("  "))?;
        }
        Ok(())
    }
}

/// A minimal JSON object builder for machine-readable benchmark artifacts
/// (`BENCH_*.json`). The build environment has no `serde_json`, so this hand-rolls
/// the subset needed: objects of strings, numbers, booleans and nested objects,
/// rendered deterministically in insertion order with 2-space indentation.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    entries: Vec<(String, String)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a floating-point field (`NaN`/infinite values render as `null`).
    #[must_use]
    pub fn field_f64(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.entries.push((key.to_string(), rendered));
        self
    }

    /// Adds an integer field.
    #[must_use]
    pub fn field_u64(mut self, key: &str, value: u64) -> Self {
        self.entries.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn field_bool(mut self, key: &str, value: bool) -> Self {
        self.entries.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a string field (escaped).
    #[must_use]
    pub fn field_str(mut self, key: &str, value: &str) -> Self {
        self.entries
            .push((key.to_string(), format!("\"{}\"", json_escape(value))));
        self
    }

    /// Adds a nested object field.
    #[must_use]
    pub fn field_obj(mut self, key: &str, value: JsonObject) -> Self {
        self.entries.push((key.to_string(), value.render_inner(1)));
        self
    }

    fn render_inner(&self, depth: usize) -> String {
        if self.entries.is_empty() {
            return "{}".to_string();
        }
        let pad = "  ".repeat(depth);
        let close_pad = "  ".repeat(depth.saturating_sub(1));
        let fields: Vec<String> = self
            .entries
            .iter()
            .map(|(k, v)| {
                // Re-indent nested objects relative to this depth.
                let v = v.replace('\n', &format!("\n{pad}"));
                format!("{pad}\"{}\": {v}", json_escape(k))
            })
            .collect();
        format!("{{\n{}\n{close_pad}}}", fields.join(",\n"))
    }

    /// Renders the object as a pretty-printed JSON document (trailing newline).
    pub fn render(&self) -> String {
        let mut s = self.render_inner(1);
        s.push('\n');
        s
    }
}

/// Formats a floating-point value with a sensible number of digits for tables.
pub fn fmt_f64(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 100.0 {
        format!("{value:.0}")
    } else if value.abs() >= 1.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.3}")
    }
}

/// Formats a duration in milliseconds with three significant decimals.
pub fn fmt_ms(duration: std::time::Duration) -> String {
    format!("{:.3}", duration.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn table() -> Table {
        let mut t = Table::new("Figure X", vec!["n", "CJOIN", "System X"]);
        t.push_row(vec!["1".into(), "100".into(), "90".into()]);
        t.push_row(vec!["256".into(), "1500".into(), "120".into()]);
        t
    }

    #[test]
    fn display_renders_aligned_columns() {
        let s = table().to_string();
        assert!(s.contains("Figure X"));
        assert!(s.contains("CJOIN"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn markdown_rendering() {
        let md = table().to_markdown();
        assert!(md.starts_with("### Figure X"));
        assert!(md.contains("| n | CJOIN | System X |"));
        assert!(md.contains("| 256 | 1500 | 120 |"));
        assert_eq!(table().num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_length_panics() {
        let mut t = Table::new("t", vec!["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn json_object_renders_nested_pretty_output() {
        let json = JsonObject::new()
            .field_str("name", "abl \"probe\" locking")
            .field_u64("queries", 32)
            .field_bool("batched", true)
            .field_f64("speedup", 1.5)
            .field_f64("bad", f64::NAN)
            .field_obj(
                "inner",
                JsonObject::new()
                    .field_f64("qph", 1234.5)
                    .field_obj("empty", JsonObject::new()),
            )
            .render();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"name\": \"abl \\\"probe\\\" locking\""));
        assert!(json.contains("\"queries\": 32"));
        assert!(json.contains("\"batched\": true"));
        assert!(json.contains("\"speedup\": 1.5"));
        assert!(json.contains("\"bad\": null"));
        assert!(json.contains("    \"qph\": 1234.5"), "{json}");
        assert!(json.contains("\"empty\": {}"));
        // Valid-JSON smoke: balanced braces and no trailing commas.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n}"));
    }

    #[test]
    fn float_and_duration_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.5678), "1235");
        assert_eq!(fmt_f64(12.345), "12.3");
        assert_eq!(fmt_f64(0.01234), "0.012");
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.500");
    }
}
