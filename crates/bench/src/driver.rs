//! Closed-loop multi-client workload driver.
//!
//! The paper's methodology (§6.1.3): a single client submits the first `n` queries of
//! the workload as a batch and then submits the next query whenever an outstanding
//! query finishes, so exactly `n` queries execute concurrently at all times. We model
//! that with `n` client threads pulling queries from a shared cursor — the effect is
//! identical (always `n` in flight) and it works unchanged for every engine: each
//! CJOIN client registers its query with the shared pipeline and blocks on the
//! result, each baseline client runs its own private plan.
//!
//! The driver is written against [`JoinEngine`], so any engine — current or future —
//! plugs into the same harness without driver changes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use cjoin_common::Result;
use cjoin_query::{JoinEngine, StarQuery};

/// Timing of one executed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTiming {
    /// Query name (`<template>#<index>` for generated workloads).
    pub name: String,
    /// Response time: submission to completed result.
    pub response_time: Duration,
    /// Number of result rows (groups), as a cheap sanity signal.
    pub result_rows: usize,
}

/// The outcome of one closed-loop workload run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-query timings, in completion order.
    pub timings: Vec<QueryTiming>,
    /// Wall-clock time from the first submission to the last completion.
    pub wall_time: Duration,
    /// The concurrency level the run was driven at.
    pub concurrency: usize,
}

impl RunReport {
    /// Queries completed per hour of wall-clock time.
    pub fn throughput_qph(&self) -> f64 {
        if self.wall_time.is_zero() {
            return 0.0;
        }
        self.timings.len() as f64 * 3600.0 / self.wall_time.as_secs_f64()
    }

    /// Mean response time across all queries.
    pub fn mean_response(&self) -> Duration {
        if self.timings.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.timings.iter().map(|t| t.response_time).sum();
        total / self.timings.len() as u32
    }

    /// Mean response time of queries whose name starts with `prefix` (e.g. `"Q4.2"`).
    pub fn mean_response_of(&self, prefix: &str) -> Option<Duration> {
        let matching: Vec<_> = self
            .timings
            .iter()
            .filter(|t| t.name.starts_with(prefix))
            .collect();
        if matching.is_empty() {
            return None;
        }
        let total: Duration = matching.iter().map(|t| t.response_time).sum();
        Some(total / matching.len() as u32)
    }

    /// Relative standard deviation (std-dev / mean) of the response times of queries
    /// whose name starts with `prefix`.
    pub fn response_rel_stddev_of(&self, prefix: &str) -> Option<f64> {
        let samples: Vec<f64> = self
            .timings
            .iter()
            .filter(|t| t.name.starts_with(prefix))
            .map(|t| t.response_time.as_secs_f64())
            .collect();
        if samples.len() < 2 {
            return None;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        if mean == 0.0 {
            return Some(0.0);
        }
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        Some(var.sqrt() / mean)
    }
}

/// Runs `queries` at a fixed concurrency level against `engine` and reports
/// per-query and aggregate timings.
///
/// # Errors
/// Returns the first query-execution error encountered (remaining clients finish
/// their current query and stop).
pub fn run_closed_loop(
    engine: &dyn JoinEngine,
    queries: &[StarQuery],
    concurrency: usize,
) -> Result<RunReport> {
    let concurrency = concurrency.clamp(1, queries.len().max(1));
    let cursor = AtomicUsize::new(0);
    let started = Instant::now();

    let results: Vec<Result<Vec<QueryTiming>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || -> Result<Vec<QueryTiming>> {
                    let mut timings = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(query) = queries.get(index) else {
                            return Ok(timings);
                        };
                        let submit = Instant::now();
                        let result = engine.execute(query)?;
                        timings.push(QueryTiming {
                            name: query.name.clone(),
                            response_time: submit.elapsed(),
                            result_rows: result.num_rows(),
                        });
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });

    let wall_time = started.elapsed();
    let mut timings = Vec::with_capacity(queries.len());
    for r in results {
        timings.extend(r?);
    }
    Ok(RunReport {
        timings,
        wall_time,
        concurrency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_baseline::{BaselineConfig, BaselineEngine};
    use cjoin_core::{CjoinConfig, CjoinEngine};
    use cjoin_ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};
    use std::sync::Arc;

    fn tiny_data() -> SsbDataSet {
        SsbDataSet::generate(SsbConfig::for_tests(0.0005, 21))
    }

    #[test]
    fn closed_loop_runs_every_query_once() {
        let data = tiny_data();
        let workload = Workload::generate(&data, WorkloadConfig::new(8, 0.05, 3));
        let engine = BaselineEngine::new(data.catalog(), BaselineConfig::default());
        let report = run_closed_loop(&engine, workload.queries(), 4).unwrap();
        assert_eq!(report.timings.len(), 8);
        assert_eq!(report.concurrency, 4);
        assert!(report.wall_time > Duration::ZERO);
        assert!(report.throughput_qph() > 0.0);
        assert!(report.mean_response() > Duration::ZERO);
    }

    #[test]
    fn concurrency_is_clamped_to_workload_size() {
        let data = tiny_data();
        let workload = Workload::generate(&data, WorkloadConfig::new(2, 0.05, 3));
        let engine = BaselineEngine::new(data.catalog(), BaselineConfig::default());
        let report = run_closed_loop(&engine, workload.queries(), 64).unwrap();
        assert_eq!(report.concurrency, 2);
        assert_eq!(report.timings.len(), 2);
    }

    #[test]
    fn cjoin_and_baseline_engines_agree_on_results() {
        let data = tiny_data();
        let catalog = data.catalog();
        let workload = Workload::generate(&data, WorkloadConfig::new(6, 0.05, 9));
        let baseline = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::default());
        let cjoin = CjoinEngine::start(
            Arc::clone(&catalog),
            CjoinConfig::default()
                .with_worker_threads(2)
                .with_max_concurrency(16),
        )
        .unwrap();
        // Drive both engines through the shared trait, the way the harness does.
        let engines: [&dyn JoinEngine; 2] = [&baseline, &cjoin];
        for query in workload.queries() {
            let expected = engines[0].execute(query).unwrap();
            let got = engines[1].execute(query).unwrap();
            assert!(
                got.approx_eq(&expected),
                "{}: {:?}",
                query.name,
                got.diff(&expected)
            );
        }
        assert_eq!(engines[1].name(), "CJOIN");
        assert!(engines[0].name().contains("System X"));
        let cjoin_stats = engines[1].stats();
        assert_eq!(cjoin_stats.queries_completed, 6);
        let baseline_stats = engines[0].stats();
        assert_eq!(baseline_stats.queries_submitted, 6);
        assert_eq!(baseline_stats.queries_completed, 6);
        cjoin.shutdown();
    }

    #[test]
    fn per_template_statistics() {
        let report = RunReport {
            timings: vec![
                QueryTiming {
                    name: "Q4.2#0".into(),
                    response_time: Duration::from_millis(10),
                    result_rows: 1,
                },
                QueryTiming {
                    name: "Q4.2#1".into(),
                    response_time: Duration::from_millis(30),
                    result_rows: 1,
                },
                QueryTiming {
                    name: "Q3.1#2".into(),
                    response_time: Duration::from_millis(50),
                    result_rows: 1,
                },
            ],
            wall_time: Duration::from_millis(60),
            concurrency: 2,
        };
        assert_eq!(
            report.mean_response_of("Q4.2").unwrap(),
            Duration::from_millis(20)
        );
        assert_eq!(report.mean_response_of("Q1"), None);
        let rel = report.response_rel_stddev_of("Q4.2").unwrap();
        assert!(rel > 0.0 && rel < 1.0);
        assert_eq!(
            report.response_rel_stddev_of("Q3.1"),
            None,
            "one sample has no spread"
        );
        assert!((report.throughput_qph() - 3.0 * 3600.0 / 0.06).abs() < 1.0);
    }
}
