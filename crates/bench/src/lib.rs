//! Experiment harness for the CJOIN reproduction.
//!
//! The paper's evaluation (§6) consists of four figures and three tables plus the
//! pipeline-configuration study; this crate contains the code that regenerates each
//! of them at laptop scale:
//!
//! | experiment | paper | function |
//! |------------|-------|----------|
//! | Pipeline configuration (horizontal vs. vertical × threads) | Figure 4 | [`experiments::fig4_pipeline_config`] |
//! | Throughput vs. number of concurrent queries | Figure 5 | [`experiments::fig5_concurrency_scaleup`] |
//! | Predictability of Q4.2 response time vs. concurrency | Figure 6 | [`experiments::fig6_predictability`] |
//! | Submission time vs. concurrency | Table 1 | [`experiments::tab1_submission_vs_concurrency`] |
//! | Throughput vs. predicate selectivity | Figure 7 | [`experiments::fig7_selectivity`] |
//! | Submission time vs. selectivity | Table 2 | [`experiments::tab2_submission_vs_selectivity`] |
//! | Normalized throughput vs. scale factor | Figure 8 | [`experiments::fig8_data_scale`] |
//! | Submission time vs. scale factor | Table 3 | [`experiments::tab3_submission_vs_sf`] |
//! | Design ablations (early skip, adaptive ordering, batch pool) | §3–§4 design points | [`experiments::ablations`] |
//!
//! The same functions back the Criterion benches under `benches/` (with small
//! parameters) and the `experiments` binary (with paper-shaped sweeps):
//!
//! ```text
//! cargo run --release -p cjoin-bench --bin experiments -- all
//! cargo run --release -p cjoin-bench --bin experiments -- fig5 --scale 0.01 --concurrency 1,32,64,128,256
//! ```
//!
//! The [`hotpath`] module additionally hosts the filter hot-path ablation
//! (batched vs. per-tuple probing) behind the `abl_probe_locking` bench, and
//! `experiments -- bench-json` writes a machine-readable `BENCH_PR2.json`
//! perf-trajectory baseline (filter-stage throughput and end-to-end
//! throughput / p99 submission time under both hot-path settings).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod experiments;
pub mod hotpath;
pub mod report;

pub use driver::{run_closed_loop, QueryTiming, RunReport};
pub use report::{JsonObject, Table};

#[doc(no_inline)]
pub use cjoin_query::{EngineStats, JoinEngine, QueryTicket};
