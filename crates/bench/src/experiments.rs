//! Reproductions of the paper's evaluation (§6), one function per table / figure.
//!
//! Every function takes an explicit parameter struct (so the Criterion benches can
//! run scaled-down versions and the `experiments` binary can run paper-shaped
//! sweeps) and returns a [`Table`] holding the same rows/series the paper reports.
//! Absolute numbers differ from the paper — the substrate is an in-memory row store
//! on laptop-scale data — but the *shapes* (who wins, how each system scales with
//! concurrency / selectivity / data volume) are the reproduction target; see
//! the README for how to run the sweeps.

use std::sync::Arc;
use std::time::Duration;

use cjoin_baseline::{BaselineConfig, BaselineEngine};
use cjoin_common::Result;
use cjoin_core::{CjoinConfig, CjoinEngine, StageLayout};
use cjoin_query::StarQuery;
use cjoin_ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};
use cjoin_storage::{Catalog, IoModel};

use crate::driver::run_closed_loop;
use crate::report::{fmt_f64, fmt_ms, Table};

/// Shared experiment parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentParams {
    /// SSB scale factor used to generate the data set.
    pub scale_factor: f64,
    /// Predicate selectivity `s` of generated workload queries.
    pub selectivity: f64,
    /// Worker threads given to the CJOIN pipeline.
    pub worker_threads: usize,
    /// Number of queries executed per measured point, as a multiple of the
    /// concurrency level (the paper runs 2× the concurrency to reach steady state).
    pub queries_per_level_factor: usize,
    /// RNG seed for data and workload generation.
    pub seed: u64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        Self {
            scale_factor: 0.01,
            selectivity: 0.01,
            worker_threads: 4,
            queries_per_level_factor: 2,
            seed: 0xC70,
        }
    }
}

impl ExperimentParams {
    /// Small parameters for unit tests and Criterion benches.
    pub fn quick() -> Self {
        Self {
            scale_factor: 0.002,
            selectivity: 0.02,
            worker_threads: 2,
            queries_per_level_factor: 1,
            seed: 0xC70,
        }
    }

    /// Generates the SSB data set for these parameters.
    pub fn data(&self) -> SsbDataSet {
        SsbDataSet::generate(SsbConfig::new(self.scale_factor, self.seed))
    }

    fn workload(&self, data: &SsbDataSet, num_queries: usize) -> Workload {
        Workload::generate(
            data,
            WorkloadConfig::new(num_queries, self.selectivity, self.seed ^ 0x9E37),
        )
    }

    fn cjoin_config(&self, concurrency: usize) -> CjoinConfig {
        // Give the id allocator headroom above the driver's concurrency level: query
        // ids are recycled asynchronously by the manager thread after completion, so
        // a client can submit its next query slightly before the previous id is freed.
        CjoinConfig::default()
            .with_worker_threads(self.worker_threads)
            .with_max_concurrency((concurrency * 2 + 16).max(32))
    }
}

fn start_cjoin(catalog: Arc<Catalog>, config: CjoinConfig) -> Result<CjoinEngine> {
    CjoinEngine::start(catalog, config)
}

/// Modelled disk-resident scan time for `passes` sequential passes over the fact
/// table (used to report the "with modelled disk" column; see the `cjoin-storage` `io` module).
fn modelled_scan_time(catalog: &Catalog, passes: f64, io: &IoModel) -> Duration {
    let pages = catalog.fact_table().map(|t| t.num_pages()).unwrap_or(0) as f64;
    Duration::from_secs_f64(pages * passes * io.sequential_page_us / 1e6)
}

// ---------------------------------------------------------------------------
// Figure 4 — pipeline configuration
// ---------------------------------------------------------------------------

/// Figure 4: query throughput of the horizontal vs. vertical pipeline configuration
/// as a function of the number of Stage threads.
///
/// # Errors
/// Propagates engine errors.
pub fn fig4_pipeline_config(
    params: &ExperimentParams,
    thread_counts: &[usize],
    concurrency: usize,
) -> Result<Table> {
    let data = params.data();
    let catalog = data.catalog();
    let workload = params.workload(&data, concurrency * params.queries_per_level_factor);

    let mut table = Table::new(
        "Figure 4: pipeline configuration (queries/hour)",
        vec!["threads", "horizontal", "vertical"],
    );
    for &threads in thread_counts {
        let mut row = vec![threads.to_string()];
        for layout in [StageLayout::Horizontal, StageLayout::Vertical] {
            let config = params
                .cjoin_config(concurrency)
                .with_worker_threads(threads)
                .with_stage_layout(layout);
            let engine = start_cjoin(Arc::clone(&catalog), config)?;
            let report = run_closed_loop(&engine, workload.queries(), concurrency)?;
            engine.shutdown();
            row.push(fmt_f64(report.throughput_qph()));
        }
        table.push_row(row);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// Figure 5 — throughput vs. number of concurrent queries
// ---------------------------------------------------------------------------

/// Figure 5: query throughput of CJOIN, the independent-scan baseline ("System X")
/// and the synchronized-scan baseline (PostgreSQL-like) as the number of concurrent
/// queries grows.
///
/// # Errors
/// Propagates engine errors.
pub fn fig5_concurrency_scaleup(
    params: &ExperimentParams,
    concurrency_levels: &[usize],
) -> Result<Table> {
    let data = params.data();
    let catalog = data.catalog();

    let mut table = Table::new(
        "Figure 5: throughput vs. concurrent queries (queries/hour)",
        vec!["n", "CJOIN", "System X", "PostgreSQL"],
    );
    for &n in concurrency_levels {
        let workload = params.workload(&data, n * params.queries_per_level_factor);

        let cjoin = start_cjoin(Arc::clone(&catalog), params.cjoin_config(n))?;
        let cjoin_report = run_closed_loop(&cjoin, workload.queries(), n)?;
        cjoin.shutdown();

        let system_x = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::system_x());
        let system_x_report = run_closed_loop(&system_x, workload.queries(), n)?;

        let postgres = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::postgres_like());
        let postgres_report = run_closed_loop(&postgres, workload.queries(), n)?;

        table.push_row(vec![
            n.to_string(),
            fmt_f64(cjoin_report.throughput_qph()),
            fmt_f64(system_x_report.throughput_qph()),
            fmt_f64(postgres_report.throughput_qph()),
        ]);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// Figure 6 — predictability of response time
// ---------------------------------------------------------------------------

/// Figure 6: average response time (and relative standard deviation) of queries from
/// the paper's reference template Q4.2 as the number of concurrent queries grows.
///
/// # Errors
/// Propagates engine errors.
pub fn fig6_predictability(
    params: &ExperimentParams,
    concurrency_levels: &[usize],
) -> Result<Table> {
    let data = params.data();
    let catalog = data.catalog();

    let mut table = Table::new(
        "Figure 6: Q4.2 response time vs. concurrent queries (milliseconds; rel. std-dev in %)",
        vec![
            "n",
            "CJOIN",
            "System X",
            "PostgreSQL",
            "CJOIN stddev%",
            "SysX stddev%",
            "PG stddev%",
        ],
    );
    for &n in concurrency_levels {
        let workload = Workload::generate(
            &data,
            WorkloadConfig::new(
                n * params.queries_per_level_factor,
                params.selectivity,
                params.seed ^ 0x42,
            )
            .with_template("Q4.2"),
        );

        let cjoin = start_cjoin(Arc::clone(&catalog), params.cjoin_config(n))?;
        let cjoin_report = run_closed_loop(&cjoin, workload.queries(), n)?;
        cjoin.shutdown();
        let system_x = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::system_x());
        let system_x_report = run_closed_loop(&system_x, workload.queries(), n)?;
        let postgres = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::postgres_like());
        let postgres_report = run_closed_loop(&postgres, workload.queries(), n)?;

        let pct = |x: Option<f64>| fmt_f64(x.unwrap_or(0.0) * 100.0);
        table.push_row(vec![
            n.to_string(),
            fmt_ms(cjoin_report.mean_response_of("Q4.2").unwrap_or_default()),
            fmt_ms(system_x_report.mean_response_of("Q4.2").unwrap_or_default()),
            fmt_ms(postgres_report.mean_response_of("Q4.2").unwrap_or_default()),
            pct(cjoin_report.response_rel_stddev_of("Q4.2")),
            pct(system_x_report.response_rel_stddev_of("Q4.2")),
            pct(postgres_report.response_rel_stddev_of("Q4.2")),
        ]);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// Tables 1–3 — query submission overhead
// ---------------------------------------------------------------------------

/// Submission-time statistics of one CJOIN run: mean admission time and mean
/// response time of the measured queries.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SubmissionStats {
    /// Mean time from submission until the query-start control tuple entered the
    /// pipeline (the paper's "submission time").
    pub mean_submission: Duration,
    /// Mean end-to-end response time.
    pub mean_response: Duration,
}

/// Measures CJOIN submission and response times for `queries` at the given
/// concurrency: the first `concurrency` queries are submitted as a batch (as in the
/// paper's client model) and every query's admission and completion are timed.
///
/// # Errors
/// Propagates engine errors.
pub fn cjoin_submission_stats(
    engine: &CjoinEngine,
    queries: &[StarQuery],
    concurrency: usize,
) -> Result<SubmissionStats> {
    let mut submission_total = Duration::ZERO;
    let mut response_total = Duration::ZERO;
    let mut completed = 0u32;

    // FIFO over the in-flight handles: the oldest query completes first (one scan
    // wrap-around each), so waiting front-to-back keeps `concurrency` queries
    // genuinely in flight for the whole run.
    let mut in_flight = std::collections::VecDeque::new();
    let mut iter = queries.iter();
    // Prime the pipeline with `concurrency` queries.
    for query in iter.by_ref().take(concurrency) {
        in_flight.push_back(engine.submit(query.clone())?);
    }
    // Closed loop: whenever one finishes, submit the next.
    while let Some(handle) = in_flight.pop_front() {
        submission_total += handle.submission_time();
        let (_, response) = handle.wait_with_time()?;
        response_total += response;
        completed += 1;
        if let Some(query) = iter.next() {
            in_flight.push_back(engine.submit(query.clone())?);
        }
    }
    if completed == 0 {
        return Ok(SubmissionStats::default());
    }
    Ok(SubmissionStats {
        mean_submission: submission_total / completed,
        mean_response: response_total / completed,
    })
}

/// Table 1: influence of concurrency on query submission time (CJOIN).
///
/// # Errors
/// Propagates engine errors.
pub fn tab1_submission_vs_concurrency(
    params: &ExperimentParams,
    concurrency_levels: &[usize],
) -> Result<Table> {
    let data = params.data();
    let catalog = data.catalog();
    let mut table = Table::new(
        "Table 1: query submission time vs. concurrency (CJOIN, Q4.2 workload)",
        vec!["n", "submission (ms)", "response (ms)"],
    );
    for &n in concurrency_levels {
        let workload = Workload::generate(
            &data,
            WorkloadConfig::new(
                n * params.queries_per_level_factor,
                params.selectivity,
                params.seed,
            )
            .with_template("Q4.2"),
        );
        let engine = start_cjoin(Arc::clone(&catalog), params.cjoin_config(n))?;
        let stats = cjoin_submission_stats(&engine, workload.queries(), n)?;
        engine.shutdown();
        table.push_row(vec![
            n.to_string(),
            fmt_ms(stats.mean_submission),
            fmt_ms(stats.mean_response),
        ]);
    }
    Ok(table)
}

/// Table 2: influence of predicate selectivity on query submission time (CJOIN).
///
/// # Errors
/// Propagates engine errors.
pub fn tab2_submission_vs_selectivity(
    params: &ExperimentParams,
    selectivities: &[f64],
    concurrency: usize,
) -> Result<Table> {
    let data = params.data();
    let catalog = data.catalog();
    let mut table = Table::new(
        "Table 2: query submission time vs. predicate selectivity (CJOIN)",
        vec!["selectivity (%)", "submission (ms)", "response (ms)"],
    );
    for &s in selectivities {
        let workload = Workload::generate(
            &data,
            WorkloadConfig::new(
                concurrency * params.queries_per_level_factor,
                s,
                params.seed,
            )
            .with_template("Q4.2"),
        );
        let engine = start_cjoin(Arc::clone(&catalog), params.cjoin_config(concurrency))?;
        let stats = cjoin_submission_stats(&engine, workload.queries(), concurrency)?;
        engine.shutdown();
        table.push_row(vec![
            fmt_f64(s * 100.0),
            fmt_ms(stats.mean_submission),
            fmt_ms(stats.mean_response),
        ]);
    }
    Ok(table)
}

/// Table 3: influence of the data scale factor on query submission time (CJOIN).
///
/// # Errors
/// Propagates engine errors.
pub fn tab3_submission_vs_sf(
    params: &ExperimentParams,
    scale_factors: &[f64],
    concurrency: usize,
) -> Result<Table> {
    let mut table = Table::new(
        "Table 3: query submission time vs. scale factor (CJOIN)",
        vec!["scale factor", "submission (ms)", "response (ms)"],
    );
    for &sf in scale_factors {
        let mut p = params.clone();
        p.scale_factor = sf;
        let data = p.data();
        let catalog = data.catalog();
        let workload = Workload::generate(
            &data,
            WorkloadConfig::new(
                concurrency * p.queries_per_level_factor,
                p.selectivity,
                p.seed,
            )
            .with_template("Q4.2"),
        );
        let engine = start_cjoin(Arc::clone(&catalog), p.cjoin_config(concurrency))?;
        let stats = cjoin_submission_stats(&engine, workload.queries(), concurrency)?;
        engine.shutdown();
        table.push_row(vec![
            format!("{sf}"),
            fmt_ms(stats.mean_submission),
            fmt_ms(stats.mean_response),
        ]);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// Figure 7 — selectivity sweep
// ---------------------------------------------------------------------------

/// Figure 7: throughput of the three systems as the workload's predicate selectivity
/// grows (more dimension tuples selected per query).
///
/// # Errors
/// Propagates engine errors.
pub fn fig7_selectivity(
    params: &ExperimentParams,
    selectivities: &[f64],
    concurrency: usize,
) -> Result<Table> {
    let data = params.data();
    let catalog = data.catalog();
    let mut table = Table::new(
        "Figure 7: throughput vs. predicate selectivity (queries/hour)",
        vec!["selectivity (%)", "CJOIN", "System X", "PostgreSQL"],
    );
    for &s in selectivities {
        let workload = Workload::generate(
            &data,
            WorkloadConfig::new(
                concurrency * params.queries_per_level_factor,
                s,
                params.seed ^ 7,
            ),
        );
        let cjoin = start_cjoin(Arc::clone(&catalog), params.cjoin_config(concurrency))?;
        let cjoin_report = run_closed_loop(&cjoin, workload.queries(), concurrency)?;
        cjoin.shutdown();
        let system_x = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::system_x());
        let system_x_report = run_closed_loop(&system_x, workload.queries(), concurrency)?;
        let postgres = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::postgres_like());
        let postgres_report = run_closed_loop(&postgres, workload.queries(), concurrency)?;
        table.push_row(vec![
            fmt_f64(s * 100.0),
            fmt_f64(cjoin_report.throughput_qph()),
            fmt_f64(system_x_report.throughput_qph()),
            fmt_f64(postgres_report.throughput_qph()),
        ]);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// Figure 8 — data scale sweep
// ---------------------------------------------------------------------------

/// Figure 8: normalized throughput (throughput × scale factor) as the data volume
/// grows; ideal behaviour is a flat line.
///
/// # Errors
/// Propagates engine errors.
pub fn fig8_data_scale(
    params: &ExperimentParams,
    scale_factors: &[f64],
    concurrency: usize,
) -> Result<Table> {
    let mut table = Table::new(
        "Figure 8: normalized throughput vs. scale factor (queries/hour x sf)",
        vec!["scale factor", "CJOIN", "System X", "PostgreSQL"],
    );
    for &sf in scale_factors {
        let mut p = params.clone();
        p.scale_factor = sf;
        let data = p.data();
        let catalog = data.catalog();
        let workload = p.workload(&data, concurrency * p.queries_per_level_factor);

        let cjoin = start_cjoin(Arc::clone(&catalog), p.cjoin_config(concurrency))?;
        let cjoin_report = run_closed_loop(&cjoin, workload.queries(), concurrency)?;
        cjoin.shutdown();
        let system_x = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::system_x());
        let system_x_report = run_closed_loop(&system_x, workload.queries(), concurrency)?;
        let postgres = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::postgres_like());
        let postgres_report = run_closed_loop(&postgres, workload.queries(), concurrency)?;

        table.push_row(vec![
            format!("{sf}"),
            fmt_f64(cjoin_report.throughput_qph() * sf),
            fmt_f64(system_x_report.throughput_qph() * sf),
            fmt_f64(postgres_report.throughput_qph() * sf),
        ]);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// Design ablations
// ---------------------------------------------------------------------------

/// Ablations of CJOIN design choices called out in §3–§4: the early-skip
/// optimisation, run-time filter ordering, and the pooled batch allocator.
///
/// # Errors
/// Propagates engine errors.
pub fn ablations(params: &ExperimentParams, concurrency: usize) -> Result<Table> {
    let data = params.data();
    let catalog = data.catalog();
    let workload = params.workload(&data, concurrency * params.queries_per_level_factor);

    let mut table = Table::new(
        "Design ablations (queries/hour)",
        vec!["configuration", "throughput"],
    );
    let variants: Vec<(&str, CjoinConfig)> = vec![
        ("full design", params.cjoin_config(concurrency)),
        ("no early skip", {
            let mut c = params.cjoin_config(concurrency);
            c.early_skip = false;
            c
        }),
        ("no adaptive ordering", {
            let mut c = params.cjoin_config(concurrency);
            c.adaptive_filter_ordering = false;
            c
        }),
        ("no batch pool", {
            let mut c = params.cjoin_config(concurrency);
            c.use_batch_pool = false;
            c
        }),
        (
            "single worker thread",
            params.cjoin_config(concurrency).with_worker_threads(1),
        ),
    ];
    for (name, config) in variants {
        let engine = start_cjoin(Arc::clone(&catalog), config)?;
        let report = run_closed_loop(&engine, workload.queries(), concurrency)?;
        engine.shutdown();
        table.push_row(vec![name.to_string(), fmt_f64(report.throughput_qph())]);
    }
    Ok(table)
}

/// Modelled disk-resident comparison for one concurrency level: how long one shared
/// circular scan pass takes vs. `n` independent (random-access) scans under the
/// spinning-disk I/O model. Complements Figure 5 with the I/O story that an
/// in-memory run cannot show directly.
pub fn modelled_io_comparison(
    params: &ExperimentParams,
    concurrency_levels: &[usize],
) -> Result<Table> {
    let data = params.data();
    let catalog = data.catalog();
    let io = IoModel::spinning_disk();
    let mut table = Table::new(
        "Modelled disk I/O time per workload pass (seconds, spinning-disk model)",
        vec!["n", "CJOIN shared scan", "independent scans", "ratio"],
    );
    for &n in concurrency_levels {
        // CJOIN: every concurrent query shares (at most) two passes over the table.
        let cjoin_io = modelled_scan_time(&catalog, 2.0, &io);
        // Query-at-a-time: n full scans, degraded to random access once n > 1.
        let pages = catalog.fact_table()?.num_pages() as f64;
        let per_page = if n > 1 {
            io.random_page_us
        } else {
            io.sequential_page_us
        };
        let baseline_io = Duration::from_secs_f64(pages * n as f64 * per_page / 1e6);
        let ratio = if cjoin_io.as_secs_f64() > 0.0 {
            baseline_io.as_secs_f64() / cjoin_io.as_secs_f64()
        } else {
            0.0
        };
        table.push_row(vec![
            n.to_string(),
            fmt_f64(cjoin_io.as_secs_f64()),
            fmt_f64(baseline_io.as_secs_f64()),
            fmt_f64(ratio),
        ]);
    }
    Ok(table)
}

/// Measured columnar scan volume (§5 "Column Stores" / "Compressed Tables"):
/// a clustered date-range probe workload through the columnar pipeline, compared
/// against the bytes one row-store pass moves per row. Complements the modelled
/// disk table with the byte-level story of encoded predicates, zone-map skipping
/// and late materialization.
///
/// # Errors
/// Propagates engine errors.
pub fn columnar_scan_volume(params: &ExperimentParams) -> Result<Table> {
    let probe = crate::hotpath::columnar_range_probe(params)?;
    let mut table = Table::new(
        "Measured columnar scan volume (clustered date-range probes, CjoinConfig::columnar_scan)",
        vec!["metric", "value"],
    );
    table.push_row(vec![
        "rows considered per probe pass".into(),
        probe.fact_rows.to_string(),
    ]);
    table.push_row(vec![
        "row-store bytes/row".into(),
        fmt_f64(probe.row_store_bytes_per_row()),
    ]);
    table.push_row(vec![
        "columnar bytes/row".into(),
        fmt_f64(probe.columnar_bytes_per_row()),
    ]);
    table.push_row(vec![
        "byte ratio (columnar / row)".into(),
        fmt_f64(probe.columnar_bytes_per_row() / probe.row_store_bytes_per_row()),
    ]);
    table.push_row(vec![
        "zone-map skip rate".into(),
        fmt_f64(probe.skip_rate()),
    ]);
    table.push_row(vec![
        "row groups skipped".into(),
        probe.stats.row_groups_skipped.to_string(),
    ]);
    table.push_row(vec![
        "rows per predicate probe (RLE column)".into(),
        fmt_f64(probe.rle_rows_per_probe),
    ]);
    table.push_row(vec![
        "replica compression ratio".into(),
        fmt_f64(probe.compression_ratio),
    ]);
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_params_generate_small_data() {
        let p = ExperimentParams::quick();
        let data = p.data();
        assert!(data.catalog().fact_table().unwrap().len() <= 20_000);
    }

    #[test]
    fn fig5_quick_run_produces_all_rows() {
        let p = ExperimentParams::quick();
        let table = fig5_concurrency_scaleup(&p, &[1, 4]).unwrap();
        assert_eq!(table.num_rows(), 2);
        assert_eq!(table.columns.len(), 4);
        // Throughput cells must parse as positive numbers.
        for row in &table.rows {
            for cell in &row[1..] {
                assert!(cell.parse::<f64>().unwrap() > 0.0, "{cell}");
            }
        }
    }

    #[test]
    fn tab1_quick_run_reports_submission_times() {
        let p = ExperimentParams::quick();
        let table = tab1_submission_vs_concurrency(&p, &[2]).unwrap();
        assert_eq!(table.num_rows(), 1);
        let submission_ms: f64 = table.rows[0][1].parse().unwrap();
        let response_ms: f64 = table.rows[0][2].parse().unwrap();
        assert!(submission_ms >= 0.0);
        assert!(response_ms > 0.0);
        assert!(
            submission_ms < response_ms,
            "admission is cheaper than a full pass"
        );
    }

    #[test]
    fn modelled_io_comparison_shows_sharing_advantage() {
        let p = ExperimentParams::quick();
        let table = modelled_io_comparison(&p, &[1, 32]).unwrap();
        assert_eq!(table.num_rows(), 2);
        let ratio_1: f64 = table.rows[0][3].parse().unwrap();
        let ratio_32: f64 = table.rows[1][3].parse().unwrap();
        assert!(
            ratio_32 > ratio_1,
            "sharing advantage grows with concurrency"
        );
        assert!(ratio_32 > 10.0);
    }

    #[test]
    fn columnar_scan_volume_reports_byte_savings() {
        let p = ExperimentParams::quick();
        let table = columnar_scan_volume(&p).unwrap();
        assert_eq!(table.num_rows(), 8);
        let value = |i: usize| table.rows[i][1].parse::<f64>().unwrap();
        let ratio = value(3);
        assert!(
            ratio > 0.0 && ratio < 0.4,
            "columnar probes must move well under 40% of the row-store bytes, got {ratio}"
        );
        assert!(
            value(6) > 32.0,
            "an RLE column answers whole runs per probe, got {} rows/probe",
            value(6)
        );
    }

    #[test]
    fn ablations_quick_run() {
        let p = ExperimentParams::quick();
        let table = ablations(&p, 4).unwrap();
        assert_eq!(table.num_rows(), 5);
        for row in &table.rows {
            assert!(row[1].parse::<f64>().unwrap() > 0.0);
        }
    }
}
