//! Filter hot-path ablation harness.
//!
//! The `batched_probing` knob ([`CjoinConfig::batched_probing`]) switches the Filter
//! pipeline between the batch-vectorized hot path (per-batch read locks, borrowed
//! entries, batch-local statistics, fused AND + zero check) and the per-tuple
//! baseline (per-tuple lock + `Arc` clone + atomic statistics). This module measures
//! the difference at two levels:
//!
//! * [`ProbeHarness`] — an isolated **filter-stage** microbenchmark: a fig5-style
//!   population of dimension hash tables (many concurrent queries, configurable
//!   selectivity) is probed with a steady batch of fact tuples through
//!   [`FilterChain::process_batch`] under both knob settings. This is the number the
//!   `abl_probe_locking` Criterion bench and the `BENCH_PR2.json` baseline report.
//! * [`end_to_end_ab`] — the same knob toggled on a full [`CjoinEngine`] running a
//!   fig5-style closed-loop workload, reporting throughput and submission-time
//!   percentiles.
//! * [`end_to_end_sharding`] — the same closed loop swept over
//!   `CjoinConfig::distributor_shards`, measuring the sharded aggregation stage
//!   (the `abl_distributor_sharding` ablation and the `BENCH_PR3.json` baseline).
//! * [`end_to_end_scan_workers`] — the same closed loop swept over the
//!   `CjoinConfig::scan_workers` × `distributor_shards` grid, measuring the
//!   sharded scan front-end (the `abl_scan_parallelism` ablation and the
//!   `BENCH_PR5.json` baseline). Scan parallelism pays off on ingest-bound
//!   populations (low selectivity, larger scale factors) and on hosts with
//!   spare cores — the baseline records the host's parallelism for context.
//! * [`end_to_end_columnar`] / [`columnar_range_probe`] — the same closed loop
//!   with the compressed columnar scan front-end on or off
//!   (`CjoinConfig::columnar_scan`), plus a clustered date-range probe that
//!   reports the byte-level scan volume, zone-map skip rate and per-run probe
//!   ratio (the `abl_columnar_scan` ablation and the `BENCH_PR6.json`
//!   baseline).
//! * [`end_to_end_served`] — the same closed loop driven once in-process and
//!   once through the full socket path (`RemoteEngine` → TCP → `CjoinServer`)
//!   over an identically configured engine, measuring what the serving layer
//!   costs (the `BENCH_PR8.json` baseline).
//! * [`ingest_rate`] — the durable ingestion path swept over
//!   `SyncPolicy` × batch size: WAL-logged fact batches are committed and the
//!   engine is then restarted to time crash recovery (the `BENCH_PR10.json`
//!   baseline).
//!
//! Everything is seeded and deterministic (a splitmix64 stream) so runs are
//! reproducible.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cjoin_client::RemoteEngine;
use cjoin_common::{splitmix64, QueryId, QuerySet, Result};
use cjoin_core::dimension::DimensionTable;
use cjoin_core::filter::FilterChain;
use cjoin_core::stats::ColumnarScanStats;
use cjoin_core::tuple::{Batch, InFlightTuple};
use cjoin_core::{CjoinConfig, CjoinEngine};
use cjoin_query::wire::AdmissionPolicy;
use cjoin_query::{AggFunc, AggregateSpec, ColumnRef, JoinEngine, Predicate, StarQuery};
use cjoin_server::{CjoinServer, ServerConfig};
use cjoin_ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};
use cjoin_storage::{Row, RowId, SyncPolicy, Value};

use crate::driver::{run_closed_loop, RunReport};
use crate::experiments::ExperimentParams;

/// Uniform draw in `[0, 1)` from the shared [`splitmix64`] stream.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Parameters of the filter-stage ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeAblationParams {
    /// Number of dimension tables (Filters) in the chain.
    pub dims: usize,
    /// Primary keys per dimension (`0..keys_per_dim`).
    pub keys_per_dim: i64,
    /// Concurrent queries that reference every dimension.
    pub queries: usize,
    /// Additional concurrent queries that reference no dimension (they keep every
    /// tuple alive, giving the harness a steady-state batch).
    pub unreferencing_queries: usize,
    /// Fraction of each dimension's keys selected per referencing query.
    pub selectivity: f64,
    /// Fact tuples per probed batch.
    pub batch_size: usize,
    /// Bit-vector width (`maxConc`).
    pub max_concurrency: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl ProbeAblationParams {
    /// A fig5-shaped population: 3 dimensions, 32 concurrent queries at 5 %
    /// selectivity plus a few dimension-free queries, probed in 1024-tuple batches.
    pub fn fig5_style() -> Self {
        Self {
            dims: 3,
            keys_per_dim: 2_000,
            queries: 32,
            unreferencing_queries: 4,
            selectivity: 0.05,
            batch_size: 1_024,
            max_concurrency: 64,
            seed: 0x000C_7052,
        }
    }

    /// A tiny configuration for the CI perf-smoke lane and unit tests.
    pub fn tiny() -> Self {
        Self {
            dims: 2,
            keys_per_dim: 64,
            queries: 8,
            unreferencing_queries: 2,
            selectivity: 0.25,
            batch_size: 128,
            max_concurrency: 16,
            seed: 0x000C_7053,
        }
    }
}

/// A built filter-stage ablation: populated dimension tables plus a stabilised
/// template batch that survives repeated probing unchanged, so each measured pass
/// does identical work.
pub struct ProbeHarness {
    filters: Vec<Arc<DimensionTable>>,
    /// Raw batch as the Preprocessor would emit it (pre-stabilisation).
    template: Batch,
    /// The template after one filtering pass: bit-vectors are fixpoints of the
    /// chain's AND masks, so further passes neither drop tuples nor change bits.
    stable: Batch,
    early_skip: bool,
}

impl ProbeHarness {
    /// Builds the dimension tables, registers the synthetic query population and
    /// prepares the template batches.
    pub fn build(params: &ProbeAblationParams) -> Self {
        assert!(
            params.queries + params.unreferencing_queries <= params.max_concurrency,
            "query population exceeds maxConc"
        );
        let mut rng = params.seed;
        let empty = QuerySet::new(params.max_concurrency);
        let filters: Vec<Arc<DimensionTable>> = (0..params.dims)
            .map(|j| {
                Arc::new(DimensionTable::new(
                    format!("dim{j}"),
                    j,
                    j,
                    0,
                    params.max_concurrency,
                    &empty,
                ))
            })
            .collect();
        for (j, dim) in filters.iter().enumerate() {
            for q in 0..params.queries {
                let rows: Vec<(i64, Row)> = (0..params.keys_per_dim)
                    .filter(|_| unit(&mut rng) < params.selectivity)
                    .map(|k| (k, Row::new(vec![Value::int(k), Value::int(j as i64)])))
                    .collect();
                dim.register_query(QueryId(q as u32), &rows);
            }
            for u in 0..params.unreferencing_queries {
                dim.register_unreferencing_query(QueryId((params.queries + u) as u32));
            }
        }

        let all_bits = QuerySet::from_bits(
            params.max_concurrency,
            0..params.queries + params.unreferencing_queries,
        );
        let template: Batch = (0..params.batch_size)
            .map(|i| {
                let values: Vec<Value> = (0..params.dims)
                    .map(|_| Value::int((splitmix64(&mut rng) % params.keys_per_dim as u64) as i64))
                    .collect();
                InFlightTuple::new(
                    RowId(i as u64),
                    Row::new(values),
                    all_bits.clone(),
                    params.dims,
                )
            })
            .collect();

        // One pass brings every surviving tuple's bit-vector to its fixpoint
        // (AND against the same masks is idempotent), giving a steady batch.
        let mut stable = template.clone();
        FilterChain::process_batch(&filters, &mut stable, true, true);

        Self {
            filters,
            template,
            stable,
            early_skip: true,
        }
    }

    /// A fresh working copy of the stabilised batch.
    pub fn working_batch(&self) -> Batch {
        self.stable.clone()
    }

    /// Number of tuples in the steady batch each pass processes.
    pub fn steady_len(&self) -> usize {
        self.stable.len()
    }

    /// Runs one pass of the filter chain over `batch`; returns tuples dropped.
    pub fn run_pass(&self, batch: &mut Batch, batched_probing: bool) -> usize {
        FilterChain::process_batch(&self.filters, batch, self.early_skip, batched_probing)
    }

    /// Verifies both hot paths produce identical survivors (row ids, bit-vectors,
    /// attached dimension rows) from the raw template.
    pub fn paths_agree(&self) -> bool {
        let fingerprint = |b: &Batch| -> Vec<(u64, Vec<usize>, Vec<bool>)> {
            b.iter()
                .map(|t| {
                    (
                        t.row_id.0,
                        t.bits.iter().collect(),
                        t.dims.iter().map(Option::is_some).collect(),
                    )
                })
                .collect()
        };
        let mut batched = self.template.clone();
        FilterChain::process_batch(&self.filters, &mut batched, self.early_skip, true);
        let mut per_tuple = self.template.clone();
        FilterChain::process_batch(&self.filters, &mut per_tuple, self.early_skip, false);
        fingerprint(&batched) == fingerprint(&per_tuple)
    }

    /// Measures filter-stage throughput (fact tuples entering the chain per second)
    /// for one knob setting, running passes for at least `min_duration`.
    pub fn measure(&self, batched_probing: bool, min_duration: Duration) -> f64 {
        let mut batch = self.working_batch();
        // Warm caches and the branch predictor before timing.
        self.run_pass(&mut batch, batched_probing);
        let started = Instant::now();
        let mut tuples = 0u64;
        loop {
            self.run_pass(&mut batch, batched_probing);
            tuples += batch.len() as u64;
            let elapsed = started.elapsed();
            if elapsed >= min_duration {
                return tuples as f64 / elapsed.as_secs_f64();
            }
        }
    }
}

/// Result of one end-to-end A/B run (one knob setting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EndToEndReport {
    /// Queries completed per hour of wall-clock time.
    pub throughput_qph: f64,
    /// Mean admission ("submission") time in milliseconds.
    pub mean_submission_ms: f64,
    /// 99th-percentile admission time in milliseconds.
    pub p99_submission_ms: f64,
    /// Mean end-to-end response time in milliseconds.
    pub mean_response_ms: f64,
    /// Completed queries.
    pub queries: usize,
}

/// Runs a fig5-style closed-loop workload on a full [`CjoinEngine`] with the given
/// `batched_probing` setting, collecting throughput and submission-time percentiles.
///
/// # Errors
/// Propagates engine errors.
pub fn end_to_end_ab(
    params: &ExperimentParams,
    concurrency: usize,
    batched_probing: bool,
) -> Result<EndToEndReport> {
    let config = base_config(params, concurrency).with_batched_probing(batched_probing);
    end_to_end_with_config(params, concurrency, config)
}

/// Runs the same fig5-style closed-loop workload with a sharded aggregation stage
/// (`CjoinConfig::distributor_shards = shards`) — the `abl_distributor_sharding`
/// ablation and the `BENCH_PR3.json` baseline.
///
/// # Errors
/// Propagates engine errors.
pub fn end_to_end_sharding(
    params: &ExperimentParams,
    concurrency: usize,
    shards: usize,
) -> Result<EndToEndReport> {
    let config = base_config(params, concurrency).with_distributor_shards(shards);
    end_to_end_with_config(params, concurrency, config)
}

/// Runs the same fig5-style closed-loop workload with a sharded scan front-end
/// (`CjoinConfig::scan_workers = scan_workers`) over a sharded or classic
/// aggregation stage — the `abl_scan_parallelism` ablation and the
/// `BENCH_PR5.json` baseline.
///
/// # Errors
/// Propagates engine errors.
pub fn end_to_end_scan_workers(
    params: &ExperimentParams,
    concurrency: usize,
    scan_workers: usize,
    shards: usize,
) -> Result<EndToEndReport> {
    let config = base_config(params, concurrency)
        .with_scan_workers(scan_workers)
        .with_distributor_shards(shards);
    end_to_end_with_config(params, concurrency, config)
}

/// Runs the same fig5-style closed-loop workload with the compressed columnar
/// scan front-end on or off (`CjoinConfig::columnar_scan`), over the classic or
/// sharded scan layout — the in-pipeline half of the `abl_columnar_scan`
/// ablation and the `BENCH_PR6.json` baseline. Alongside the throughput report
/// it returns the byte-level scan volume (`None` on the row path).
///
/// # Errors
/// Propagates engine errors.
pub fn end_to_end_columnar(
    params: &ExperimentParams,
    concurrency: usize,
    scan_workers: usize,
    columnar: bool,
) -> Result<(EndToEndReport, Option<ColumnarScanStats>)> {
    let config = base_config(params, concurrency)
        .with_scan_workers(scan_workers)
        .with_columnar_scan(columnar);
    end_to_end_capture(params, concurrency, config)
}

/// Runs the same fig5-style closed-loop workload with pipeline supervision on
/// or off (`CjoinConfig::supervision`) — the `BENCH_PR7.json` overhead A/B.
/// Supervision wraps every role in `catch_unwind`, runs the supervisor/reaper
/// thread, and keeps the per-query runtimes registry; this measures what that
/// scaffolding costs on the fault-free hot path.
///
/// # Errors
/// Propagates engine errors.
pub fn end_to_end_supervision(
    params: &ExperimentParams,
    concurrency: usize,
    supervision: bool,
) -> Result<EndToEndReport> {
    let config = base_config(params, concurrency).with_supervision(supervision);
    end_to_end_with_config(params, concurrency, config)
}

/// Runs the same fig5-style closed-loop workload with the elastic stage
/// scheduler on or off (`CjoinConfig::auto_tune`) — the `BENCH_PR9.json` A/B.
///
/// Deliberately not the builder path: the axis builders *pin* their knobs, and
/// a pinned axis is exactly what this A/B must avoid. Every parallelism knob
/// is left at its default, so with `auto_tune` on the scheduler governs all
/// three axes (startup sizing from the host, mid-run resizes from live
/// counters), and with it off the same default values run as fixed widths —
/// the pre-scheduler engine shape.
///
/// # Errors
/// Propagates engine errors.
pub fn end_to_end_auto_tune(
    params: &ExperimentParams,
    concurrency: usize,
    enabled: bool,
) -> Result<EndToEndReport> {
    let config = CjoinConfig {
        max_concurrency: (concurrency * 2 + 16).max(32),
        ..CjoinConfig::default()
    }
    .with_auto_tune(enabled);
    end_to_end_with_config(params, concurrency, config)
}

/// Runs the same fig5-style closed-loop workload twice — once in-process
/// against a [`CjoinEngine`], once through the full socket path
/// (`RemoteEngine` → TCP → `CjoinServer`) over a second, identically
/// configured engine — and returns `(in_process, served)` reports. Both runs
/// go through the engine-agnostic [`run_closed_loop`] driver, so the only
/// difference between them is the serving layer: framing, per-connection
/// threads, and multi-tenant admission bookkeeping.
///
/// # Errors
/// Propagates engine, server, and transport errors.
pub fn end_to_end_served(
    params: &ExperimentParams,
    concurrency: usize,
) -> Result<(RunReport, RunReport)> {
    let data = params.data();
    let catalog = data.catalog();
    let workload = Workload::generate(
        &data,
        WorkloadConfig::new(
            concurrency * params.queries_per_level_factor,
            params.selectivity,
            params.seed ^ 0x5E,
        ),
    );
    let config = base_config(params, concurrency);

    let engine = CjoinEngine::start(Arc::clone(&catalog), config.clone())?;
    let in_process = run_closed_loop(&engine, workload.queries(), concurrency)?;
    engine.shutdown();

    let engine: Arc<dyn JoinEngine> = Arc::new(CjoinEngine::start(catalog, config)?);
    let server = CjoinServer::start(
        engine,
        ServerConfig::default().with_tenant_inflight_cap((concurrency * 2).max(8)),
    )?;
    let client = RemoteEngine::connect(server.local_addr())?
        .with_tenant("bench")
        .with_policy(AdmissionPolicy::Queue);
    let served = run_closed_loop(&client, workload.queries(), concurrency)?;
    server.shutdown();

    Ok((in_process, served))
}

/// The scan volume of a clustered date-range probe workload, with the context
/// needed to compare it against the row store.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarProbeReport {
    /// Scan-volume counters accumulated over the whole probe workload.
    pub stats: ColumnarScanStats,
    /// Fact-table rows.
    pub fact_rows: u64,
    /// Fact-table arity (the row path materialises every column of every row).
    pub fact_arity: usize,
    /// Plain-bytes / encoded-bytes ratio of the columnar replica.
    pub compression_ratio: f64,
    /// Probe queries executed.
    pub queries: usize,
    /// Rows answered per predicate probe on a run-length-encoded column
    /// (measured on a synthetic long-run fact table — adaptive compression
    /// picks delta coding for SSB's clustered date column, so the per-run
    /// evidence needs a column where RLE wins).
    pub rle_rows_per_probe: f64,
}

impl ColumnarProbeReport {
    /// Bytes one pass of the row-store scan moves per row (8 bytes per column).
    pub fn row_store_bytes_per_row(&self) -> f64 {
        self.fact_arity as f64 * 8.0
    }

    /// Bytes the columnar scan actually touched per row it had to consider
    /// (scanned + zone-map-skipped rows cover the same passes the row scan
    /// would have made).
    pub fn columnar_bytes_per_row(&self) -> f64 {
        let rows = self.stats.rows_scanned + self.stats.rows_predicate_skipped;
        if rows == 0 {
            0.0
        } else {
            self.stats.bytes_scanned as f64 / rows as f64
        }
    }

    /// Fraction of considered rows skipped without touching their bytes.
    pub fn skip_rate(&self) -> f64 {
        let rows = self.stats.rows_scanned + self.stats.rows_predicate_skipped;
        if rows == 0 {
            0.0
        } else {
            self.stats.rows_predicate_skipped as f64 / rows as f64
        }
    }
}

/// Runs a clustered date-range probe workload through the columnar pipeline and
/// reports its scan volume: the fact table is clustered by `lo_orderdate`, so
/// per-year `BETWEEN` predicates exercise zone-map skipping, and the clustered
/// date column run-length-encodes, so the kernel's per-run probes show up as
/// `rows_per_probe ≫ 1` (the `experiments -- io` columnar table and the
/// `BENCH_PR6.json` evidence fields).
///
/// # Errors
/// Propagates engine errors.
pub fn columnar_range_probe(params: &ExperimentParams) -> Result<ColumnarProbeReport> {
    let data = SsbDataSet::generate(SsbConfig {
        cluster_by_orderdate: true,
        ..SsbConfig::new(params.scale_factor, params.seed)
    });
    let catalog = data.catalog();
    let fact = catalog.fact_table()?;
    let fact_rows = fact.len() as u64;
    let fact_arity = fact.schema().arity();
    let config = CjoinConfig::default()
        .with_worker_threads(params.worker_threads)
        .with_columnar_scan(true);
    let engine = CjoinEngine::start(catalog, config)?;
    let years = [1993i64, 1994, 1995, 1996, 1997];
    for year in years {
        let query = StarQuery::builder(format!("probe_{year}"))
            .fact_predicate(Predicate::between(
                "lo_orderdate",
                year * 10_000 + 101,
                year * 10_000 + 1231,
            ))
            .aggregate(AggregateSpec::count_star())
            .aggregate(AggregateSpec::over(
                AggFunc::Sum,
                ColumnRef::fact("lo_revenue"),
            ))
            .build();
        engine.execute(query)?;
    }
    let stats = engine
        .stats()
        .columnar
        .ok_or_else(|| cjoin_common::Error::invalid_state("columnar stats missing"))?;
    let compression_ratio = engine
        .columnar_replica()
        .map(|replica| replica.compression_ratio())
        .unwrap_or(1.0);
    engine.shutdown();
    Ok(ColumnarProbeReport {
        stats,
        fact_rows,
        fact_arity,
        compression_ratio,
        queries: years.len(),
        rle_rows_per_probe: rle_run_probe(params)?,
    })
}

/// Measures rows answered per predicate probe on a fact column with 256-row
/// runs, where adaptive compression deterministically picks RLE and the kernel
/// answers each run with a single probe.
fn rle_run_probe(params: &ExperimentParams) -> Result<f64> {
    use cjoin_storage::{Catalog, Column, Schema, SnapshotId, Table};
    let catalog = Catalog::new();
    let fact = Table::new(Schema::new(
        "runs",
        vec![Column::int("grp"), Column::int("rev")],
    ));
    fact.insert_batch_unchecked(
        (0..32_768i64).map(|i| Row::new(vec![Value::int(i / 256), Value::int(i % 97)])),
        SnapshotId::INITIAL,
    );
    catalog.add_fact_table(Arc::new(fact));
    let config = CjoinConfig::default()
        .with_worker_threads(params.worker_threads)
        .with_columnar_scan(true);
    let engine = CjoinEngine::start(Arc::new(catalog), config)?;
    // Straddles run values mid-group so boundary groups are probed per run
    // rather than resolved by their zone maps alone.
    let query = StarQuery::builder("rle_probe")
        .fact_predicate(Predicate::between("grp", 22, 101))
        .aggregate(AggregateSpec::count_star())
        .build();
    engine.execute(query)?;
    let rows_per_probe = engine
        .stats()
        .columnar
        .map(|stats| stats.rows_per_probe())
        .unwrap_or(0.0);
    engine.shutdown();
    Ok(rows_per_probe)
}

fn base_config(params: &ExperimentParams, concurrency: usize) -> CjoinConfig {
    CjoinConfig::default()
        .with_worker_threads(params.worker_threads)
        .with_max_concurrency((concurrency * 2 + 16).max(32))
}

/// Shared closed-loop driver behind the end-to-end ablations.
fn end_to_end_with_config(
    params: &ExperimentParams,
    concurrency: usize,
    config: CjoinConfig,
) -> Result<EndToEndReport> {
    Ok(end_to_end_capture(params, concurrency, config)?.0)
}

/// The closed loop plus a snapshot of the columnar scan volume (when the config
/// enables the columnar front-end) taken before shutdown.
fn end_to_end_capture(
    params: &ExperimentParams,
    concurrency: usize,
    config: CjoinConfig,
) -> Result<(EndToEndReport, Option<ColumnarScanStats>)> {
    let data = params.data();
    let catalog = data.catalog();
    let workload = Workload::generate(
        &data,
        WorkloadConfig::new(
            concurrency * params.queries_per_level_factor,
            params.selectivity,
            params.seed ^ 0xAB,
        ),
    );
    let engine = CjoinEngine::start(catalog, config)?;

    let mut submissions: Vec<Duration> = Vec::new();
    let mut responses: Vec<Duration> = Vec::new();
    let started = Instant::now();
    // FIFO over the in-flight handles: the oldest query finishes first (every
    // registered query needs one scan wrap-around), so waiting front-to-back keeps
    // the engine at the full concurrency level for the entire run.
    let mut in_flight = std::collections::VecDeque::new();
    let mut iter = workload.queries().iter();
    for query in iter.by_ref().take(concurrency) {
        in_flight.push_back(engine.submit(query.clone())?);
    }
    while let Some(handle) = in_flight.pop_front() {
        submissions.push(handle.submission_time());
        let (_, response) = handle.wait_with_time()?;
        responses.push(response);
        if let Some(query) = iter.next() {
            in_flight.push_back(engine.submit(query.clone())?);
        }
    }
    let wall = started.elapsed();
    let columnar = engine.stats().columnar;
    engine.shutdown();

    let queries = responses.len();
    let mean_ms = |xs: &[Duration]| -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter().map(Duration::as_secs_f64).sum::<f64>() / xs.len() as f64 * 1e3
    };
    submissions.sort_unstable();
    let p99 = if submissions.is_empty() {
        Duration::ZERO
    } else {
        let idx = ((submissions.len() - 1) as f64 * 0.99).round() as usize;
        submissions[idx]
    };
    Ok((
        EndToEndReport {
            throughput_qph: if wall.is_zero() {
                0.0
            } else {
                queries as f64 * 3600.0 / wall.as_secs_f64()
            },
            mean_submission_ms: mean_ms(&submissions),
            p99_submission_ms: p99.as_secs_f64() * 1e3,
            mean_response_ms: mean_ms(&responses),
            queries,
        },
        columnar,
    ))
}

/// Throughput and recovery cost of the durable ingestion path for one sync
/// policy and batch size (the `BENCH_PR10.json` ingest baseline).
#[derive(Debug, Clone)]
pub struct IngestRateReport {
    /// Batches committed.
    pub batches: usize,
    /// Fact rows per batch.
    pub rows_per_batch: usize,
    /// Sustained ingest rate over the whole run.
    pub rows_per_sec: f64,
    /// Durable batch commits per second.
    pub commits_per_sec: f64,
    /// Mean fsync wait per commit, in nanoseconds (0 under `SyncPolicy::Never`).
    pub sync_ns_per_commit: f64,
    /// Final WAL size in bytes.
    pub wal_bytes: u64,
    /// Wall-clock cost of restarting an engine on the produced WAL (replay of
    /// every committed batch onto a fresh warehouse), in milliseconds.
    pub recovery_ms: f64,
    /// Fact rows rebuilt by that replay.
    pub recovered_rows: u64,
}

/// Measures the durable ingestion path: `batches` ingest sessions of
/// `rows_per_batch` fact rows each are committed through the WAL under
/// `policy`, then the engine is dropped and a fresh one is started on the same
/// log to time crash recovery. Contiguous fact rows share one WAL record, so
/// the sweep's `rows_per_batch` axis is exactly the group-commit amortization
/// axis: under `EveryRecord` a single-row batch pays two fsyncs per row, a
/// large batch pays two per batch.
///
/// # Errors
/// Propagates engine and WAL errors.
pub fn ingest_rate(
    params: &ExperimentParams,
    policy: SyncPolicy,
    rows_per_batch: usize,
    batches: usize,
) -> Result<IngestRateReport> {
    let data = params.data();
    let catalog = data.catalog();
    let seed_rows = catalog.fact_table()?.len() as u64;
    let template: Vec<Value> = catalog
        .fact_table()?
        .row(RowId(0))
        .ok_or_else(|| cjoin_common::Error::invalid_state("empty fact table"))?
        .values()
        .to_vec();
    let revenue = catalog.fact_table()?.schema().column_index("lo_revenue")?;

    let mut wal = std::env::temp_dir();
    wal.push(format!(
        "cjoin-bench-ingest-{policy:?}-{rows_per_batch}-{}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&wal);
    let config = CjoinConfig::default()
        .with_worker_threads(params.worker_threads)
        .with_wal(&wal)
        .with_wal_sync(policy);
    let engine = CjoinEngine::start(Arc::clone(&catalog), config)?;

    let mut wal_bytes = 0;
    let started = Instant::now();
    for batch in 0..batches {
        let mut session = engine.ingest_session();
        for i in 0..rows_per_batch {
            let mut values = template.clone();
            values[revenue] = Value::int((batch * rows_per_batch + i) as i64);
            session.append_fact(values);
        }
        wal_bytes = session.commit()?.wal_bytes;
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let ingest = engine.stats().ingest;
    engine.shutdown();
    drop(engine);

    // Crash recovery: a fresh warehouse replays every committed batch.
    let recovered_catalog = params.data().catalog();
    let recovery_started = Instant::now();
    let recovered = CjoinEngine::start(
        Arc::clone(&recovered_catalog),
        CjoinConfig::default()
            .with_worker_threads(params.worker_threads)
            .with_wal(&wal),
    )?;
    let recovery_ms = recovery_started.elapsed().as_secs_f64() * 1e3;
    let recovered_rows = recovered_catalog.fact_table()?.len() as u64 - seed_rows;
    recovered.shutdown();
    let _ = std::fs::remove_file(&wal);

    let rows = (batches * rows_per_batch) as f64;
    Ok(IngestRateReport {
        batches,
        rows_per_batch,
        rows_per_sec: rows / elapsed,
        commits_per_sec: batches as f64 / elapsed,
        sync_ns_per_commit: ingest.sync_ns as f64 / (ingest.commits.max(1)) as f64,
        wal_bytes,
        recovery_ms,
        recovered_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_stream_is_deterministic_and_uniform_ish() {
        let mut a = 42u64;
        let mut b = 42u64;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        let mean: f64 = (0..1000).map(|_| unit(&mut a)).sum::<f64>() / 1000.0;
        assert!((0.4..0.6).contains(&mean), "{mean}");
    }

    #[test]
    fn harness_builds_a_steady_batch_and_paths_agree() {
        let h = ProbeHarness::build(&ProbeAblationParams::tiny());
        assert!(
            h.steady_len() > 0,
            "unreferencing queries keep tuples alive"
        );
        assert!(h.paths_agree());
        // The steady batch really is a fixpoint: repeated passes drop nothing.
        let mut b = h.working_batch();
        for batched in [true, false, true] {
            assert_eq!(h.run_pass(&mut b, batched), 0);
            assert_eq!(b.len(), h.steady_len());
        }
    }

    #[test]
    fn measure_reports_positive_throughput() {
        let h = ProbeHarness::build(&ProbeAblationParams::tiny());
        let t = h.measure(true, Duration::from_millis(20));
        assert!(t > 0.0);
    }

    #[test]
    fn end_to_end_ab_runs_both_knob_settings() {
        let params = ExperimentParams::quick();
        for batched in [true, false] {
            let report = end_to_end_ab(&params, 2, batched).unwrap();
            assert!(report.queries > 0);
            assert!(report.throughput_qph > 0.0);
            assert!(report.p99_submission_ms >= 0.0);
        }
    }

    #[test]
    fn end_to_end_sharding_runs_every_shard_count() {
        let params = ExperimentParams::quick();
        for shards in [1usize, 2, 4] {
            let report = end_to_end_sharding(&params, 2, shards).unwrap();
            assert!(report.queries > 0, "shards={shards}");
            assert!(report.throughput_qph > 0.0, "shards={shards}");
        }
    }

    #[test]
    fn end_to_end_scan_workers_runs_the_front_end_grid() {
        let params = ExperimentParams::quick();
        for scan_workers in [1usize, 2, 4] {
            for shards in [1usize, 4] {
                let report = end_to_end_scan_workers(&params, 2, scan_workers, shards).unwrap();
                assert!(report.queries > 0, "scan={scan_workers} shards={shards}");
                assert!(
                    report.throughput_qph > 0.0,
                    "scan={scan_workers} shards={shards}"
                );
            }
        }
    }
}
