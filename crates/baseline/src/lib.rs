//! Conventional query-at-a-time baseline engine.
//!
//! The paper compares CJOIN against a commercial DBMS ("System X") and PostgreSQL,
//! after verifying that both evaluate the experimental star queries with the same
//! physical plan: *a pipeline of hash joins that filters a single scan of the fact
//! table* (§6.1.1). This crate implements exactly that plan shape, once per query,
//! with **no sharing between concurrent queries** — each query builds its own
//! dimension hash tables and performs its own full pass over the fact table. That is
//! the query-at-a-time behaviour whose contention CJOIN eliminates.
//!
//! Two scan-sharing modes model the two baselines:
//!
//! * [`ScanSharing::Independent`] — every concurrent query scans on its own; when
//!   more than one scan is active the accesses are charged as *random* I/O to the
//!   [`IoModel`], reflecting how mutually unaware scans on the same device degenerate
//!   into seeks (the "System X" behaviour the paper describes in §1).
//! * [`ScanSharing::Synchronized`] — concurrent scans piggyback on one sequential
//!   stream (PostgreSQL's synchronized/shared scans, enabled in the paper's setup);
//!   I/O stays sequential but all join computation remains per-query.
//!
//! The CPU work (hash-table builds, probes, aggregation) is real and measured; the
//! I/O is accounted through [`IoStats`]/[`IoModel`] as described in the `cjoin-storage` crate docs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod plan;

pub use engine::{BaselineConfig, BaselineEngine, QueryMetrics, ScanSharing};
pub use plan::HashJoinPlan;

#[doc(no_inline)]
pub use cjoin_storage::{IoModel, IoStats};
