//! The query-at-a-time engine.
//!
//! [`BaselineEngine::execute`] runs one star query with its own private plan: build
//! per-query dimension hash tables, perform a full fact-table scan, probe, aggregate.
//! Concurrency happens by calling `execute` from several client threads at once —
//! exactly what a conventional DBMS does when many connections each run their own
//! physical plan — and the engine only tracks how many scans are active so the I/O
//! model can charge interleaved scans as random access in
//! [`ScanSharing::Independent`] mode.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cjoin_common::Result;
use cjoin_query::{EngineStats, JoinEngine, QueryResult, QueryTicket, ReadyTicket, StarQuery};
use cjoin_storage::{AccessKind, Catalog, IoModel, IoStats};

use crate::plan::HashJoinPlan;

/// How concurrent fact-table scans behave on the modelled device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanSharing {
    /// Each query scans independently; concurrent scans interleave and are charged as
    /// random I/O (the conventional commercial-system behaviour, "System X").
    Independent,
    /// Concurrent scans piggyback on one sequential stream (PostgreSQL's synchronized
    /// scans); I/O stays sequential but join work is still per-query.
    Synchronized,
}

/// Baseline engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// Scan-sharing behaviour.
    pub scan_sharing: ScanSharing,
    /// The I/O cost model used for modelled scan time.
    pub io_model: IoModel,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            scan_sharing: ScanSharing::Independent,
            io_model: IoModel::in_memory(),
        }
    }
}

impl BaselineConfig {
    /// Configuration for the "System X"-like baseline (independent scans).
    pub fn system_x() -> Self {
        Self {
            scan_sharing: ScanSharing::Independent,
            io_model: IoModel::in_memory(),
        }
    }

    /// Configuration for the PostgreSQL-like baseline (synchronized scans).
    pub fn postgres_like() -> Self {
        Self {
            scan_sharing: ScanSharing::Synchronized,
            io_model: IoModel::in_memory(),
        }
    }

    /// Replaces the I/O model (e.g. [`IoModel::spinning_disk`]).
    pub fn with_io_model(mut self, io_model: IoModel) -> Self {
        self.io_model = io_model;
        self
    }
}

/// Per-query execution metrics reported by the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMetrics {
    /// Time spent building the per-query dimension hash tables.
    pub build_time: Duration,
    /// Time spent in the probe/aggregate phase (the fact scan).
    pub probe_time: Duration,
    /// Total execution time (build + probe).
    pub total_time: Duration,
    /// Dimension rows held in this query's private hash tables.
    pub hash_table_rows: usize,
    /// Fact tuples scanned.
    pub fact_tuples_scanned: u64,
    /// Fact pages read, and whether they were charged as sequential or random.
    pub pages_read: u64,
    /// Access kind the scan was charged as.
    pub access_kind: AccessKind,
    /// Modelled I/O time for this query's scan under the engine's I/O model.
    pub modelled_io: Duration,
}

/// The conventional query-at-a-time engine.
#[derive(Debug)]
pub struct BaselineEngine {
    catalog: Arc<Catalog>,
    config: BaselineConfig,
    active_scans: AtomicUsize,
    /// Aggregate I/O over all queries executed by this engine instance.
    io: Arc<IoStats>,
    /// Queries accepted (execution started) since the engine was created.
    queries_submitted: AtomicU64,
    /// Queries that ran to completion.
    queries_completed: AtomicU64,
    /// Cumulative fact tuples scanned across all queries (each query pays for
    /// its own full scan — the defining query-at-a-time cost).
    tuples_scanned: AtomicU64,
}

impl BaselineEngine {
    /// Creates an engine over `catalog`.
    pub fn new(catalog: Arc<Catalog>, config: BaselineConfig) -> Self {
        Self {
            catalog,
            config,
            active_scans: AtomicUsize::new(0),
            io: Arc::new(IoStats::new()),
            queries_submitted: AtomicU64::new(0),
            queries_completed: AtomicU64::new(0),
            tuples_scanned: AtomicU64::new(0),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    /// The catalog the engine runs over.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Cumulative I/O recorded across all queries run so far.
    pub fn io_stats(&self) -> &Arc<IoStats> {
        &self.io
    }

    /// Number of scans currently in flight (diagnostics).
    pub fn active_scans(&self) -> usize {
        self.active_scans.load(Ordering::Relaxed)
    }

    /// Executes one star query in the calling thread, query-at-a-time style.
    ///
    /// # Errors
    /// Fails if the query does not bind against the catalog.
    pub fn execute(&self, query: &StarQuery) -> Result<(QueryResult, QueryMetrics)> {
        let snapshot = query
            .snapshot
            .unwrap_or_else(|| self.catalog.snapshots().current());
        let bound = query.bind(&self.catalog)?;
        self.queries_submitted.fetch_add(1, Ordering::Relaxed);

        let plan = HashJoinPlan::build(&self.catalog, bound, snapshot)?;
        let build_time = plan.build_time;
        let hash_table_rows = plan.hash_table_rows();

        // Decide how this scan is charged: with independent scans, any concurrent
        // scan activity turns the access pattern into random I/O for everyone.
        let concurrent = self.active_scans.fetch_add(1, Ordering::AcqRel) + 1;
        let access_kind = match self.config.scan_sharing {
            ScanSharing::Independent if concurrent > 1 => AccessKind::Random,
            _ => AccessKind::Sequential,
        };
        let query_io = Arc::new(IoStats::new());
        let probe_started = Instant::now();
        let result = plan.execute(&self.catalog, Arc::clone(&query_io), access_kind);
        self.active_scans.fetch_sub(1, Ordering::AcqRel);
        let (result, scanned) = result?;
        let probe_time = probe_started.elapsed();

        // Fold this query's I/O into the engine-wide stats.
        self.io
            .record(AccessKind::Sequential, query_io.sequential_pages());
        self.io.record(AccessKind::Random, query_io.random_pages());

        let pages_read = query_io.total_pages();
        let modelled_io =
            Duration::from_secs_f64(self.config.io_model.modelled_time_us(&query_io) / 1e6);
        let metrics = QueryMetrics {
            build_time,
            probe_time,
            total_time: build_time + probe_time,
            hash_table_rows,
            fact_tuples_scanned: scanned,
            pages_read,
            access_kind,
            modelled_io,
        };
        self.tuples_scanned.fetch_add(scanned, Ordering::Relaxed);
        self.queries_completed.fetch_add(1, Ordering::Relaxed);
        Ok((result, metrics))
    }
}

impl JoinEngine for BaselineEngine {
    fn name(&self) -> &str {
        match self.config.scan_sharing {
            ScanSharing::Independent => "System X (query-at-a-time)",
            ScanSharing::Synchronized => "PostgreSQL (sync scans)",
        }
    }

    /// Evaluates the query synchronously on the calling thread — exactly the
    /// blocking behaviour of a conventional query-at-a-time DBMS connection —
    /// and returns a pre-resolved ticket.
    fn submit(&self, query: StarQuery) -> Result<Box<dyn QueryTicket>> {
        // Admission failures (binding errors) must surface here, per the trait
        // contract — a returned ticket means the query was accepted. The
        // redundant bind is cheap next to the fact scan that follows.
        query.bind(&self.catalog)?;
        let outcome = self
            .execute(&query)
            .map(|(result, _)| result)
            .map_err(cjoin_query::QueryError::from);
        Ok(Box::new(ReadyTicket::new(outcome)))
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            queries_submitted: self.queries_submitted.load(Ordering::Relaxed),
            queries_completed: self.queries_completed.load(Ordering::Relaxed),
            active_queries: self.active_scans(),
            fact_tuples_scanned: self.tuples_scanned.load(Ordering::Relaxed),
        }
    }

    /// The baseline holds no long-lived resources; shutdown is a no-op.
    fn shutdown(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_query::{reference, AggFunc, AggValue, AggregateSpec, ColumnRef, Predicate};
    use cjoin_storage::{Column, Row, Schema, SnapshotId, Table, Value};

    fn catalog(rows: i64) -> Arc<Catalog> {
        let catalog = Catalog::new();
        let dim = Table::new(Schema::new(
            "d",
            vec![Column::int("k"), Column::str("name")],
        ));
        for (k, name) in [(1, "a"), (2, "b"), (3, "c")] {
            dim.insert(vec![Value::int(k), Value::str(name)], SnapshotId::INITIAL)
                .unwrap();
        }
        let fact = Table::with_rows_per_page(
            Schema::new("f", vec![Column::int("fk"), Column::int("v")]),
            16,
        );
        fact.insert_batch_unchecked(
            (0..rows).map(|i| Row::new(vec![Value::int(i % 4), Value::int(i)])),
            SnapshotId::INITIAL,
        );
        catalog.add_table(Arc::new(dim));
        catalog.add_fact_table(Arc::new(fact));
        Arc::new(catalog)
    }

    fn query(name: &str) -> StarQuery {
        StarQuery::builder(name)
            .join_dimension("d", "fk", "k", Predicate::in_list("name", vec!["a", "c"]))
            .group_by(ColumnRef::dim("d", "name"))
            .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("v")))
            .build()
    }

    #[test]
    fn execute_matches_reference_and_reports_metrics() {
        let catalog = catalog(200);
        let engine = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::default());
        let q = query("q");
        let expected = reference::evaluate(&catalog, &q, SnapshotId::INITIAL).unwrap();
        let (result, metrics) = engine.execute(&q).unwrap();
        assert!(result.approx_eq(&expected), "{:?}", result.diff(&expected));
        assert_eq!(metrics.fact_tuples_scanned, 200);
        assert_eq!(metrics.hash_table_rows, 2);
        assert!(metrics.pages_read > 0);
        assert_eq!(metrics.access_kind, AccessKind::Sequential);
        assert!(metrics.total_time >= metrics.build_time);
        assert_eq!(engine.active_scans(), 0);
        assert_eq!(engine.io_stats().total_pages(), metrics.pages_read);
    }

    #[test]
    fn each_query_rebuilds_its_own_hash_tables() {
        // The defining property of query-at-a-time: no sharing across executions.
        let catalog = catalog(100);
        let engine = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::default());
        let (_, m1) = engine.execute(&query("q1")).unwrap();
        let (_, m2) = engine.execute(&query("q2")).unwrap();
        assert_eq!(m1.hash_table_rows, 2);
        assert_eq!(
            m2.hash_table_rows, 2,
            "second query pays the build cost again"
        );
        assert_eq!(
            engine.io_stats().total_pages(),
            m1.pages_read + m2.pages_read
        );
    }

    #[test]
    fn concurrent_independent_scans_are_charged_as_random_io() {
        let catalog = catalog(200_000);
        let engine = Arc::new(BaselineEngine::new(
            Arc::clone(&catalog),
            BaselineConfig::system_x().with_io_model(IoModel::spinning_disk()),
        ));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || engine.execute(&query(&format!("q{i}"))).unwrap().1)
            })
            .collect();
        let metrics: Vec<QueryMetrics> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // With 4 concurrent scans, at least some of them must have overlapped and been
        // charged as random I/O.
        assert!(
            metrics.iter().any(|m| m.access_kind == AccessKind::Random),
            "concurrent independent scans should interleave"
        );
        assert!(engine.io_stats().random_pages() > 0);
        let random_metric = metrics
            .iter()
            .find(|m| m.access_kind == AccessKind::Random)
            .unwrap();
        assert!(random_metric.modelled_io > Duration::ZERO);
    }

    #[test]
    fn synchronized_scans_stay_sequential() {
        let catalog = catalog(50_000);
        let engine = Arc::new(BaselineEngine::new(
            Arc::clone(&catalog),
            BaselineConfig::postgres_like(),
        ));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || engine.execute(&query(&format!("q{i}"))).unwrap().1)
            })
            .collect();
        for h in handles {
            let metrics = h.join().unwrap();
            assert_eq!(metrics.access_kind, AccessKind::Sequential);
        }
        assert_eq!(engine.io_stats().random_pages(), 0);
    }

    #[test]
    fn config_constructors() {
        assert_eq!(
            BaselineConfig::system_x().scan_sharing,
            ScanSharing::Independent
        );
        assert_eq!(
            BaselineConfig::postgres_like().scan_sharing,
            ScanSharing::Synchronized
        );
        let with_disk = BaselineConfig::default().with_io_model(IoModel::spinning_disk());
        assert_eq!(with_disk.io_model, IoModel::spinning_disk());
        assert_eq!(
            BaselineConfig::default().scan_sharing,
            ScanSharing::Independent
        );
    }

    #[test]
    fn unknown_dimension_is_an_error() {
        let catalog = catalog(10);
        let engine = BaselineEngine::new(catalog, BaselineConfig::default());
        let bad = StarQuery::builder("bad")
            .join_dimension("missing", "fk", "k", Predicate::True)
            .aggregate(AggregateSpec::count_star())
            .build();
        assert!(engine.execute(&bad).is_err());
        // The trait path must reject at submit, not smuggle the error into the
        // ticket: Ok(ticket) means "admitted" to harness code.
        assert!(JoinEngine::submit(&engine, bad).is_err());
        assert_eq!(JoinEngine::stats(&engine).queries_submitted, 0);
    }

    #[test]
    fn snapshot_pinned_query_reads_consistently() {
        let catalog = catalog(50);
        let engine = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::default());
        let snap = catalog.snapshots().commit();
        catalog
            .fact_table()
            .unwrap()
            .insert(vec![Value::int(1), Value::int(1_000)], snap)
            .unwrap();
        let pinned_old = StarQuery::builder("old")
            .snapshot(SnapshotId::INITIAL)
            .aggregate(AggregateSpec::count_star())
            .build();
        let (result, _) = engine.execute(&pinned_old).unwrap();
        assert_eq!(result.rows().next().unwrap().1[0], AggValue::Int(50));
        let current = StarQuery::builder("new")
            .aggregate(AggregateSpec::count_star())
            .build();
        let (result, _) = engine.execute(&current).unwrap();
        assert_eq!(result.rows().next().unwrap().1[0], AggValue::Int(51));
    }
}
