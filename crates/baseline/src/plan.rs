//! The per-query physical plan: a left-deep pipeline of hash joins over one fact scan.
//!
//! This is the plan the paper verified both comparison systems use for star queries
//! (§6.1.1). The build phase creates one hash table per referenced dimension,
//! containing only the rows that satisfy the query's dimension predicate; the probe
//! phase scans the fact table once and, for each fact tuple, probes every hash table
//! in sequence, feeding survivors to the aggregation operator.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cjoin_common::{FxHashMap, Result};
use cjoin_query::{BoundStarQuery, GroupedAggregator, QueryResult};
use cjoin_storage::{AccessKind, Catalog, IoStats, Row, SnapshotId, TableScan};

/// A bound, ready-to-run hash-join plan for one star query.
#[derive(Debug)]
pub struct HashJoinPlan {
    query: BoundStarQuery,
    snapshot: SnapshotId,
    /// One key → row hash table per dimension clause, in clause order.
    dimension_tables: Vec<FxHashMap<i64, Row>>,
    /// Time spent building the dimension hash tables.
    pub build_time: Duration,
}

impl HashJoinPlan {
    /// Builds the plan's dimension hash tables (the "build phase").
    ///
    /// # Errors
    /// Fails if a referenced dimension table is missing from the catalog.
    pub fn build(catalog: &Catalog, query: BoundStarQuery, snapshot: SnapshotId) -> Result<Self> {
        let started = Instant::now();
        let mut dimension_tables = Vec::with_capacity(query.dimensions.len());
        for clause in &query.dimensions {
            let table = catalog.table(&clause.table)?;
            let mut map = FxHashMap::default();
            table.for_each_visible(snapshot, |_, row| {
                if clause.predicate.eval(row) {
                    map.insert(row.int(clause.dim_key_column), row.clone());
                }
            });
            dimension_tables.push(map);
        }
        Ok(Self {
            query,
            snapshot,
            dimension_tables,
            build_time: started.elapsed(),
        })
    }

    /// Total number of dimension rows held across the plan's hash tables (per-query
    /// memory the baseline pays and CJOIN shares).
    pub fn hash_table_rows(&self) -> usize {
        self.dimension_tables.iter().map(FxHashMap::len).sum()
    }

    /// Runs the probe phase: one full scan of the fact table, probing every hash
    /// table per tuple and aggregating survivors. Page accesses are recorded into
    /// `io` with the given access kind.
    ///
    /// Returns the query result and the number of fact tuples scanned.
    ///
    /// # Errors
    /// Fails if the catalog has no fact table.
    pub fn execute(
        &self,
        catalog: &Catalog,
        io: Arc<IoStats>,
        access_kind: AccessKind,
    ) -> Result<(QueryResult, u64)> {
        let fact = catalog.fact_table()?;
        let mut aggregator = GroupedAggregator::new(&self.query);
        let mut scan = TableScan::new(fact, self.snapshot).with_io(io, access_kind);
        let mut scanned = 0u64;
        let mut dims: Vec<Option<&Row>> = Vec::with_capacity(self.query.dimensions.len());
        while let Some(batch) = scan.next_batch() {
            'tuple: for (_, fact_row) in &batch {
                scanned += 1;
                if !self.query.fact_predicate_is_true && !self.query.fact_predicate.eval(fact_row) {
                    continue;
                }
                dims.clear();
                for (clause, table) in self.query.dimensions.iter().zip(&self.dimension_tables) {
                    let fk = fact_row.int(clause.fact_fk_column);
                    match table.get(&fk) {
                        Some(dim_row) => dims.push(Some(dim_row)),
                        None => continue 'tuple,
                    }
                }
                aggregator.accumulate(fact_row, &dims);
            }
        }
        Ok((aggregator.finalize(), scanned))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_query::{
        reference, AggFunc, AggValue, AggregateSpec, ColumnRef, Predicate, StarQuery,
    };
    use cjoin_storage::{Column, Schema, Table, Value};

    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        let dim = Table::new(Schema::new(
            "d",
            vec![Column::int("k"), Column::str("name")],
        ));
        for (k, name) in [(1, "a"), (2, "b"), (3, "c")] {
            dim.insert(vec![Value::int(k), Value::str(name)], SnapshotId::INITIAL)
                .unwrap();
        }
        let fact = Table::with_rows_per_page(
            Schema::new("f", vec![Column::int("fk"), Column::int("v")]),
            8,
        );
        fact.insert_batch_unchecked(
            (0..100).map(|i| Row::new(vec![Value::int(i % 4), Value::int(i)])),
            SnapshotId::INITIAL,
        );
        catalog.add_table(Arc::new(dim));
        catalog.add_fact_table(Arc::new(fact));
        catalog
    }

    fn query() -> StarQuery {
        StarQuery::builder("by_name")
            .join_dimension("d", "fk", "k", Predicate::in_list("name", vec!["a", "b"]))
            .group_by(ColumnRef::dim("d", "name"))
            .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("v")))
            .aggregate(AggregateSpec::count_star())
            .build()
    }

    #[test]
    fn plan_matches_reference_evaluator() {
        let catalog = catalog();
        let q = query();
        let expected = reference::evaluate(&catalog, &q, SnapshotId::INITIAL).unwrap();
        let bound = q.bind(&catalog).unwrap();
        let plan = HashJoinPlan::build(&catalog, bound, SnapshotId::INITIAL).unwrap();
        let io = Arc::new(IoStats::new());
        let (result, scanned) = plan.execute(&catalog, io, AccessKind::Sequential).unwrap();
        assert!(result.approx_eq(&expected), "{:?}", result.diff(&expected));
        assert_eq!(scanned, 100);
    }

    #[test]
    fn build_phase_filters_dimension_rows() {
        let catalog = catalog();
        let bound = query().bind(&catalog).unwrap();
        let plan = HashJoinPlan::build(&catalog, bound, SnapshotId::INITIAL).unwrap();
        assert_eq!(plan.hash_table_rows(), 2, "only 'a' and 'b' qualify");
    }

    #[test]
    fn io_is_recorded_with_requested_access_kind() {
        let catalog = catalog();
        let bound = query().bind(&catalog).unwrap();
        let plan = HashJoinPlan::build(&catalog, bound, SnapshotId::INITIAL).unwrap();
        let io = Arc::new(IoStats::new());
        plan.execute(&catalog, Arc::clone(&io), AccessKind::Random)
            .unwrap();
        assert_eq!(io.random_pages(), 13, "100 rows at 8 rows/page = 13 pages");
        assert_eq!(io.sequential_pages(), 0);
    }

    #[test]
    fn fact_only_query_without_dimensions() {
        let catalog = catalog();
        let q = StarQuery::builder("total")
            .aggregate(AggregateSpec::over(AggFunc::Min, ColumnRef::fact("v")))
            .aggregate(AggregateSpec::over(AggFunc::Max, ColumnRef::fact("v")))
            .build();
        let bound = q.bind(&catalog).unwrap();
        let plan = HashJoinPlan::build(&catalog, bound, SnapshotId::INITIAL).unwrap();
        let io = Arc::new(IoStats::new());
        let (result, _) = plan.execute(&catalog, io, AccessKind::Sequential).unwrap();
        let row = result.rows().next().unwrap();
        assert_eq!(row.1[0], AggValue::Int(0));
        assert_eq!(row.1[1], AggValue::Int(99));
    }

    #[test]
    fn snapshot_is_respected() {
        let catalog = catalog();
        let fact = catalog.fact_table().unwrap();
        fact.insert(vec![Value::int(1), Value::int(100_000)], SnapshotId(5))
            .unwrap();
        let q = StarQuery::builder("count")
            .aggregate(AggregateSpec::count_star())
            .build();
        let bound_old = q.bind(&catalog).unwrap();
        let plan_old = HashJoinPlan::build(&catalog, bound_old, SnapshotId::INITIAL).unwrap();
        let (result_old, _) = plan_old
            .execute(&catalog, Arc::new(IoStats::new()), AccessKind::Sequential)
            .unwrap();
        assert_eq!(result_old.rows().next().unwrap().1[0], AggValue::Int(100));

        let bound_new = q.bind(&catalog).unwrap();
        let plan_new = HashJoinPlan::build(&catalog, bound_new, SnapshotId(5)).unwrap();
        let (result_new, _) = plan_new
            .execute(&catalog, Arc::new(IoStats::new()), AccessKind::Sequential)
            .unwrap();
        assert_eq!(result_new.rows().next().unwrap().1[0], AggValue::Int(101));
    }
}
