//! Table scans.
//!
//! Two access paths are provided, matching the two engines in this workspace:
//!
//! * [`TableScan`] — a one-shot, snapshot-consistent scan used by the query-at-a-time
//!   baseline (each query performs its own full pass over the fact table).
//! * [`ContinuousScan`] — the circular, "always-on" scan that feeds the CJOIN
//!   Preprocessor (§3.1). It returns batches of rows in stable [`RowId`] order and
//!   wraps around forever; the caller observes wrap-arounds through
//!   [`ScanBatch::wrapped`] and the per-row positions, which is how query completion
//!   is detected (§3.3.2).
//!
//! Both scans record their page accesses into an optional [`IoStats`] so the
//! experiment harness can model disk behaviour (see [`crate::io`]).

use std::sync::Arc;

use crate::io::{AccessKind, IoStats};
use crate::row::{Row, RowId};
use crate::snapshot::{RowVersion, SnapshotId};
use crate::table::Table;

/// Default number of rows fetched per scan call.
pub const DEFAULT_SCAN_BATCH_ROWS: usize = 1024;

/// A batch of rows produced by a scan.
#[derive(Debug, Default)]
pub struct ScanBatch {
    /// The rows, in ascending [`RowId`] order, each with its visibility metadata.
    pub rows: Vec<(RowId, Row, RowVersion)>,
    /// True if this batch begins a new pass over the table (position wrapped to 0).
    pub wrapped: bool,
}

impl ScanBatch {
    /// Creates an empty batch with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            rows: Vec::with_capacity(cap),
            wrapped: false,
        }
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Clears the batch for reuse.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.wrapped = false;
    }
}

/// One-shot, snapshot-consistent sequential scan.
///
/// The scanned length is fixed at construction time, so rows appended concurrently
/// (by update transactions) are not observed — the snapshot-isolation behaviour a
/// conventional engine provides.
#[derive(Debug)]
pub struct TableScan {
    table: Arc<Table>,
    snapshot: SnapshotId,
    position: u64,
    end: u64,
    batch_rows: usize,
    io: Option<Arc<IoStats>>,
    access_kind: AccessKind,
    buffer: Vec<(RowId, Row, RowVersion)>,
}

impl TableScan {
    /// Creates a scan over `table` as of `snapshot`.
    pub fn new(table: Arc<Table>, snapshot: SnapshotId) -> Self {
        let end = table.len() as u64;
        Self {
            table,
            snapshot,
            position: 0,
            end,
            batch_rows: DEFAULT_SCAN_BATCH_ROWS,
            io: None,
            access_kind: AccessKind::Sequential,
            buffer: Vec::new(),
        }
    }

    /// Records page accesses into `io` with the given access kind.
    ///
    /// A standalone scan is sequential; the baseline engine marks scans as
    /// [`AccessKind::Random`] when several independent scans interleave on the same
    /// device (the paper's query-at-a-time contention scenario).
    pub fn with_io(mut self, io: Arc<IoStats>, kind: AccessKind) -> Self {
        self.io = Some(io);
        self.access_kind = kind;
        self
    }

    /// Overrides the number of rows fetched per [`TableScan::next_batch`] call.
    pub fn with_batch_rows(mut self, rows: usize) -> Self {
        assert!(rows > 0, "batch_rows must be positive");
        self.batch_rows = rows;
        self
    }

    /// Number of rows this scan will visit (before visibility filtering).
    pub fn total_rows(&self) -> u64 {
        self.end
    }

    /// Fetches the next batch of visible rows. Returns `None` once exhausted.
    pub fn next_batch(&mut self) -> Option<Vec<(RowId, Row)>> {
        while self.position < self.end {
            self.buffer.clear();
            let remaining = (self.end - self.position) as usize;
            let to_read = remaining.min(self.batch_rows);
            let read = self
                .table
                .read_range(self.position, to_read, &mut self.buffer);
            if read == 0 {
                break;
            }
            if let Some(io) = &self.io {
                let pages = (read as u64).div_ceil(self.table.rows_per_page() as u64);
                io.record(self.access_kind, pages);
            }
            self.position += read as u64;
            let visible: Vec<(RowId, Row)> = self
                .buffer
                .drain(..)
                .filter(|(_, _, v)| v.visible_at(self.snapshot))
                .map(|(id, row, _)| (id, row))
                .collect();
            if !visible.is_empty() {
                return Some(visible);
            }
            // Entire batch invisible under this snapshot: keep scanning.
        }
        None
    }

    /// Convenience: runs the scan to completion, invoking `f` for every visible row.
    pub fn for_each<F: FnMut(RowId, &Row)>(mut self, mut f: F) {
        while let Some(batch) = self.next_batch() {
            for (id, row) in &batch {
                f(*id, row);
            }
        }
    }
}

/// Splits the row range `[0, table_len)` into `n` page-aligned segments for the
/// sharded continuous scan (one segment per scan worker).
///
/// Every boundary between two segments is rounded down to a page multiple so each
/// worker reads whole pages, and the **last** segment's end is open (`None`): it
/// tracks the live table length, so rows appended after the split are picked up
/// on that segment's next pass — the same append semantics the unsegmented scan
/// has. Segments are static thereafter; with a small table some may be empty
/// (`start == end`), which callers must tolerate.
pub fn segment_ranges(table_len: u64, rows_per_page: usize, n: usize) -> Vec<(u64, Option<u64>)> {
    let n = n.max(1);
    let page = rows_per_page.max(1) as u64;
    let mut ranges = Vec::with_capacity(n);
    let mut start = 0u64;
    for i in 1..n {
        // Floor to a page boundary; monotone in `i`, so starts never decrease.
        let boundary = ((i as u64 * table_len / n as u64) / page * page).min(table_len);
        let boundary = boundary.max(start);
        ranges.push((start, Some(boundary)));
        start = boundary;
    }
    ranges.push((start, None));
    ranges
}

/// The circular fact-table scan feeding the CJOIN pipeline.
///
/// The scan has no notion of "end": every call to [`ContinuousScan::next_batch`]
/// returns the next run of rows and wraps to position 0 after the last row. Batches
/// never span the wrap point, so a batch with `wrapped == true` always starts at
/// [`RowId`] 0 — the Preprocessor uses this to detect that in-flight queries have
/// seen the whole table.
///
/// A scan can also be restricted to a *segment* of the table with
/// [`ContinuousScan::with_segment`]: it then circulates over `[start, end)` only,
/// wrapping back to `start`, which is how the sharded Preprocessor front-end gives
/// each scan worker its own independent cursor (see [`segment_ranges`]). An open
/// end (`None`) tracks the live table length, so an open-ended segment picks up
/// appended rows on its next pass exactly like the whole-table scan.
///
/// If the table (or segment) is empty the scan returns empty batches (and reports
/// `wrapped`), rather than spinning.
#[derive(Debug)]
pub struct ContinuousScan {
    table: Arc<Table>,
    position: u64,
    batch_rows: usize,
    io: Option<Arc<IoStats>>,
    /// Number of complete passes finished so far.
    passes: u64,
    /// First row of this scan's segment (0 for a whole-table scan).
    segment_start: u64,
    /// Fixed segment end, or `None` to track the live table length.
    segment_end: Option<u64>,
}

impl ContinuousScan {
    /// Creates a continuous scan over `table` starting at row 0.
    pub fn new(table: Arc<Table>) -> Self {
        Self {
            table,
            position: 0,
            batch_rows: DEFAULT_SCAN_BATCH_ROWS,
            io: None,
            passes: 0,
            segment_start: 0,
            segment_end: None,
        }
    }

    /// Restricts the scan to the row segment `[start, end)` (`end = None` tracks
    /// the live table length). The cursor is reset to `start`.
    pub fn with_segment(mut self, start: u64, end: Option<u64>) -> Self {
        if let Some(end) = end {
            assert!(start <= end, "segment start must not exceed its end");
        }
        self.segment_start = start;
        self.segment_end = end;
        self.position = start;
        self
    }

    /// Records page accesses (always sequential — that is the point of the shared
    /// circular scan) into `io`.
    pub fn with_io(mut self, io: Arc<IoStats>) -> Self {
        self.io = Some(io);
        self
    }

    /// Overrides the number of rows fetched per call.
    pub fn with_batch_rows(mut self, rows: usize) -> Self {
        assert!(rows > 0, "batch_rows must be positive");
        self.batch_rows = rows;
        self
    }

    /// The table being scanned.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// Current scan position (the [`RowId`] the next batch will start at).
    pub fn position(&self) -> u64 {
        self.position
    }

    /// First row of this scan's segment (0 for a whole-table scan).
    pub fn segment_start(&self) -> u64 {
        self.segment_start
    }

    /// The position the next produced row will actually have: the raw cursor
    /// folded into the segment, i.e. the segment start when the cursor sits at
    /// (or beyond) the segment end awaiting its lazy wrap. This is the position
    /// the Preprocessor records as a query's starting tuple.
    pub fn normalized_position(&self) -> u64 {
        let (start, end) = self.current_bounds();
        if self.position >= end || self.position < start {
            start
        } else {
            self.position
        }
    }

    /// Number of completed passes over the table.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// The segment's current effective bounds `[start, end)`, clamped to the live
    /// table length.
    fn current_bounds(&self) -> (u64, u64) {
        let len = self.table.len() as u64;
        let end = self.segment_end.unwrap_or(len).min(len);
        (self.segment_start.min(end), end)
    }

    /// Fills `batch` with the next run of rows.
    ///
    /// `batch.wrapped` is set when this batch starts a new pass (the segment
    /// start; position 0 for a whole-table scan). The batch never crosses the wrap
    /// point. The snapshot length of the current pass is sampled when the pass
    /// starts wrapping, so rows appended mid-pass are picked up on the next pass —
    /// matching the paper's requirement that each query sees one well-defined full
    /// scan.
    pub fn next_batch(&mut self, batch: &mut ScanBatch) {
        batch.clear();
        let (start, end) = self.current_bounds();
        if start >= end {
            // Empty table or empty segment: report a wrap, never spin.
            batch.wrapped = true;
            return;
        }
        if self.position >= end || self.position < start {
            // Wrap around: a pass just completed.
            self.position = start;
            self.passes += 1;
        }
        batch.wrapped = self.position == start;
        let remaining = (end - self.position) as usize;
        let to_read = remaining.min(self.batch_rows);
        let read = self
            .table
            .read_range(self.position, to_read, &mut batch.rows);
        if let Some(io) = &self.io {
            let pages = (read as u64).div_ceil(self.table.rows_per_page() as u64);
            io.record(AccessKind::Sequential, pages);
        }
        self.position += read as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::Value;

    fn fact_table(rows: i64) -> Arc<Table> {
        let schema = Schema::new("fact", vec![Column::int("f_key"), Column::int("f_val")]);
        let table = Table::with_rows_per_page(schema, 10);
        table.insert_batch_unchecked(
            (0..rows).map(|i| Row::new(vec![Value::int(i), Value::int(i * 10)])),
            SnapshotId::INITIAL,
        );
        Arc::new(table)
    }

    #[test]
    fn table_scan_visits_all_rows_once() {
        let t = fact_table(95);
        let scan = TableScan::new(Arc::clone(&t), SnapshotId::INITIAL).with_batch_rows(16);
        let mut seen = Vec::new();
        scan.for_each(|id, row| {
            assert_eq!(id.index() as i64, row.int(0));
            seen.push(row.int(0));
        });
        assert_eq!(seen.len(), 95);
        assert_eq!(seen, (0..95).collect::<Vec<_>>());
    }

    #[test]
    fn table_scan_records_io() {
        let t = fact_table(95); // 10 rows/page -> 10 pages
        let io = Arc::new(IoStats::new());
        let scan = TableScan::new(Arc::clone(&t), SnapshotId::INITIAL)
            .with_io(Arc::clone(&io), AccessKind::Sequential)
            .with_batch_rows(1000);
        scan.for_each(|_, _| {});
        assert_eq!(io.sequential_pages(), 10);
        assert_eq!(io.random_pages(), 0);
    }

    #[test]
    fn table_scan_respects_snapshot() {
        let schema = Schema::new("fact", vec![Column::int("a")]);
        let table = Arc::new(Table::new(schema));
        table.insert(vec![Value::int(1)], SnapshotId(0)).unwrap();
        let old = table.insert(vec![Value::int(2)], SnapshotId(0)).unwrap();
        table.insert(vec![Value::int(3)], SnapshotId(5)).unwrap();
        table.delete(old, SnapshotId(3));

        let collect = |snap: SnapshotId| {
            let mut v = Vec::new();
            TableScan::new(Arc::clone(&table), snap).for_each(|_, r| v.push(r.int(0)));
            v
        };
        assert_eq!(collect(SnapshotId(0)), vec![1, 2]);
        assert_eq!(collect(SnapshotId(4)), vec![1]);
        assert_eq!(collect(SnapshotId(5)), vec![1, 3]);
    }

    #[test]
    fn table_scan_ignores_rows_added_after_creation() {
        let t = fact_table(10);
        let mut scan = TableScan::new(Arc::clone(&t), SnapshotId(10)).with_batch_rows(4);
        t.insert_batch_unchecked(
            (100..105).map(|i| Row::new(vec![Value::int(i), Value::int(0)])),
            SnapshotId::INITIAL,
        );
        let mut count = 0;
        while let Some(b) = scan.next_batch() {
            count += b.len();
        }
        assert_eq!(count, 10, "length pinned at scan creation");
        assert_eq!(scan.total_rows(), 10);
    }

    #[test]
    fn continuous_scan_wraps_and_counts_passes() {
        let t = fact_table(25);
        let mut scan = ContinuousScan::new(Arc::clone(&t)).with_batch_rows(10);
        let mut batch = ScanBatch::default();

        // Pass 1: batches of 10, 10, 5.
        scan.next_batch(&mut batch);
        assert!(batch.wrapped);
        assert_eq!(batch.len(), 10);
        assert_eq!(batch.rows[0].0, RowId(0));
        scan.next_batch(&mut batch);
        assert!(!batch.wrapped);
        assert_eq!(batch.len(), 10);
        scan.next_batch(&mut batch);
        assert_eq!(batch.len(), 5);
        assert_eq!(scan.passes(), 0);

        // Pass 2 starts: wrapped again, position resets.
        scan.next_batch(&mut batch);
        assert!(batch.wrapped);
        assert_eq!(batch.rows[0].0, RowId(0));
        assert_eq!(scan.passes(), 1);
        assert_eq!(scan.position(), 10);
    }

    #[test]
    fn continuous_scan_batches_never_cross_wrap() {
        let t = fact_table(25);
        let mut scan = ContinuousScan::new(Arc::clone(&t)).with_batch_rows(10);
        let mut batch = ScanBatch::with_capacity(10);
        for _ in 0..20 {
            scan.next_batch(&mut batch);
            // Row ids within a batch are consecutive and ascending.
            for w in batch.rows.windows(2) {
                assert_eq!(w[1].0 .0, w[0].0 .0 + 1);
            }
        }
    }

    #[test]
    fn continuous_scan_same_order_every_pass() {
        let t = fact_table(30);
        let mut scan = ContinuousScan::new(Arc::clone(&t)).with_batch_rows(7);
        let mut batch = ScanBatch::default();
        let mut pass1 = Vec::new();
        let mut pass2 = Vec::new();
        // Collect two full passes.
        while pass1.len() < 30 {
            scan.next_batch(&mut batch);
            pass1.extend(batch.rows.iter().map(|(id, _, _)| *id));
        }
        while pass2.len() < 30 {
            scan.next_batch(&mut batch);
            pass2.extend(batch.rows.iter().map(|(id, _, _)| *id));
        }
        assert_eq!(
            pass1, pass2,
            "continuous scan must be order-stable across passes"
        );
    }

    #[test]
    fn continuous_scan_on_empty_table_reports_wrapped_empty_batches() {
        let schema = Schema::new("fact", vec![Column::int("a")]);
        let t = Arc::new(Table::new(schema));
        let mut scan = ContinuousScan::new(t);
        let mut batch = ScanBatch::default();
        scan.next_batch(&mut batch);
        assert!(batch.is_empty());
        assert!(batch.wrapped);
    }

    #[test]
    fn continuous_scan_picks_up_appends_on_later_passes() {
        let t = fact_table(10);
        let mut scan = ContinuousScan::new(Arc::clone(&t)).with_batch_rows(100);
        let mut batch = ScanBatch::default();
        scan.next_batch(&mut batch);
        assert_eq!(batch.len(), 10);
        // Append while the scan is "mid-pass" (position at end).
        t.insert_batch_unchecked(
            (10..15).map(|i| Row::new(vec![Value::int(i), Value::int(0)])),
            SnapshotId(1),
        );
        scan.next_batch(&mut batch);
        // The appended rows extend the current pass (position 10 < new len 15), so
        // they are returned before wrapping; the next pass then sees all 15.
        assert_eq!(batch.len(), 5);
        scan.next_batch(&mut batch);
        assert!(batch.wrapped);
        assert_eq!(batch.len(), 15);
    }

    #[test]
    fn continuous_scan_records_sequential_io() {
        let t = fact_table(100); // 10 pages
        let io = Arc::new(IoStats::new());
        let mut scan = ContinuousScan::new(t)
            .with_io(Arc::clone(&io))
            .with_batch_rows(50);
        let mut batch = ScanBatch::default();
        for _ in 0..4 {
            scan.next_batch(&mut batch);
        }
        // Two passes of 10 pages each = 20 pages... 4 batches of 50 rows = 2 passes.
        assert_eq!(io.sequential_pages(), 20);
    }

    #[test]
    fn segment_ranges_cover_the_table_exactly_once_and_are_page_aligned() {
        for (len, rpp, n) in [
            (95u64, 10usize, 4usize),
            (100, 10, 3),
            (7, 10, 4),
            (0, 10, 2),
        ] {
            let ranges = segment_ranges(len, rpp, n);
            assert_eq!(ranges.len(), n);
            // Contiguous cover of [0, len): each start equals the previous end,
            // the first starts at 0, the last is open-ended.
            assert_eq!(ranges[0].0, 0);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, Some(w[1].0), "len={len} rpp={rpp} n={n}");
            }
            assert_eq!(ranges[n - 1].1, None);
            // Interior boundaries are page multiples.
            for &(start, _) in &ranges[1..] {
                assert_eq!(start % rpp as u64, 0, "len={len} rpp={rpp} n={n}");
            }
        }
        assert_eq!(segment_ranges(100, 10, 1), vec![(0, None)]);
    }

    #[test]
    fn segmented_scans_partition_every_pass() {
        let t = fact_table(95); // 10 rows per page
        let n = 4;
        let ranges = segment_ranges(t.len() as u64, t.rows_per_page(), n);
        let mut seen = vec![0u32; 95];
        for &(start, end) in &ranges {
            let mut scan = ContinuousScan::new(Arc::clone(&t))
                .with_batch_rows(7)
                .with_segment(start, end);
            let mut batch = ScanBatch::default();
            // Drive exactly one pass of this segment.
            let mut first = true;
            loop {
                scan.next_batch(&mut batch);
                if batch.wrapped && !first {
                    break;
                }
                first = false;
                for (id, _, _) in &batch.rows {
                    assert!(id.0 >= start, "row below segment start");
                    if let Some(end) = end {
                        assert!(id.0 < end, "row beyond segment end");
                    }
                    seen[id.0 as usize] += 1;
                }
                if batch.is_empty() {
                    break;
                }
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "one pass of every segment covers each row exactly once: {seen:?}"
        );
    }

    #[test]
    fn segmented_scan_wraps_to_its_segment_start() {
        let t = fact_table(30);
        let mut scan = ContinuousScan::new(Arc::clone(&t))
            .with_batch_rows(8)
            .with_segment(10, Some(20));
        let mut batch = ScanBatch::default();
        scan.next_batch(&mut batch);
        assert!(batch.wrapped);
        assert_eq!(batch.rows[0].0, RowId(10));
        assert_eq!(batch.len(), 8);
        scan.next_batch(&mut batch);
        assert!(!batch.wrapped);
        assert_eq!(batch.len(), 2, "batches never cross the segment wrap");
        assert_eq!(scan.normalized_position(), 10, "cursor folds back to start");
        scan.next_batch(&mut batch);
        assert!(batch.wrapped);
        assert_eq!(batch.rows[0].0, RowId(10));
        assert_eq!(scan.passes(), 1);
        assert_eq!(scan.segment_start(), 10);
    }

    #[test]
    fn empty_segment_reports_wrapped_empty_batches() {
        let t = fact_table(30);
        let mut scan = ContinuousScan::new(t).with_segment(12, Some(12));
        let mut batch = ScanBatch::default();
        scan.next_batch(&mut batch);
        assert!(batch.is_empty());
        assert!(batch.wrapped);
    }

    #[test]
    fn open_ended_segment_picks_up_appends_like_the_whole_table_scan() {
        let t = fact_table(20);
        let mut scan = ContinuousScan::new(Arc::clone(&t))
            .with_batch_rows(100)
            .with_segment(10, None);
        let mut batch = ScanBatch::default();
        scan.next_batch(&mut batch);
        assert_eq!(batch.len(), 10);
        t.insert_batch_unchecked(
            (20..25).map(|i| Row::new(vec![Value::int(i), Value::int(0)])),
            SnapshotId(1),
        );
        scan.next_batch(&mut batch);
        assert_eq!(batch.len(), 5, "growth extends the current pass");
        scan.next_batch(&mut batch);
        assert!(batch.wrapped);
        assert_eq!(batch.len(), 15, "next pass sees the grown segment");
    }

    #[test]
    fn scan_batch_helpers() {
        let mut b = ScanBatch::with_capacity(8);
        assert!(b.is_empty());
        b.rows.push((
            RowId(0),
            Row::new(vec![Value::int(1)]),
            RowVersion::ALWAYS_VISIBLE,
        ));
        b.wrapped = true;
        assert_eq!(b.len(), 1);
        b.clear();
        assert!(b.is_empty());
        assert!(!b.wrapped);
    }
}
