//! Columnar storage of a table, with optional per-column compression.
//!
//! §5 of the paper ("Column Stores") points out that CJOIN adapts naturally to a
//! columnar warehouse: the continuous fact-table scan becomes a continuous scan/merge
//! of *only those columns that the current query mix accesses*, which reduces the
//! volume of data the shared scan moves. This module provides that substrate:
//!
//! * [`ColumnarTable`] — a column-oriented, read-optimised copy of a [`Table`]
//!   snapshot. String columns are dictionary-encoded and integer columns pick the
//!   smallest of plain / RLE / bit-packed / delta encoding (see
//!   [`CompressionPolicy`]). The table is split into fixed-size [`RowGroup`]s, each
//!   carrying a [`ZoneMap`] per column (min/max for int columns, a distinct-code
//!   summary for dictionary columns) so a scan can prove "no row in this group can
//!   match any active predicate" without touching the group's bytes.
//! * [`ColumnarContinuousScan`] — the circular scan over a columnar table. It has the
//!   same wrap-around semantics as [`crate::ContinuousScan`] (stable row order,
//!   batches never cross the wrap point) but materialises only a projected subset of
//!   the columns; the untouched columns are returned as NULL and their bytes are never
//!   read.
//! * [`ScanVolume`] — accounting of the bytes each scan actually touched (total and
//!   per column), rows skipped via zone maps, and per-run predicate probes, so the
//!   experiment harness can compare row-store and column-store scan volume.
//!
//! # Correctness of encoded-predicate evaluation and late materialization
//!
//! The in-pipeline columnar scan (the `colscan` kernel in the engine crate) evaluates
//! predicates over this encoded data and materialises only a projection. Its
//! correctness rests on invariants this module guarantees:
//!
//! * **Encodings are lossless.** Every [`IntEncoding`] decodes to exactly the value
//!   sequence of the source column ([`ColumnarTable::value`] and the encoded
//!   accessors agree by construction), so evaluating a predicate on encoded values —
//!   including once-per-run over RLE data — is evaluating it on the true values.
//! * **Dictionary codes are injective.** Two rows have equal string values iff they
//!   have equal codes, so any string predicate can be pre-translated at query install
//!   into a set of matching codes; comparing codes row-by-row (or consulting the
//!   zone's code summary) is then exact, never approximate.
//! * **Zone maps over-approximate.** A [`ZoneMap`] covers every *stored* (even
//!   deleted) row of its group and NULLs are tracked separately (`has_null`), so a
//!   "no possible match" verdict is conservative: skipping the group can never drop a
//!   row any active query would have kept. [`ZoneCodes::Bloom`] only ever produces
//!   false *positives* (a group scanned needlessly), never false negatives.
//! * **Row positions are stable.** Row `i` of the replica is row id `i` of the source
//!   table prefix, so partially materialised rows ([`ColumnarTable::project_row`])
//!   keep bound column indices and join keys valid; unprojected columns read as NULL
//!   and are never consulted downstream (the projection is the union of all admitted
//!   queries' join/group-by/aggregate columns, maintained on admission/completion).
//!
//! The columnar table is a *read-optimised replica*: it captures the rows visible in
//! the source table at build time (all versions, with their visibility metadata), the
//! way a column-store warehouse would maintain a read-optimised partition alongside a
//! write-optimised store. Rows appended to the source table after the replica was
//! built are served from the row store by the hybrid scan path; *deletes* applied
//! after build time are **not** reflected in the replica's visibility metadata — the
//! replica serves the snapshot range that existed when the engine started, which is
//! the same contract the paper's read-optimised column-store partition provides.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cjoin_common::{Error, Result};

use crate::compress::{BitPackedVec, DeltaVec, DictColumn, RleVec};
use crate::row::{Row, RowId};
use crate::scan::ScanBatch;
use crate::schema::{ColumnId, ColumnType, Schema};
use crate::snapshot::{RowVersion, SnapshotId};
use crate::table::Table;
use crate::value::Value;

/// How aggressively [`ColumnarTable::from_table`] compresses each column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompressionPolicy {
    /// Store integer columns as plain vectors and string columns dictionary-encoded
    /// (dictionary encoding is always a win for the `Arc<str>`-based row model).
    #[default]
    Plain,
    /// Additionally encode each NULL-free integer column with whichever of plain,
    /// run-length, bit-packed, or delta encoding is smallest (ties keep plain).
    Adaptive,
}

/// One column of a [`ColumnarTable`].
#[derive(Debug, Clone)]
enum ColumnData {
    /// Plain integer column with an optional null bitmap (allocated only when the
    /// column actually contains NULLs).
    IntPlain {
        values: Vec<i64>,
        nulls: Option<Vec<bool>>,
    },
    /// Run-length encoded integer column (only used when the column has no NULLs).
    IntRle(RleVec),
    /// Frame-of-reference bit-packed integer column (no NULLs).
    IntPacked(BitPackedVec),
    /// Block-wise delta-encoded integer column (no NULLs).
    IntDelta(DeltaVec),
    /// Dictionary-encoded string column with an optional null bitmap.
    Str {
        codes: DictColumn,
        nulls: Option<Vec<bool>>,
    },
}

/// FNV-1a over the decoded values of rows `[start, start + len)`, row-major
/// across all columns. Decoding through [`ColumnData::value`] (rather than
/// hashing the encoded bytes) means a corrupted run length, dictionary code or
/// packed frame changes the checksum exactly when it changes what a scan would
/// observe.
fn group_checksum(columns: &[ColumnData], start: usize, len: usize) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for row in start..start + len {
        for column in columns {
            hash = column.fold_value(row, hash);
        }
    }
    hash
}

fn is_null(nulls: &Option<Vec<bool>>, row: usize) -> bool {
    nulls
        .as_ref()
        .is_some_and(|n| n.get(row).copied().unwrap_or(false))
}

fn null_bitmap_bytes(nulls: &Option<Vec<bool>>) -> u64 {
    nulls.as_ref().map_or(0, |n| n.len() as u64 / 8)
}

impl ColumnData {
    fn value(&self, row: usize) -> Value {
        match self {
            ColumnData::IntPlain { values, nulls } => {
                if is_null(nulls, row) {
                    Value::Null
                } else {
                    Value::Int(values[row])
                }
            }
            ColumnData::IntRle(v) => v.get(row).map_or(Value::Null, Value::Int),
            ColumnData::IntPacked(v) => v.get(row).map_or(Value::Null, Value::Int),
            ColumnData::IntDelta(v) => v.get(row).map_or(Value::Null, Value::Int),
            ColumnData::Str { codes, nulls } => {
                if is_null(nulls, row) {
                    Value::Null
                } else {
                    codes.get(row).map_or(Value::Null, Value::Str)
                }
            }
        }
    }

    /// Approximate heap footprint of the encoded column.
    fn encoded_bytes(&self) -> u64 {
        match self {
            ColumnData::IntPlain { values, nulls } => {
                (values.len() * std::mem::size_of::<i64>()) as u64 + null_bitmap_bytes(nulls)
            }
            ColumnData::IntRle(v) => v.encoded_bytes(),
            ColumnData::IntPacked(v) => v.encoded_bytes(),
            ColumnData::IntDelta(v) => v.encoded_bytes(),
            ColumnData::Str { codes, nulls } => codes.encoded_bytes() + null_bitmap_bytes(nulls),
        }
    }

    /// Folds `value` into an FNV-1a state with a type tag, so `Int(0)`, `Null`
    /// and `Str("")` hash differently.
    fn fold_value(&self, row: usize, mut hash: u64) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut feed = |byte: u8| {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        };
        match self.value(row) {
            Value::Null => feed(0),
            Value::Int(v) => {
                feed(1);
                for b in v.to_le_bytes() {
                    feed(b);
                }
            }
            Value::Str(s) => {
                feed(2);
                for b in s.as_bytes() {
                    feed(*b);
                }
                feed(0xff);
            }
        }
        hash
    }

    /// Heap footprint of the same data in the row-store representation.
    fn plain_bytes(&self) -> u64 {
        match self {
            ColumnData::IntPlain { values, .. } => {
                (values.len() * std::mem::size_of::<i64>()) as u64
            }
            ColumnData::IntRle(v) => v.plain_bytes(),
            ColumnData::IntPacked(v) => v.plain_bytes(),
            ColumnData::IntDelta(v) => v.plain_bytes(),
            ColumnData::Str { codes, .. } => codes.plain_bytes(),
        }
    }
}

/// Default number of rows per [`RowGroup`].
pub const DEFAULT_ROW_GROUP_ROWS: usize = 1024;

/// Maximum distinct codes a [`ZoneCodes::Exact`] summary tracks before degrading
/// to a [`ZoneCodes::Bloom`] mask.
const ZONE_EXACT_CODES: usize = 16;

/// Summary of the distinct dictionary codes appearing in one row group of a
/// string column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneCodes {
    /// Every distinct code in the group, sorted (low-cardinality groups).
    Exact(Vec<u32>),
    /// A 64-bit Bloom-style mask: bit `code % 64` is set for every code present.
    /// May report false positives (group scanned needlessly), never false
    /// negatives.
    Bloom(u64),
}

impl ZoneCodes {
    /// Whether the group may contain a row with this code.
    pub fn may_contain(&self, code: u32) -> bool {
        match self {
            ZoneCodes::Exact(codes) => codes.binary_search(&code).is_ok(),
            ZoneCodes::Bloom(mask) => mask & (1u64 << (code % 64)) != 0,
        }
    }

    /// The exact sorted code set, when the summary kept one.
    pub fn exact(&self) -> Option<&[u32]> {
        match self {
            ZoneCodes::Exact(codes) => Some(codes),
            ZoneCodes::Bloom(_) => None,
        }
    }
}

/// Per-column summary of one row group, used to skip groups no predicate can match.
///
/// NULL rows are excluded from the min/max and code summaries and tracked via
/// `has_null` instead; a group whose non-null rows are empty carries the inverted
/// sentinel `min = i64::MAX, max = i64::MIN` (every range test on it is "never").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneMap {
    /// Integer column: min/max over the group's non-null values.
    Int {
        /// Smallest non-null value in the group (`i64::MAX` when all-NULL).
        min: i64,
        /// Largest non-null value in the group (`i64::MIN` when all-NULL).
        max: i64,
        /// Whether the group contains any NULL.
        has_null: bool,
    },
    /// String column: summary of the distinct dictionary codes present.
    Str {
        /// The code summary over the group's non-null values.
        codes: ZoneCodes,
        /// Whether the group contains any NULL.
        has_null: bool,
    },
}

/// A fixed-size horizontal slice of a [`ColumnarTable`] with per-column zone maps.
#[derive(Debug, Clone)]
pub struct RowGroup {
    /// First row position covered by the group.
    pub start: u64,
    /// Number of rows in the group (the last group may be short).
    pub len: u64,
    /// One [`ZoneMap`] per column, in schema order.
    pub zones: Vec<ZoneMap>,
    /// Whether every stored row in the group is visible at every snapshot, in
    /// which case the scan can skip per-row visibility checks.
    pub all_always_visible: bool,
    /// FNV-1a checksum over the group's decoded values (all columns, row-major),
    /// computed at build time. [`ColumnarTable::verify_group`] recomputes it so a
    /// scan can detect a corrupted group before trusting its zone maps, and fall
    /// back to the row store for just that group.
    pub checksum: u64,
}

/// A borrowed view of one integer column's encoded representation.
#[derive(Debug, Clone, Copy)]
pub enum IntEncoding<'a> {
    /// Plain values.
    Plain(&'a [i64]),
    /// Run-length encoded.
    Rle(&'a RleVec),
    /// Frame-of-reference bit-packed.
    Packed(&'a BitPackedVec),
    /// Block-wise delta encoded.
    Delta(&'a DeltaVec),
}

impl IntEncoding<'_> {
    /// The value at `row` (`None` past the end). All encodings are lossless, so
    /// this agrees with [`ColumnarTable::value`] on non-null rows.
    pub fn get(&self, row: usize) -> Option<i64> {
        match self {
            IntEncoding::Plain(values) => values.get(row).copied(),
            IntEncoding::Rle(v) => v.get(row),
            IntEncoding::Packed(v) => v.get(row),
            IntEncoding::Delta(v) => v.get(row),
        }
    }
}

/// A borrowed view of one column's encoded representation, for scan kernels that
/// evaluate predicates without materialising [`Value`]s.
#[derive(Debug, Clone, Copy)]
pub enum EncodedColumn<'a> {
    /// Integer column: encoded values plus an optional null bitmap.
    Int {
        /// The encoded values (NULL positions hold 0 in the encoding).
        data: IntEncoding<'a>,
        /// Per-row null flags, when the column contains NULLs.
        nulls: Option<&'a [bool]>,
    },
    /// String column: dictionary codes plus an optional null bitmap.
    Str {
        /// The dictionary-encoded codes (NULL positions hold the code of `""`).
        codes: &'a DictColumn,
        /// Per-row null flags, when the column contains NULLs.
        nulls: Option<&'a [bool]>,
    },
}

/// Builds per-group zone maps for an integer column.
fn int_zones(values: &[i64], nulls: &Option<Vec<bool>>, group_rows: usize) -> Vec<ZoneMap> {
    let mut zones = Vec::with_capacity(values.len().div_ceil(group_rows.max(1)));
    for (g, block) in values.chunks(group_rows).enumerate() {
        let start = g * group_rows;
        let (mut min, mut max, mut has_null) = (i64::MAX, i64::MIN, false);
        for (i, &v) in block.iter().enumerate() {
            if is_null(nulls, start + i) {
                has_null = true;
            } else {
                min = min.min(v);
                max = max.max(v);
            }
        }
        zones.push(ZoneMap::Int { min, max, has_null });
    }
    zones
}

/// Builds per-group zone maps for a dictionary-encoded string column.
fn str_zones(codes: &DictColumn, nulls: &Option<Vec<bool>>, group_rows: usize) -> Vec<ZoneMap> {
    let len = codes.len();
    let mut zones = Vec::with_capacity(len.div_ceil(group_rows.max(1)));
    let mut start = 0usize;
    while start < len {
        let end = (start + group_rows).min(len);
        let mut distinct: Vec<u32> = Vec::new();
        let mut has_null = false;
        for i in start..end {
            if is_null(nulls, i) {
                has_null = true;
                continue;
            }
            let code = codes.code(i).expect("row in range");
            if let Err(at) = distinct.binary_search(&code) {
                distinct.insert(at, code);
            }
        }
        let summary = if distinct.len() <= ZONE_EXACT_CODES {
            ZoneCodes::Exact(distinct)
        } else {
            let mut mask = 0u64;
            for &code in &distinct {
                mask |= 1u64 << (code % 64);
            }
            ZoneCodes::Bloom(mask)
        };
        zones.push(ZoneMap::Str {
            codes: summary,
            has_null,
        });
        start = end;
    }
    zones
}

/// A read-optimised, column-oriented copy of a table.
#[derive(Debug)]
pub struct ColumnarTable {
    schema: Schema,
    columns: Vec<ColumnData>,
    versions: Vec<RowVersion>,
    policy: CompressionPolicy,
    groups: Vec<RowGroup>,
    group_rows: usize,
}

impl ColumnarTable {
    /// Builds a columnar replica of `table` with [`DEFAULT_ROW_GROUP_ROWS`]-row
    /// groups, capturing every stored row version.
    ///
    /// # Errors
    /// Returns a type-mismatch error if a stored row does not match the schema (which
    /// indicates a corrupted source table).
    pub fn from_table(table: &Table, policy: CompressionPolicy) -> Result<Self> {
        Self::from_table_with_row_groups(table, policy, DEFAULT_ROW_GROUP_ROWS)
    }

    /// Builds a columnar replica of `table` split into `group_rows`-row groups with
    /// per-group zone maps.
    ///
    /// # Errors
    /// Returns a type-mismatch error if a stored row does not match the schema.
    ///
    /// # Panics
    /// Panics if `group_rows` is zero.
    pub fn from_table_with_row_groups(
        table: &Table,
        policy: CompressionPolicy,
        group_rows: usize,
    ) -> Result<Self> {
        assert!(group_rows > 0, "group_rows must be positive");
        let schema = table.schema().clone();
        let arity = schema.arity();
        let len = table.len();

        // Gather all rows once, in RowId order (the order every scan uses).
        let mut rows = Vec::with_capacity(len);
        let mut buffer = Vec::new();
        let mut position = 0u64;
        loop {
            buffer.clear();
            let read = table.read_range(position, 8192, &mut buffer);
            if read == 0 {
                break;
            }
            position += read as u64;
            rows.append(&mut buffer);
        }

        let versions: Vec<RowVersion> = rows.iter().map(|(_, _, v)| *v).collect();

        let mut columns = Vec::with_capacity(arity);
        let mut column_zones: Vec<Vec<ZoneMap>> = Vec::with_capacity(arity);
        for (col_idx, column) in schema.columns().iter().enumerate() {
            let data = match column.ty {
                ColumnType::Int => {
                    let mut values: Vec<i64> = Vec::with_capacity(len);
                    let mut nulls: Option<Vec<bool>> = None;
                    for (i, (_, row, _)) in rows.iter().enumerate() {
                        match row.get(col_idx) {
                            Value::Int(v) => values.push(*v),
                            Value::Null => {
                                nulls.get_or_insert_with(|| vec![false; len])[i] = true;
                                values.push(0);
                            }
                            other => {
                                return Err(Error::type_mismatch(format!(
                                    "column {} of table {}: expected Int, found {other:?}",
                                    column.name, schema.table
                                )))
                            }
                        }
                    }
                    column_zones.push(int_zones(&values, &nulls, group_rows));
                    if policy == CompressionPolicy::Adaptive && nulls.is_none() {
                        Self::best_int_encoding(values)
                    } else {
                        ColumnData::IntPlain { values, nulls }
                    }
                }
                ColumnType::Str => {
                    let mut codes = DictColumn::new();
                    let mut nulls: Option<Vec<bool>> = None;
                    for (i, (_, row, _)) in rows.iter().enumerate() {
                        match row.get(col_idx) {
                            Value::Str(s) => codes.push(s),
                            Value::Null => {
                                nulls.get_or_insert_with(|| vec![false; len])[i] = true;
                                codes.push("");
                            }
                            other => {
                                return Err(Error::type_mismatch(format!(
                                    "column {} of table {}: expected Str, found {other:?}",
                                    column.name, schema.table
                                )))
                            }
                        }
                    }
                    column_zones.push(str_zones(&codes, &nulls, group_rows));
                    ColumnData::Str { codes, nulls }
                }
            };
            columns.push(data);
        }

        // Transpose the per-column zone lists into per-group RowGroups.
        let num_groups = len.div_ceil(group_rows);
        let mut groups = Vec::with_capacity(num_groups);
        for g in 0..num_groups {
            let start = g * group_rows;
            let group_len = group_rows.min(len - start);
            let zones = column_zones.iter().map(|zones| zones[g].clone()).collect();
            let all_always_visible = versions[start..start + group_len]
                .iter()
                .all(|v| *v == RowVersion::ALWAYS_VISIBLE);
            groups.push(RowGroup {
                start: start as u64,
                len: group_len as u64,
                zones,
                all_always_visible,
                checksum: group_checksum(&columns, start, group_len),
            });
        }

        Ok(Self {
            schema,
            columns,
            versions,
            policy,
            groups,
            group_rows,
        })
    }

    /// Picks the smallest of plain / RLE / bit-packed / delta for a NULL-free
    /// integer column (ties keep the simpler plain representation).
    fn best_int_encoding(values: Vec<i64>) -> ColumnData {
        let plain_bytes = (values.len() * std::mem::size_of::<i64>()) as u64;
        let rle = RleVec::from_slice(&values);
        let packed = BitPackedVec::from_slice(&values);
        let delta = DeltaVec::from_slice(&values);
        let best = [
            rle.encoded_bytes(),
            packed.encoded_bytes(),
            delta.encoded_bytes(),
        ]
        .into_iter()
        .min()
        .unwrap_or(u64::MAX);
        if best >= plain_bytes {
            ColumnData::IntPlain {
                values,
                nulls: None,
            }
        } else if rle.encoded_bytes() == best {
            ColumnData::IntRle(rle)
        } else if packed.encoded_bytes() == best {
            ColumnData::IntPacked(packed)
        } else {
            ColumnData::IntDelta(delta)
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.schema.table
    }

    /// The compression policy the table was built with.
    pub fn policy(&self) -> CompressionPolicy {
        self.policy
    }

    /// Number of stored rows (all versions).
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Returns the value of `column` at `row`, or `None` when the row is out of range.
    ///
    /// # Panics
    /// Panics if `column` is out of range for the schema.
    pub fn value(&self, row: usize, column: ColumnId) -> Option<Value> {
        if row >= self.len() {
            return None;
        }
        Some(self.columns[column].value(row))
    }

    /// Materialises the full-width row at `row`, or `None` when out of range.
    pub fn row(&self, row: usize) -> Option<Row> {
        if row >= self.len() {
            return None;
        }
        Some(Row::new(
            (0..self.schema.arity())
                .map(|c| self.columns[c].value(row))
                .collect(),
        ))
    }

    /// Visibility metadata of the row at `row`.
    pub fn version(&self, row: usize) -> Option<RowVersion> {
        self.versions.get(row).copied()
    }

    /// The row groups the table is split into, in position order.
    pub fn row_groups(&self) -> &[RowGroup] {
        &self.groups
    }

    /// Rows per group (the last group may be shorter).
    pub fn group_rows(&self) -> usize {
        self.group_rows
    }

    /// Index of the row group containing row position `row`.
    pub fn group_of(&self, row: u64) -> usize {
        (row / self.group_rows as u64) as usize
    }

    /// Recomputes group `g`'s checksum over the decoded values and compares it
    /// with the checksum stored at build time. `false` means the group's encoded
    /// data (or its stored checksum) was corrupted after the build and its zone
    /// maps must not be trusted; callers should serve the group from the row
    /// store instead. Out-of-range groups verify trivially.
    pub fn verify_group(&self, g: usize) -> bool {
        let Some(group) = self.groups.get(g) else {
            return true;
        };
        group_checksum(&self.columns, group.start as usize, group.len as usize) == group.checksum
    }

    /// Test hook: corrupts group `g` in place so [`ColumnarTable::verify_group`]
    /// fails for it. Flips a stored value when the group has a plain-encoded
    /// integer column, otherwise flips the stored checksum. Returns `false` when
    /// `g` is out of range or empty.
    #[doc(hidden)]
    pub fn corrupt_group(&mut self, g: usize) -> bool {
        let Some(group) = self.groups.get(g) else {
            return false;
        };
        if group.len == 0 {
            return false;
        }
        let row = group.start as usize;
        for column in &mut self.columns {
            if let ColumnData::IntPlain { values, .. } = column {
                if let Some(v) = values.get_mut(row) {
                    *v ^= 0x55aa;
                    return true;
                }
            }
        }
        self.groups[g].checksum ^= 0x55aa;
        true
    }

    /// A borrowed view of `column`'s encoded representation, for kernels that
    /// evaluate predicates directly over encoded data.
    ///
    /// # Panics
    /// Panics if `column` is out of range for the schema.
    pub fn encoded_column(&self, column: ColumnId) -> EncodedColumn<'_> {
        match &self.columns[column] {
            ColumnData::IntPlain { values, nulls } => EncodedColumn::Int {
                data: IntEncoding::Plain(values),
                nulls: nulls.as_deref(),
            },
            ColumnData::IntRle(v) => EncodedColumn::Int {
                data: IntEncoding::Rle(v),
                nulls: None,
            },
            ColumnData::IntPacked(v) => EncodedColumn::Int {
                data: IntEncoding::Packed(v),
                nulls: None,
            },
            ColumnData::IntDelta(v) => EncodedColumn::Int {
                data: IntEncoding::Delta(v),
                nulls: None,
            },
            ColumnData::Str { codes, nulls } => EncodedColumn::Str {
                codes,
                nulls: nulls.as_deref(),
            },
        }
    }

    /// Visits every row visible at `snapshot`, materialising only the projected
    /// columns (the rest read as NULL). Used by admission-time dimension loading when
    /// dimensions are stored columnar.
    pub fn for_each_visible_projected<F: FnMut(RowId, &Row)>(
        &self,
        snapshot: SnapshotId,
        projection: &[ColumnId],
        mut f: F,
    ) {
        for i in 0..self.len() {
            if self.versions[i].visible_at(snapshot) {
                let row = self.project_row(i, projection);
                f(RowId(i as u64), &row);
            }
        }
    }

    /// Materialises a row with only the projected columns populated; all other
    /// columns are NULL. Column positions are preserved so bound column indices keep
    /// working.
    pub fn project_row(&self, row: usize, projection: &[ColumnId]) -> Row {
        let mut values = vec![Value::Null; self.schema.arity()];
        for &c in projection {
            values[c] = self.columns[c].value(row);
        }
        Row::new(values)
    }

    /// Approximate encoded heap footprint of one column, in bytes.
    pub fn column_encoded_bytes(&self, column: ColumnId) -> u64 {
        self.columns[column].encoded_bytes()
    }

    /// Approximate heap footprint of one column in the row-store representation.
    pub fn column_plain_bytes(&self, column: ColumnId) -> u64 {
        self.columns[column].plain_bytes()
    }

    /// Total encoded footprint across all columns.
    pub fn total_encoded_bytes(&self) -> u64 {
        self.columns.iter().map(ColumnData::encoded_bytes).sum()
    }

    /// Total row-store footprint across all columns.
    pub fn total_plain_bytes(&self) -> u64 {
        self.columns.iter().map(ColumnData::plain_bytes).sum()
    }

    /// Overall compression ratio (`plain / encoded`); 1.0 for an empty table.
    pub fn compression_ratio(&self) -> f64 {
        let encoded = self.total_encoded_bytes();
        if encoded == 0 {
            return 1.0;
        }
        self.total_plain_bytes() as f64 / encoded as f64
    }

    /// Resolves column names into a projection list.
    ///
    /// # Errors
    /// Returns [`Error::UnknownColumn`] for any name not in the schema.
    pub fn projection_of(&self, columns: &[&str]) -> Result<Vec<ColumnId>> {
        columns
            .iter()
            .map(|name| self.schema.column_index(name))
            .collect()
    }
}

/// Byte-level accounting of what a columnar scan actually read: total and
/// per-column bytes, rows skipped via zone maps, and per-run predicate probes.
#[derive(Debug, Default)]
pub struct ScanVolume {
    bytes_scanned: AtomicU64,
    rows_scanned: AtomicU64,
    row_groups_skipped: AtomicU64,
    rows_predicate_skipped: AtomicU64,
    predicate_probes: AtomicU64,
    predicate_rows: AtomicU64,
    groups_quarantined: AtomicU64,
    column_bytes: Vec<AtomicU64>,
}

impl ScanVolume {
    /// Creates zeroed counters without per-column tracking.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates zeroed counters with one per-column byte counter per schema column.
    pub fn with_columns(arity: usize) -> Self {
        Self {
            column_bytes: (0..arity).map(|_| AtomicU64::new(0)).collect(),
            ..Self::default()
        }
    }

    /// Bytes of column data touched so far.
    pub fn bytes_scanned(&self) -> u64 {
        self.bytes_scanned.load(Ordering::Relaxed)
    }

    /// Rows produced so far.
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// Row groups skipped outright because no active predicate could match
    /// their zone maps.
    pub fn row_groups_skipped(&self) -> u64 {
        self.row_groups_skipped.load(Ordering::Relaxed)
    }

    /// Rows whose bytes were never touched thanks to zone-map skipping.
    pub fn rows_predicate_skipped(&self) -> u64 {
        self.rows_predicate_skipped.load(Ordering::Relaxed)
    }

    /// Predicate evaluations actually performed (one per run on RLE data).
    pub fn predicate_probes(&self) -> u64 {
        self.predicate_probes.load(Ordering::Relaxed)
    }

    /// Rows those predicate evaluations covered; `predicate_rows /
    /// predicate_probes` is the average rows answered per probe.
    pub fn predicate_rows(&self) -> u64 {
        self.predicate_rows.load(Ordering::Relaxed)
    }

    /// Row groups that failed checksum verification and were served from the
    /// row store instead (each corrupt group is counted once per scan front-end
    /// that discovers it).
    pub fn groups_quarantined(&self) -> u64 {
        self.groups_quarantined.load(Ordering::Relaxed)
    }

    /// Snapshot of the per-column bytes touched (empty unless built via
    /// [`ScanVolume::with_columns`]).
    pub fn column_bytes(&self) -> Vec<u64> {
        self.column_bytes
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Resets all counters.
    pub fn reset(&self) {
        self.bytes_scanned.store(0, Ordering::Relaxed);
        self.rows_scanned.store(0, Ordering::Relaxed);
        self.row_groups_skipped.store(0, Ordering::Relaxed);
        self.rows_predicate_skipped.store(0, Ordering::Relaxed);
        self.predicate_probes.store(0, Ordering::Relaxed);
        self.predicate_rows.store(0, Ordering::Relaxed);
        self.groups_quarantined.store(0, Ordering::Relaxed);
        for c in &self.column_bytes {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Records `rows` produced at a cost of `bytes` of column data.
    pub fn record_scan(&self, rows: u64, bytes: u64) {
        self.rows_scanned.fetch_add(rows, Ordering::Relaxed);
        self.bytes_scanned.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Attributes `bytes` of touched data to `column` (no-op when per-column
    /// tracking is off or the index is out of range).
    pub fn record_column(&self, column: ColumnId, bytes: u64) {
        if let Some(c) = self.column_bytes.get(column) {
            c.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Records one zone-map skip of a `rows`-row group.
    pub fn record_group_skip(&self, rows: u64) {
        self.row_groups_skipped.fetch_add(1, Ordering::Relaxed);
        self.rows_predicate_skipped
            .fetch_add(rows, Ordering::Relaxed);
    }

    /// Records `probes` predicate evaluations covering `rows` rows.
    pub fn record_predicate(&self, probes: u64, rows: u64) {
        self.predicate_probes.fetch_add(probes, Ordering::Relaxed);
        self.predicate_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Records one row group quarantined after failing checksum verification.
    pub fn record_group_quarantined(&self) {
        self.groups_quarantined.fetch_add(1, Ordering::Relaxed);
    }
}

/// The circular, projected scan over a [`ColumnarTable`].
///
/// Mirrors [`crate::ContinuousScan`]: rows come back in stable [`RowId`] order,
/// batches never cross the wrap point, and `wrapped` marks the start of a new pass.
/// Only the projected columns are materialised (and accounted in [`ScanVolume`]); all
/// other columns are NULL, which is exactly the §5 "scan/merge of only those fact
/// table columns that are accessed by the current query mix".
#[derive(Debug)]
pub struct ColumnarContinuousScan {
    table: Arc<ColumnarTable>,
    projection: Vec<ColumnId>,
    bytes_per_row: u64,
    position: u64,
    batch_rows: usize,
    passes: u64,
    volume: Option<Arc<ScanVolume>>,
}

impl ColumnarContinuousScan {
    /// Creates a scan that materialises every column.
    pub fn new(table: Arc<ColumnarTable>) -> Self {
        let all: Vec<ColumnId> = (0..table.schema().arity()).collect();
        Self::with_projection(table, all)
    }

    /// Creates a scan that materialises only `projection` (column indices).
    pub fn with_projection(table: Arc<ColumnarTable>, projection: Vec<ColumnId>) -> Self {
        let len = table.len().max(1) as u64;
        let bytes_per_row = projection
            .iter()
            .map(|&c| table.column_encoded_bytes(c).div_ceil(len))
            .sum();
        Self {
            table,
            projection,
            bytes_per_row,
            position: 0,
            batch_rows: crate::scan::DEFAULT_SCAN_BATCH_ROWS,
            passes: 0,
            volume: None,
        }
    }

    /// Overrides the number of rows per batch.
    pub fn with_batch_rows(mut self, rows: usize) -> Self {
        assert!(rows > 0, "batch_rows must be positive");
        self.batch_rows = rows;
        self
    }

    /// Records scanned volume into `volume`.
    pub fn with_volume(mut self, volume: Arc<ScanVolume>) -> Self {
        self.volume = Some(volume);
        self
    }

    /// The projected column indices.
    pub fn projection(&self) -> &[ColumnId] {
        &self.projection
    }

    /// Average encoded bytes touched per produced row.
    pub fn bytes_per_row(&self) -> u64 {
        self.bytes_per_row
    }

    /// Number of completed passes over the table.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Current scan position (the row index the next batch starts at).
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Fills `batch` with the next run of rows; see [`crate::ContinuousScan::next_batch`].
    pub fn next_batch(&mut self, batch: &mut ScanBatch) {
        batch.clear();
        let len = self.table.len() as u64;
        if len == 0 {
            batch.wrapped = true;
            return;
        }
        if self.position >= len {
            self.position = 0;
            self.passes += 1;
        }
        batch.wrapped = self.position == 0;
        let remaining = (len - self.position) as usize;
        let to_read = remaining.min(self.batch_rows);
        let start = self.position as usize;
        for i in start..start + to_read {
            let row = self.table.project_row(i, &self.projection);
            let version = self.table.version(i).expect("row index in range");
            batch.rows.push((RowId(i as u64), row, version));
        }
        if let Some(volume) = &self.volume {
            volume.record_scan(to_read as u64, to_read as u64 * self.bytes_per_row);
        }
        self.position += to_read as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn source_table(rows: i64) -> Table {
        let schema = Schema::new(
            "lineorder",
            vec![
                Column::int("lo_orderkey"),
                Column::int("lo_orderdate"),
                Column::str("lo_shipmode"),
                Column::int("lo_revenue"),
            ],
        );
        let table = Table::with_rows_per_page(schema, 16);
        table.insert_batch_unchecked(
            (0..rows).map(|i| {
                Row::new(vec![
                    Value::int(i),
                    Value::int(19940101 + i / 50), // long runs: loaded in date order
                    Value::str(if i % 3 == 0 { "AIR" } else { "TRUCK" }),
                    Value::int(i * 7 % 1000),
                ])
            }),
            SnapshotId::INITIAL,
        );
        table
    }

    #[test]
    fn columnar_roundtrip_matches_row_store() {
        let table = source_table(200);
        for policy in [CompressionPolicy::Plain, CompressionPolicy::Adaptive] {
            let columnar = ColumnarTable::from_table(&table, policy).unwrap();
            assert_eq!(columnar.len(), 200);
            assert_eq!(columnar.name(), "lineorder");
            assert_eq!(columnar.policy(), policy);
            for i in 0..200 {
                assert_eq!(
                    columnar.row(i).unwrap(),
                    table.row(RowId(i as u64)).unwrap(),
                    "row {i}, {policy:?}"
                );
            }
            assert!(columnar.row(200).is_none());
            assert!(columnar.value(200, 0).is_none());
        }
    }

    #[test]
    fn checksums_detect_a_bit_flipped_group() {
        let table = source_table(200);
        for policy in [CompressionPolicy::Plain, CompressionPolicy::Adaptive] {
            let mut columnar =
                ColumnarTable::from_table_with_row_groups(&table, policy, 64).unwrap();
            let groups = columnar.row_groups().len();
            assert_eq!(groups, 4);
            for g in 0..groups {
                assert!(columnar.verify_group(g), "{policy:?} group {g} pristine");
            }
            // Past-the-end groups verify trivially rather than panicking.
            assert!(columnar.verify_group(groups));
            assert!(columnar.corrupt_group(2), "{policy:?}");
            assert!(
                !columnar.verify_group(2),
                "{policy:?} bit flip must fail verification"
            );
            for g in [0, 1, 3] {
                assert!(columnar.verify_group(g), "{policy:?} group {g} untouched");
            }
        }
    }

    #[test]
    fn group_checksums_are_value_determined() {
        // Plain and adaptive encodings store the same values, so their group
        // checksums must agree: the hash covers decoded values, not encodings.
        let table = source_table(200);
        let plain = ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap();
        let adaptive = ColumnarTable::from_table(&table, CompressionPolicy::Adaptive).unwrap();
        for (g, (p, a)) in plain
            .row_groups()
            .iter()
            .zip(adaptive.row_groups())
            .enumerate()
        {
            assert_eq!(p.checksum, a.checksum, "group {g}");
        }
    }

    #[test]
    fn adaptive_policy_rle_encodes_sorted_date_column() {
        let table = source_table(500);
        let plain = ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap();
        let adaptive = ColumnarTable::from_table(&table, CompressionPolicy::Adaptive).unwrap();
        let date_col = 1;
        assert!(
            adaptive.column_encoded_bytes(date_col) < plain.column_encoded_bytes(date_col) / 4,
            "RLE should shrink the sorted date column: {} vs {}",
            adaptive.column_encoded_bytes(date_col),
            plain.column_encoded_bytes(date_col)
        );
        // The sequential orderkey column is hostile to RLE but delta-encodes well:
        // per-128-row blocks span only 127, so offsets fit in 7 bits.
        assert!(
            adaptive.column_encoded_bytes(0) < plain.column_encoded_bytes(0) / 4,
            "delta should shrink the sequential key column: {} vs {}",
            adaptive.column_encoded_bytes(0),
            plain.column_encoded_bytes(0)
        );
        assert!(adaptive.compression_ratio() > plain.compression_ratio());
        // Whatever encoding won, values must round-trip.
        for i in [0usize, 127, 128, 499] {
            assert_eq!(adaptive.value(i, 0), plain.value(i, 0), "row {i}");
        }
    }

    #[test]
    fn encoded_column_views_agree_with_values() {
        let table = source_table(300);
        for policy in [CompressionPolicy::Plain, CompressionPolicy::Adaptive] {
            let columnar = ColumnarTable::from_table(&table, policy).unwrap();
            for c in 0..columnar.schema().arity() {
                match columnar.encoded_column(c) {
                    EncodedColumn::Int { data, nulls } => {
                        assert!(nulls.is_none());
                        for i in 0..columnar.len() {
                            assert_eq!(
                                Value::Int(data.get(i).unwrap()),
                                columnar.value(i, c).unwrap(),
                                "{policy:?} col {c} row {i}"
                            );
                        }
                        assert_eq!(data.get(columnar.len()), None);
                    }
                    EncodedColumn::Str { codes, nulls } => {
                        assert!(nulls.is_none());
                        for i in 0..columnar.len() {
                            assert_eq!(
                                Value::Str(codes.get(i).unwrap()),
                                columnar.value(i, c).unwrap(),
                                "{policy:?} col {c} row {i}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn row_groups_cover_table_with_correct_zone_maps() {
        let table = source_table(2500);
        let columnar =
            ColumnarTable::from_table_with_row_groups(&table, CompressionPolicy::Adaptive, 1000)
                .unwrap();
        assert_eq!(columnar.group_rows(), 1000);
        let groups = columnar.row_groups();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[2].start, 2000);
        assert_eq!(groups[2].len, 500);
        assert_eq!(columnar.group_of(999), 0);
        assert_eq!(columnar.group_of(1000), 1);
        for (g, group) in groups.iter().enumerate() {
            assert!(group.all_always_visible);
            assert_eq!(group.zones.len(), 4);
            // Orderkey is sequential, so group g spans exactly its row range.
            let ZoneMap::Int { min, max, has_null } = &group.zones[0] else {
                panic!("orderkey zone must be Int");
            };
            assert_eq!(*min, group.start as i64, "group {g}");
            assert_eq!(*max, (group.start + group.len - 1) as i64, "group {g}");
            assert!(!has_null);
            // Shipmode has 2 distinct values per group: an exact code set.
            let ZoneMap::Str { codes, has_null } = &group.zones[2] else {
                panic!("shipmode zone must be Str");
            };
            let exact = codes.exact().expect("2 distinct codes stays exact");
            assert_eq!(exact.len(), 2, "group {g}");
            assert!(!has_null);
            for code in exact {
                assert!(codes.may_contain(*code));
            }
            assert!(!codes.may_contain(99));
        }
    }

    #[test]
    fn zone_maps_exclude_nulls_and_flag_them() {
        let schema = Schema::new("t", vec![Column::int("a"), Column::str("s")]);
        let table = Table::new(schema);
        table
            .insert(vec![Value::int(10), Value::str("x")], SnapshotId::INITIAL)
            .unwrap();
        table
            .insert(vec![Value::Null, Value::Null], SnapshotId::INITIAL)
            .unwrap();
        table
            .insert(vec![Value::int(-5), Value::str("y")], SnapshotId::INITIAL)
            .unwrap();
        let columnar = ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap();
        let group = &columnar.row_groups()[0];
        assert_eq!(
            group.zones[0],
            ZoneMap::Int {
                min: -5,
                max: 10,
                has_null: true
            }
        );
        let ZoneMap::Str { codes, has_null } = &group.zones[1] else {
            panic!("string zone expected");
        };
        assert!(*has_null);
        // The "" sentinel interned for NULLs must not appear in the code set.
        let x_code = match columnar.encoded_column(1) {
            EncodedColumn::Str { codes, .. } => codes.code(0).unwrap(),
            _ => unreachable!(),
        };
        assert!(codes.may_contain(x_code));
        assert_eq!(codes.exact().unwrap().len(), 2);
    }

    #[test]
    fn bloom_zone_codes_degrade_without_false_negatives() {
        // 32 distinct values in one group: too many for an exact set.
        let schema = Schema::new("t", vec![Column::str("s")]);
        let table = Table::new(schema);
        let values: Vec<String> = (0..64).map(|i| format!("v{}", i % 32)).collect();
        table.insert_batch_unchecked(
            values.iter().map(|v| Row::new(vec![Value::str(v)])),
            SnapshotId::INITIAL,
        );
        let columnar = ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap();
        let ZoneMap::Str { codes, .. } = &columnar.row_groups()[0].zones[0] else {
            panic!("string zone expected");
        };
        assert!(codes.exact().is_none(), "32 codes must degrade to bloom");
        for code in 0..32u32 {
            assert!(codes.may_contain(code), "no false negatives: code {code}");
        }
    }

    #[test]
    fn deleted_rows_mark_group_not_always_visible() {
        let schema = Schema::new("t", vec![Column::int("a")]);
        let table = Table::new(schema);
        let id = table
            .insert(vec![Value::int(1)], SnapshotId::INITIAL)
            .unwrap();
        table
            .insert(vec![Value::int(2)], SnapshotId::INITIAL)
            .unwrap();
        table.delete(id, SnapshotId(3));
        let columnar = ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap();
        assert!(!columnar.row_groups()[0].all_always_visible);
    }

    #[test]
    fn scan_volume_tracks_skips_probes_and_columns() {
        let volume = ScanVolume::with_columns(2);
        volume.record_scan(10, 80);
        volume.record_column(0, 50);
        volume.record_column(1, 30);
        volume.record_column(7, 999); // out of range: ignored
        volume.record_group_skip(1024);
        volume.record_predicate(3, 1000);
        assert_eq!(volume.rows_scanned(), 10);
        assert_eq!(volume.bytes_scanned(), 80);
        assert_eq!(volume.column_bytes(), vec![50, 30]);
        assert_eq!(volume.row_groups_skipped(), 1);
        assert_eq!(volume.rows_predicate_skipped(), 1024);
        assert_eq!(volume.predicate_probes(), 3);
        assert_eq!(volume.predicate_rows(), 1000);
        volume.reset();
        assert_eq!(volume.column_bytes(), vec![0, 0]);
        assert_eq!(volume.row_groups_skipped(), 0);
        assert_eq!(volume.predicate_probes(), 0);
    }

    #[test]
    fn dictionary_encoding_shrinks_string_columns() {
        let table = source_table(1000);
        let columnar = ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap();
        let shipmode = 2;
        assert!(
            columnar.column_encoded_bytes(shipmode) < columnar.column_plain_bytes(shipmode) / 3,
            "2-value string column should compress well"
        );
    }

    #[test]
    fn nulls_roundtrip() {
        let schema = Schema::new("t", vec![Column::int("a"), Column::str("b")]);
        let table = Table::new(schema);
        table
            .insert(vec![Value::int(1), Value::str("x")], SnapshotId::INITIAL)
            .unwrap();
        table
            .insert(vec![Value::Null, Value::Null], SnapshotId::INITIAL)
            .unwrap();
        table
            .insert(vec![Value::int(3), Value::str("y")], SnapshotId::INITIAL)
            .unwrap();
        for policy in [CompressionPolicy::Plain, CompressionPolicy::Adaptive] {
            let columnar = ColumnarTable::from_table(&table, policy).unwrap();
            assert_eq!(columnar.value(1, 0).unwrap(), Value::Null);
            assert_eq!(columnar.value(1, 1).unwrap(), Value::Null);
            assert_eq!(columnar.value(2, 0).unwrap(), Value::int(3));
            assert_eq!(columnar.value(2, 1).unwrap(), Value::str("y"));
        }
    }

    #[test]
    fn project_row_nulls_out_unprojected_columns() {
        let table = source_table(10);
        let columnar = ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap();
        let projection = columnar
            .projection_of(&["lo_orderkey", "lo_revenue"])
            .unwrap();
        let row = columnar.project_row(3, &projection);
        assert_eq!(row.arity(), 4);
        assert_eq!(row.get(0), &Value::int(3));
        assert!(row.get(1).is_null());
        assert!(row.get(2).is_null());
        assert_eq!(row.get(3), &Value::int(21));
        assert!(columnar.projection_of(&["nope"]).is_err());
    }

    #[test]
    fn for_each_visible_projected_respects_snapshots() {
        let schema = Schema::new("t", vec![Column::int("a")]);
        let table = Table::new(schema);
        let early = table.insert(vec![Value::int(1)], SnapshotId(0)).unwrap();
        table.insert(vec![Value::int(2)], SnapshotId(5)).unwrap();
        table.delete(early, SnapshotId(3));
        let columnar = ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap();

        let collect = |snap: SnapshotId| {
            let mut seen = Vec::new();
            columnar.for_each_visible_projected(snap, &[0], |_, row| seen.push(row.int(0)));
            seen
        };
        assert_eq!(collect(SnapshotId(0)), vec![1]);
        assert_eq!(collect(SnapshotId(4)), Vec::<i64>::new());
        assert_eq!(collect(SnapshotId(5)), vec![2]);
    }

    #[test]
    fn continuous_scan_wraps_like_row_scan() {
        let table = source_table(25);
        let columnar =
            Arc::new(ColumnarTable::from_table(&table, CompressionPolicy::Adaptive).unwrap());
        let mut scan = ColumnarContinuousScan::new(Arc::clone(&columnar)).with_batch_rows(10);
        let mut batch = ScanBatch::default();

        scan.next_batch(&mut batch);
        assert!(batch.wrapped);
        assert_eq!(batch.len(), 10);
        assert_eq!(batch.rows[0].0, RowId(0));
        scan.next_batch(&mut batch);
        assert!(!batch.wrapped);
        scan.next_batch(&mut batch);
        assert_eq!(batch.len(), 5);
        assert_eq!(scan.passes(), 0);
        scan.next_batch(&mut batch);
        assert!(batch.wrapped);
        assert_eq!(scan.passes(), 1);
        assert_eq!(scan.position(), 10);
    }

    #[test]
    fn projected_scan_reduces_bytes_touched() {
        let table = source_table(2000);
        let columnar =
            Arc::new(ColumnarTable::from_table(&table, CompressionPolicy::Adaptive).unwrap());

        let full_volume = Arc::new(ScanVolume::new());
        let mut full = ColumnarContinuousScan::new(Arc::clone(&columnar))
            .with_batch_rows(512)
            .with_volume(Arc::clone(&full_volume));

        let projection = columnar
            .projection_of(&["lo_orderdate", "lo_revenue"])
            .unwrap();
        let narrow_volume = Arc::new(ScanVolume::new());
        let mut narrow = ColumnarContinuousScan::with_projection(Arc::clone(&columnar), projection)
            .with_batch_rows(512)
            .with_volume(Arc::clone(&narrow_volume));

        let mut batch = ScanBatch::default();
        // One full pass each.
        let mut rows = 0;
        while rows < 2000 {
            full.next_batch(&mut batch);
            rows += batch.len();
        }
        rows = 0;
        while rows < 2000 {
            narrow.next_batch(&mut batch);
            rows += batch.len();
        }

        assert_eq!(full_volume.rows_scanned(), 2000);
        assert_eq!(narrow_volume.rows_scanned(), 2000);
        assert!(
            narrow_volume.bytes_scanned() < full_volume.bytes_scanned() / 2,
            "projection should cut scan volume: {} vs {}",
            narrow_volume.bytes_scanned(),
            full_volume.bytes_scanned()
        );
        assert!(narrow.bytes_per_row() < full.bytes_per_row());

        narrow_volume.reset();
        assert_eq!(narrow_volume.bytes_scanned(), 0);
        assert_eq!(narrow_volume.rows_scanned(), 0);
    }

    #[test]
    fn projected_rows_preserve_projected_values() {
        let table = source_table(100);
        let columnar =
            Arc::new(ColumnarTable::from_table(&table, CompressionPolicy::Adaptive).unwrap());
        let projection = columnar.projection_of(&["lo_shipmode"]).unwrap();
        let mut scan = ColumnarContinuousScan::with_projection(Arc::clone(&columnar), projection)
            .with_batch_rows(64);
        let mut batch = ScanBatch::default();
        let mut seen = 0;
        while seen < 100 {
            scan.next_batch(&mut batch);
            for (id, row, _) in &batch.rows {
                let expected = table.row(*id).unwrap();
                assert_eq!(row.get(2), expected.get(2));
                assert!(row.get(0).is_null());
                seen += 1;
            }
        }
    }

    #[test]
    fn empty_table_scan_reports_wrapped_empty_batches() {
        let schema = Schema::new("empty", vec![Column::int("a")]);
        let table = Table::new(schema);
        let columnar =
            Arc::new(ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap());
        assert!(columnar.is_empty());
        let mut scan = ColumnarContinuousScan::new(columnar);
        let mut batch = ScanBatch::default();
        scan.next_batch(&mut batch);
        assert!(batch.is_empty());
        assert!(batch.wrapped);
    }

    #[test]
    #[should_panic(expected = "batch_rows")]
    fn zero_batch_rows_panics() {
        let table = source_table(1);
        let columnar =
            Arc::new(ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap());
        let _ = ColumnarContinuousScan::new(columnar).with_batch_rows(0);
    }
}
