//! Columnar storage of a table, with optional per-column compression.
//!
//! §5 of the paper ("Column Stores") points out that CJOIN adapts naturally to a
//! columnar warehouse: the continuous fact-table scan becomes a continuous scan/merge
//! of *only those columns that the current query mix accesses*, which reduces the
//! volume of data the shared scan moves. This module provides that substrate:
//!
//! * [`ColumnarTable`] — a column-oriented, read-optimised copy of a [`Table`]
//!   snapshot. String columns are dictionary-encoded and integer columns are
//!   run-length encoded when beneficial (see [`CompressionPolicy`]).
//! * [`ColumnarContinuousScan`] — the circular scan over a columnar table. It has the
//!   same wrap-around semantics as [`crate::ContinuousScan`] (stable row order,
//!   batches never cross the wrap point) but materialises only a projected subset of
//!   the columns; the untouched columns are returned as NULL and their bytes are never
//!   read.
//! * [`ScanVolume`] — accounting of the bytes each scan actually touched, so the
//!   experiment harness can compare row-store and column-store scan volume.
//!
//! The columnar table is a *read-optimised replica*: it captures the rows visible in
//! the source table at build time (all versions, with their visibility metadata), the
//! way a column-store warehouse would maintain a read-optimised partition alongside a
//! write-optimised store.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cjoin_common::{Error, Result};

use crate::compress::{DictColumn, RleVec};
use crate::row::{Row, RowId};
use crate::scan::ScanBatch;
use crate::schema::{ColumnId, ColumnType, Schema};
use crate::snapshot::{RowVersion, SnapshotId};
use crate::table::Table;
use crate::value::Value;

/// How aggressively [`ColumnarTable::from_table`] compresses each column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompressionPolicy {
    /// Store integer columns as plain vectors and string columns dictionary-encoded
    /// (dictionary encoding is always a win for the `Arc<str>`-based row model).
    #[default]
    Plain,
    /// Additionally run-length encode integer columns when RLE actually shrinks them
    /// (fewer than half as many runs as rows).
    Adaptive,
}

/// One column of a [`ColumnarTable`].
#[derive(Debug, Clone)]
enum ColumnData {
    /// Plain integer column with an optional null bitmap (allocated only when the
    /// column actually contains NULLs).
    IntPlain {
        values: Vec<i64>,
        nulls: Option<Vec<bool>>,
    },
    /// Run-length encoded integer column (only used when the column has no NULLs).
    IntRle(RleVec),
    /// Dictionary-encoded string column with an optional null bitmap.
    Str {
        codes: DictColumn,
        nulls: Option<Vec<bool>>,
    },
}

fn is_null(nulls: &Option<Vec<bool>>, row: usize) -> bool {
    nulls
        .as_ref()
        .is_some_and(|n| n.get(row).copied().unwrap_or(false))
}

fn null_bitmap_bytes(nulls: &Option<Vec<bool>>) -> u64 {
    nulls.as_ref().map_or(0, |n| n.len() as u64 / 8)
}

impl ColumnData {
    fn value(&self, row: usize) -> Value {
        match self {
            ColumnData::IntPlain { values, nulls } => {
                if is_null(nulls, row) {
                    Value::Null
                } else {
                    Value::Int(values[row])
                }
            }
            ColumnData::IntRle(v) => v.get(row).map_or(Value::Null, Value::Int),
            ColumnData::Str { codes, nulls } => {
                if is_null(nulls, row) {
                    Value::Null
                } else {
                    codes.get(row).map_or(Value::Null, Value::Str)
                }
            }
        }
    }

    /// Approximate heap footprint of the encoded column.
    fn encoded_bytes(&self) -> u64 {
        match self {
            ColumnData::IntPlain { values, nulls } => {
                (values.len() * std::mem::size_of::<i64>()) as u64 + null_bitmap_bytes(nulls)
            }
            ColumnData::IntRle(v) => v.encoded_bytes(),
            ColumnData::Str { codes, nulls } => codes.encoded_bytes() + null_bitmap_bytes(nulls),
        }
    }

    /// Heap footprint of the same data in the row-store representation.
    fn plain_bytes(&self) -> u64 {
        match self {
            ColumnData::IntPlain { values, .. } => {
                (values.len() * std::mem::size_of::<i64>()) as u64
            }
            ColumnData::IntRle(v) => v.plain_bytes(),
            ColumnData::Str { codes, .. } => codes.plain_bytes(),
        }
    }
}

/// A read-optimised, column-oriented copy of a table.
#[derive(Debug)]
pub struct ColumnarTable {
    schema: Schema,
    columns: Vec<ColumnData>,
    versions: Vec<RowVersion>,
    policy: CompressionPolicy,
}

impl ColumnarTable {
    /// Builds a columnar replica of `table`, capturing every stored row version.
    ///
    /// # Errors
    /// Returns a type-mismatch error if a stored row does not match the schema (which
    /// indicates a corrupted source table).
    pub fn from_table(table: &Table, policy: CompressionPolicy) -> Result<Self> {
        let schema = table.schema().clone();
        let arity = schema.arity();
        let len = table.len();

        // Gather all rows once, in RowId order (the order every scan uses).
        let mut rows = Vec::with_capacity(len);
        let mut buffer = Vec::new();
        let mut position = 0u64;
        loop {
            buffer.clear();
            let read = table.read_range(position, 8192, &mut buffer);
            if read == 0 {
                break;
            }
            position += read as u64;
            rows.append(&mut buffer);
        }

        let versions: Vec<RowVersion> = rows.iter().map(|(_, _, v)| *v).collect();

        let mut columns = Vec::with_capacity(arity);
        for (col_idx, column) in schema.columns().iter().enumerate() {
            let data = match column.ty {
                ColumnType::Int => {
                    let mut values: Vec<i64> = Vec::with_capacity(len);
                    let mut nulls: Option<Vec<bool>> = None;
                    for (i, (_, row, _)) in rows.iter().enumerate() {
                        match row.get(col_idx) {
                            Value::Int(v) => values.push(*v),
                            Value::Null => {
                                nulls.get_or_insert_with(|| vec![false; len])[i] = true;
                                values.push(0);
                            }
                            other => {
                                return Err(Error::type_mismatch(format!(
                                    "column {} of table {}: expected Int, found {other:?}",
                                    column.name, schema.table
                                )))
                            }
                        }
                    }
                    if policy == CompressionPolicy::Adaptive && nulls.is_none() {
                        let rle = RleVec::from_slice(&values);
                        if rle.num_runs() * 2 < rle.len().max(1) {
                            ColumnData::IntRle(rle)
                        } else {
                            ColumnData::IntPlain { values, nulls }
                        }
                    } else {
                        ColumnData::IntPlain { values, nulls }
                    }
                }
                ColumnType::Str => {
                    let mut codes = DictColumn::new();
                    let mut nulls: Option<Vec<bool>> = None;
                    for (i, (_, row, _)) in rows.iter().enumerate() {
                        match row.get(col_idx) {
                            Value::Str(s) => codes.push(s),
                            Value::Null => {
                                nulls.get_or_insert_with(|| vec![false; len])[i] = true;
                                codes.push("");
                            }
                            other => {
                                return Err(Error::type_mismatch(format!(
                                    "column {} of table {}: expected Str, found {other:?}",
                                    column.name, schema.table
                                )))
                            }
                        }
                    }
                    ColumnData::Str { codes, nulls }
                }
            };
            columns.push(data);
        }

        Ok(Self {
            schema,
            columns,
            versions,
            policy,
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.schema.table
    }

    /// The compression policy the table was built with.
    pub fn policy(&self) -> CompressionPolicy {
        self.policy
    }

    /// Number of stored rows (all versions).
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Returns the value of `column` at `row`, or `None` when the row is out of range.
    ///
    /// # Panics
    /// Panics if `column` is out of range for the schema.
    pub fn value(&self, row: usize, column: ColumnId) -> Option<Value> {
        if row >= self.len() {
            return None;
        }
        Some(self.columns[column].value(row))
    }

    /// Materialises the full-width row at `row`, or `None` when out of range.
    pub fn row(&self, row: usize) -> Option<Row> {
        if row >= self.len() {
            return None;
        }
        Some(Row::new(
            (0..self.schema.arity())
                .map(|c| self.columns[c].value(row))
                .collect(),
        ))
    }

    /// Visibility metadata of the row at `row`.
    pub fn version(&self, row: usize) -> Option<RowVersion> {
        self.versions.get(row).copied()
    }

    /// Visits every row visible at `snapshot`, materialising only the projected
    /// columns (the rest read as NULL). Used by admission-time dimension loading when
    /// dimensions are stored columnar.
    pub fn for_each_visible_projected<F: FnMut(RowId, &Row)>(
        &self,
        snapshot: SnapshotId,
        projection: &[ColumnId],
        mut f: F,
    ) {
        for i in 0..self.len() {
            if self.versions[i].visible_at(snapshot) {
                let row = self.project_row(i, projection);
                f(RowId(i as u64), &row);
            }
        }
    }

    /// Materialises a row with only the projected columns populated; all other
    /// columns are NULL. Column positions are preserved so bound column indices keep
    /// working.
    pub fn project_row(&self, row: usize, projection: &[ColumnId]) -> Row {
        let mut values = vec![Value::Null; self.schema.arity()];
        for &c in projection {
            values[c] = self.columns[c].value(row);
        }
        Row::new(values)
    }

    /// Approximate encoded heap footprint of one column, in bytes.
    pub fn column_encoded_bytes(&self, column: ColumnId) -> u64 {
        self.columns[column].encoded_bytes()
    }

    /// Approximate heap footprint of one column in the row-store representation.
    pub fn column_plain_bytes(&self, column: ColumnId) -> u64 {
        self.columns[column].plain_bytes()
    }

    /// Total encoded footprint across all columns.
    pub fn total_encoded_bytes(&self) -> u64 {
        self.columns.iter().map(ColumnData::encoded_bytes).sum()
    }

    /// Total row-store footprint across all columns.
    pub fn total_plain_bytes(&self) -> u64 {
        self.columns.iter().map(ColumnData::plain_bytes).sum()
    }

    /// Overall compression ratio (`plain / encoded`); 1.0 for an empty table.
    pub fn compression_ratio(&self) -> f64 {
        let encoded = self.total_encoded_bytes();
        if encoded == 0 {
            return 1.0;
        }
        self.total_plain_bytes() as f64 / encoded as f64
    }

    /// Resolves column names into a projection list.
    ///
    /// # Errors
    /// Returns [`Error::UnknownColumn`] for any name not in the schema.
    pub fn projection_of(&self, columns: &[&str]) -> Result<Vec<ColumnId>> {
        columns
            .iter()
            .map(|name| self.schema.column_index(name))
            .collect()
    }
}

/// Byte-level accounting of what a columnar scan actually read.
#[derive(Debug, Default)]
pub struct ScanVolume {
    bytes_scanned: AtomicU64,
    rows_scanned: AtomicU64,
}

impl ScanVolume {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes of column data touched so far.
    pub fn bytes_scanned(&self) -> u64 {
        self.bytes_scanned.load(Ordering::Relaxed)
    }

    /// Rows produced so far.
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// Resets both counters.
    pub fn reset(&self) {
        self.bytes_scanned.store(0, Ordering::Relaxed);
        self.rows_scanned.store(0, Ordering::Relaxed);
    }

    fn record(&self, rows: u64, bytes: u64) {
        self.rows_scanned.fetch_add(rows, Ordering::Relaxed);
        self.bytes_scanned.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// The circular, projected scan over a [`ColumnarTable`].
///
/// Mirrors [`crate::ContinuousScan`]: rows come back in stable [`RowId`] order,
/// batches never cross the wrap point, and `wrapped` marks the start of a new pass.
/// Only the projected columns are materialised (and accounted in [`ScanVolume`]); all
/// other columns are NULL, which is exactly the §5 "scan/merge of only those fact
/// table columns that are accessed by the current query mix".
#[derive(Debug)]
pub struct ColumnarContinuousScan {
    table: Arc<ColumnarTable>,
    projection: Vec<ColumnId>,
    bytes_per_row: u64,
    position: u64,
    batch_rows: usize,
    passes: u64,
    volume: Option<Arc<ScanVolume>>,
}

impl ColumnarContinuousScan {
    /// Creates a scan that materialises every column.
    pub fn new(table: Arc<ColumnarTable>) -> Self {
        let all: Vec<ColumnId> = (0..table.schema().arity()).collect();
        Self::with_projection(table, all)
    }

    /// Creates a scan that materialises only `projection` (column indices).
    pub fn with_projection(table: Arc<ColumnarTable>, projection: Vec<ColumnId>) -> Self {
        let len = table.len().max(1) as u64;
        let bytes_per_row = projection
            .iter()
            .map(|&c| table.column_encoded_bytes(c).div_ceil(len))
            .sum();
        Self {
            table,
            projection,
            bytes_per_row,
            position: 0,
            batch_rows: crate::scan::DEFAULT_SCAN_BATCH_ROWS,
            passes: 0,
            volume: None,
        }
    }

    /// Overrides the number of rows per batch.
    pub fn with_batch_rows(mut self, rows: usize) -> Self {
        assert!(rows > 0, "batch_rows must be positive");
        self.batch_rows = rows;
        self
    }

    /// Records scanned volume into `volume`.
    pub fn with_volume(mut self, volume: Arc<ScanVolume>) -> Self {
        self.volume = Some(volume);
        self
    }

    /// The projected column indices.
    pub fn projection(&self) -> &[ColumnId] {
        &self.projection
    }

    /// Average encoded bytes touched per produced row.
    pub fn bytes_per_row(&self) -> u64 {
        self.bytes_per_row
    }

    /// Number of completed passes over the table.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Current scan position (the row index the next batch starts at).
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Fills `batch` with the next run of rows; see [`crate::ContinuousScan::next_batch`].
    pub fn next_batch(&mut self, batch: &mut ScanBatch) {
        batch.clear();
        let len = self.table.len() as u64;
        if len == 0 {
            batch.wrapped = true;
            return;
        }
        if self.position >= len {
            self.position = 0;
            self.passes += 1;
        }
        batch.wrapped = self.position == 0;
        let remaining = (len - self.position) as usize;
        let to_read = remaining.min(self.batch_rows);
        let start = self.position as usize;
        for i in start..start + to_read {
            let row = self.table.project_row(i, &self.projection);
            let version = self.table.version(i).expect("row index in range");
            batch.rows.push((RowId(i as u64), row, version));
        }
        if let Some(volume) = &self.volume {
            volume.record(to_read as u64, to_read as u64 * self.bytes_per_row);
        }
        self.position += to_read as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn source_table(rows: i64) -> Table {
        let schema = Schema::new(
            "lineorder",
            vec![
                Column::int("lo_orderkey"),
                Column::int("lo_orderdate"),
                Column::str("lo_shipmode"),
                Column::int("lo_revenue"),
            ],
        );
        let table = Table::with_rows_per_page(schema, 16);
        table.insert_batch_unchecked(
            (0..rows).map(|i| {
                Row::new(vec![
                    Value::int(i),
                    Value::int(19940101 + i / 50), // long runs: loaded in date order
                    Value::str(if i % 3 == 0 { "AIR" } else { "TRUCK" }),
                    Value::int(i * 7 % 1000),
                ])
            }),
            SnapshotId::INITIAL,
        );
        table
    }

    #[test]
    fn columnar_roundtrip_matches_row_store() {
        let table = source_table(200);
        for policy in [CompressionPolicy::Plain, CompressionPolicy::Adaptive] {
            let columnar = ColumnarTable::from_table(&table, policy).unwrap();
            assert_eq!(columnar.len(), 200);
            assert_eq!(columnar.name(), "lineorder");
            assert_eq!(columnar.policy(), policy);
            for i in 0..200 {
                assert_eq!(
                    columnar.row(i).unwrap(),
                    table.row(RowId(i as u64)).unwrap(),
                    "row {i}, {policy:?}"
                );
            }
            assert!(columnar.row(200).is_none());
            assert!(columnar.value(200, 0).is_none());
        }
    }

    #[test]
    fn adaptive_policy_rle_encodes_sorted_date_column() {
        let table = source_table(500);
        let plain = ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap();
        let adaptive = ColumnarTable::from_table(&table, CompressionPolicy::Adaptive).unwrap();
        let date_col = 1;
        assert!(
            adaptive.column_encoded_bytes(date_col) < plain.column_encoded_bytes(date_col) / 4,
            "RLE should shrink the sorted date column: {} vs {}",
            adaptive.column_encoded_bytes(date_col),
            plain.column_encoded_bytes(date_col)
        );
        // The high-cardinality orderkey column must stay plain (RLE would double it).
        assert_eq!(
            adaptive.column_encoded_bytes(0),
            plain.column_encoded_bytes(0)
        );
        assert!(adaptive.compression_ratio() > plain.compression_ratio());
    }

    #[test]
    fn dictionary_encoding_shrinks_string_columns() {
        let table = source_table(1000);
        let columnar = ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap();
        let shipmode = 2;
        assert!(
            columnar.column_encoded_bytes(shipmode) < columnar.column_plain_bytes(shipmode) / 3,
            "2-value string column should compress well"
        );
    }

    #[test]
    fn nulls_roundtrip() {
        let schema = Schema::new("t", vec![Column::int("a"), Column::str("b")]);
        let table = Table::new(schema);
        table
            .insert(vec![Value::int(1), Value::str("x")], SnapshotId::INITIAL)
            .unwrap();
        table
            .insert(vec![Value::Null, Value::Null], SnapshotId::INITIAL)
            .unwrap();
        table
            .insert(vec![Value::int(3), Value::str("y")], SnapshotId::INITIAL)
            .unwrap();
        for policy in [CompressionPolicy::Plain, CompressionPolicy::Adaptive] {
            let columnar = ColumnarTable::from_table(&table, policy).unwrap();
            assert_eq!(columnar.value(1, 0).unwrap(), Value::Null);
            assert_eq!(columnar.value(1, 1).unwrap(), Value::Null);
            assert_eq!(columnar.value(2, 0).unwrap(), Value::int(3));
            assert_eq!(columnar.value(2, 1).unwrap(), Value::str("y"));
        }
    }

    #[test]
    fn project_row_nulls_out_unprojected_columns() {
        let table = source_table(10);
        let columnar = ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap();
        let projection = columnar
            .projection_of(&["lo_orderkey", "lo_revenue"])
            .unwrap();
        let row = columnar.project_row(3, &projection);
        assert_eq!(row.arity(), 4);
        assert_eq!(row.get(0), &Value::int(3));
        assert!(row.get(1).is_null());
        assert!(row.get(2).is_null());
        assert_eq!(row.get(3), &Value::int(21));
        assert!(columnar.projection_of(&["nope"]).is_err());
    }

    #[test]
    fn for_each_visible_projected_respects_snapshots() {
        let schema = Schema::new("t", vec![Column::int("a")]);
        let table = Table::new(schema);
        let early = table.insert(vec![Value::int(1)], SnapshotId(0)).unwrap();
        table.insert(vec![Value::int(2)], SnapshotId(5)).unwrap();
        table.delete(early, SnapshotId(3));
        let columnar = ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap();

        let collect = |snap: SnapshotId| {
            let mut seen = Vec::new();
            columnar.for_each_visible_projected(snap, &[0], |_, row| seen.push(row.int(0)));
            seen
        };
        assert_eq!(collect(SnapshotId(0)), vec![1]);
        assert_eq!(collect(SnapshotId(4)), Vec::<i64>::new());
        assert_eq!(collect(SnapshotId(5)), vec![2]);
    }

    #[test]
    fn continuous_scan_wraps_like_row_scan() {
        let table = source_table(25);
        let columnar =
            Arc::new(ColumnarTable::from_table(&table, CompressionPolicy::Adaptive).unwrap());
        let mut scan = ColumnarContinuousScan::new(Arc::clone(&columnar)).with_batch_rows(10);
        let mut batch = ScanBatch::default();

        scan.next_batch(&mut batch);
        assert!(batch.wrapped);
        assert_eq!(batch.len(), 10);
        assert_eq!(batch.rows[0].0, RowId(0));
        scan.next_batch(&mut batch);
        assert!(!batch.wrapped);
        scan.next_batch(&mut batch);
        assert_eq!(batch.len(), 5);
        assert_eq!(scan.passes(), 0);
        scan.next_batch(&mut batch);
        assert!(batch.wrapped);
        assert_eq!(scan.passes(), 1);
        assert_eq!(scan.position(), 10);
    }

    #[test]
    fn projected_scan_reduces_bytes_touched() {
        let table = source_table(2000);
        let columnar =
            Arc::new(ColumnarTable::from_table(&table, CompressionPolicy::Adaptive).unwrap());

        let full_volume = Arc::new(ScanVolume::new());
        let mut full = ColumnarContinuousScan::new(Arc::clone(&columnar))
            .with_batch_rows(512)
            .with_volume(Arc::clone(&full_volume));

        let projection = columnar
            .projection_of(&["lo_orderdate", "lo_revenue"])
            .unwrap();
        let narrow_volume = Arc::new(ScanVolume::new());
        let mut narrow = ColumnarContinuousScan::with_projection(Arc::clone(&columnar), projection)
            .with_batch_rows(512)
            .with_volume(Arc::clone(&narrow_volume));

        let mut batch = ScanBatch::default();
        // One full pass each.
        let mut rows = 0;
        while rows < 2000 {
            full.next_batch(&mut batch);
            rows += batch.len();
        }
        rows = 0;
        while rows < 2000 {
            narrow.next_batch(&mut batch);
            rows += batch.len();
        }

        assert_eq!(full_volume.rows_scanned(), 2000);
        assert_eq!(narrow_volume.rows_scanned(), 2000);
        assert!(
            narrow_volume.bytes_scanned() < full_volume.bytes_scanned() / 2,
            "projection should cut scan volume: {} vs {}",
            narrow_volume.bytes_scanned(),
            full_volume.bytes_scanned()
        );
        assert!(narrow.bytes_per_row() < full.bytes_per_row());

        narrow_volume.reset();
        assert_eq!(narrow_volume.bytes_scanned(), 0);
        assert_eq!(narrow_volume.rows_scanned(), 0);
    }

    #[test]
    fn projected_rows_preserve_projected_values() {
        let table = source_table(100);
        let columnar =
            Arc::new(ColumnarTable::from_table(&table, CompressionPolicy::Adaptive).unwrap());
        let projection = columnar.projection_of(&["lo_shipmode"]).unwrap();
        let mut scan = ColumnarContinuousScan::with_projection(Arc::clone(&columnar), projection)
            .with_batch_rows(64);
        let mut batch = ScanBatch::default();
        let mut seen = 0;
        while seen < 100 {
            scan.next_batch(&mut batch);
            for (id, row, _) in &batch.rows {
                let expected = table.row(*id).unwrap();
                assert_eq!(row.get(2), expected.get(2));
                assert!(row.get(0).is_null());
                seen += 1;
            }
        }
    }

    #[test]
    fn empty_table_scan_reports_wrapped_empty_batches() {
        let schema = Schema::new("empty", vec![Column::int("a")]);
        let table = Table::new(schema);
        let columnar =
            Arc::new(ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap());
        assert!(columnar.is_empty());
        let mut scan = ColumnarContinuousScan::new(columnar);
        let mut batch = ScanBatch::default();
        scan.next_batch(&mut batch);
        assert!(batch.is_empty());
        assert!(batch.wrapped);
    }

    #[test]
    #[should_panic(expected = "batch_rows")]
    fn zero_batch_rows_panics() {
        let table = source_table(1);
        let columnar =
            Arc::new(ColumnarTable::from_table(&table, CompressionPolicy::Plain).unwrap());
        let _ = ColumnarContinuousScan::new(columnar).with_batch_rows(0);
    }
}
