//! Row-store storage substrate for the CJOIN reproduction.
//!
//! The paper evaluates CJOIN on top of PostgreSQL: the fact table is scanned with an
//! "always-on" continuous scan and dimension tables are small enough to be cached in
//! memory. This crate provides the equivalent substrate:
//!
//! * [`Table`] — an in-memory, paged row store with per-row multi-version visibility
//!   (`xmin`/`xmax`), standing in for the PostgreSQL heap.
//! * [`ContinuousScan`] — the circular fact-table scan that drives the CJOIN pipeline:
//!   it returns tuples in a stable order and wraps around indefinitely (§3.1, §3.3.3).
//! * [`IoModel`] / [`IoStats`] — an accounting-only model of disk behaviour
//!   (sequential vs. random page costs). The paper's experiments run against a 100 GB
//!   table on spinning disks; we run in memory and *account* for the I/O that each
//!   access pattern would have generated, so the experiment harness can report
//!   modelled scan times alongside measured CPU times (see the `io` module docs).
//! * [`PartitionScheme`] — range partitioning of the fact table, used by the §5
//!   "Fact Table Partitioning" extension (queries scan only the partitions they need).
//! * [`SnapshotManager`] — snapshot-isolation bookkeeping for the §3.5 mixed
//!   query/update workloads.
//! * [`Catalog`] — a named collection of tables shared by the engines.
//! * [`ColumnarTable`] / [`ColumnarContinuousScan`] — the §5 "Column Stores" and
//!   "Compressed Tables" extensions: a read-optimised columnar replica with
//!   dictionary/RLE compression and a projected continuous scan that only touches the
//!   columns the current query mix accesses.
//! * [`WarehouseLog`] — the write-ahead log behind the durable ingestion path:
//!   checksummed, epoch-stamped records with group commit, torn-tail-tolerant
//!   replay, and the snapshot commit protocol that makes each ingestion batch
//!   visible atomically.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod columnar;
pub mod compress;
pub mod io;
pub mod partition;
pub mod row;
pub mod scan;
pub mod schema;
pub mod snapshot;
pub mod table;
pub mod value;
pub mod wal;

pub use catalog::Catalog;
pub use columnar::{
    ColumnarContinuousScan, ColumnarTable, CompressionPolicy, EncodedColumn, IntEncoding, RowGroup,
    ScanVolume, ZoneCodes, ZoneMap, DEFAULT_ROW_GROUP_ROWS,
};
pub use compress::{BitPackedVec, DeltaVec, DictColumn, Dictionary, RleVec, RunCursor};
pub use io::{AccessKind, IoModel, IoStats};
pub use partition::{PartitionId, PartitionScheme};
pub use row::{Row, RowId};
pub use scan::{segment_ranges, ContinuousScan, ScanBatch, TableScan};
pub use schema::{Column, ColumnId, ColumnType, Schema};
pub use snapshot::{RowVersion, SnapshotId, SnapshotManager};
pub use table::Table;
pub use value::Value;
pub use wal::{apply_record, ReplayReport, SyncPolicy, WalDefect, WalRecord, WarehouseLog};
