//! Rows and row identifiers.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// Physical row identifier: the position of the row in its table's insertion order.
///
/// The continuous scan returns rows in `RowId` order and wraps around, which is the
/// property CJOIN's query start/end bookkeeping relies on (§3.3.3: "the continuous
/// scan returns fact tuples in the same order once resumed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

impl RowId {
    /// Returns the row position as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An immutable tuple of values.
///
/// Rows are cheap to clone (`Arc<[Value]>`), which matters because dimension rows are
/// copied into CJOIN's dimension hash tables and attached to in-flight fact tuples.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Row {
    values: Arc<[Value]>,
}

impl Row {
    /// Creates a row from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Self {
            values: values.into(),
        }
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Returns the value at column `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Returns the value at column `idx`, or `None` if out of range.
    #[inline]
    pub fn try_get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Returns the integer at column `idx`; panics if the column is not an integer.
    ///
    /// Used on hot paths (foreign-key extraction) where the schema guarantees the type.
    #[inline]
    pub fn int(&self, idx: usize) -> i64 {
        self.values[idx].expect_int()
    }

    /// All values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.values.iter()).finish()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_accessors() {
        let r = Row::new(vec![Value::int(7), Value::str("EUROPE")]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.get(0), &Value::int(7));
        assert_eq!(r.int(0), 7);
        assert_eq!(r.try_get(1).unwrap().as_str().unwrap(), "EUROPE");
        assert!(r.try_get(2).is_none());
        assert_eq!(r.values().len(), 2);
    }

    #[test]
    #[should_panic]
    fn get_out_of_range_panics() {
        let r = Row::new(vec![Value::int(1)]);
        let _ = r.get(3);
    }

    #[test]
    fn clone_shares_storage() {
        let r = Row::new(vec![Value::int(1), Value::int(2)]);
        let r2 = r.clone();
        assert!(Arc::ptr_eq(&r.values, &r2.values));
        assert_eq!(r, r2);
    }

    #[test]
    fn row_id_ordering_and_display() {
        assert!(RowId(1) < RowId(2));
        assert_eq!(RowId(5).index(), 5);
        assert_eq!(RowId(5).to_string(), "#5");
    }

    #[test]
    fn from_vec() {
        let r: Row = vec![Value::int(1)].into();
        assert_eq!(r.arity(), 1);
    }
}
