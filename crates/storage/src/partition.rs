//! Range partitioning of the fact table.
//!
//! §5 ("Fact Table Partitioning") describes how CJOIN exploits a fact table that is
//! range-partitioned — typically by the date column used to load new data: a query
//! whose fact predicate restricts the partitioning column only needs to scan the
//! partitions that overlap its range, and the Preprocessor can emit its end-of-query
//! control tuple as soon as its partitions have been covered, letting the query
//! terminate early.
//!
//! [`PartitionScheme`] captures the partitioning metadata: the partitioning column
//! and the ordered list of boundary values.

use serde::{Deserialize, Serialize};

use cjoin_common::{Error, Result};

use crate::schema::ColumnId;

/// Identifier of a partition (0-based, ordered by range).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PartitionId(pub u32);

impl PartitionId {
    /// Returns the partition number as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Range partitioning over an integer column.
///
/// Partition `i` covers values in `[lower_i, upper_i)` where the bounds come from the
/// boundary list; the first partition is open below and the last open above, so every
/// value maps to exactly one partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionScheme {
    /// Column the fact table is partitioned on (e.g. `lo_orderdate`).
    pub column: ColumnId,
    /// Interior boundaries, strictly increasing. `boundaries.len() + 1` partitions.
    boundaries: Vec<i64>,
}

impl PartitionScheme {
    /// Creates a scheme from explicit interior boundaries.
    ///
    /// # Errors
    /// Returns an error if the boundaries are not strictly increasing.
    pub fn new(column: ColumnId, boundaries: Vec<i64>) -> Result<Self> {
        if boundaries.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::invalid_config(
                "partition boundaries must be strictly increasing",
            ));
        }
        Ok(Self { column, boundaries })
    }

    /// Creates a scheme that splits `[min, max]` into `partitions` equal-width ranges.
    ///
    /// # Errors
    /// Returns an error if `partitions == 0` or `min >= max`.
    pub fn equal_width(column: ColumnId, min: i64, max: i64, partitions: u32) -> Result<Self> {
        if partitions == 0 {
            return Err(Error::invalid_config("partitions must be positive"));
        }
        if min >= max {
            return Err(Error::invalid_config("partition range must be non-empty"));
        }
        let width = (max - min) as f64 / f64::from(partitions);
        let mut boundaries = Vec::with_capacity(partitions as usize - 1);
        for i in 1..partitions {
            let b = min + (width * f64::from(i)).round() as i64;
            if boundaries.last().is_some_and(|&last| last >= b) {
                continue; // degenerate width; skip duplicate boundary
            }
            boundaries.push(b);
        }
        Self::new(column, boundaries)
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Interior boundaries.
    pub fn boundaries(&self) -> &[i64] {
        &self.boundaries
    }

    /// Maps a value of the partitioning column to its partition.
    pub fn partition_of(&self, value: i64) -> PartitionId {
        // partition_point returns the count of boundaries <= value, i.e. the number of
        // range starts at or before the value.
        let idx = self.boundaries.partition_point(|&b| b <= value);
        PartitionId(idx as u32)
    }

    /// Returns the partitions that may contain values in `[min, max]` (inclusive).
    ///
    /// Returns an empty vector for an empty range (`min > max`).
    pub fn covering(&self, min: i64, max: i64) -> Vec<PartitionId> {
        if min > max {
            return Vec::new();
        }
        let lo = self.partition_of(min).0;
        let hi = self.partition_of(max).0;
        (lo..=hi).map(PartitionId).collect()
    }

    /// Returns every partition id.
    pub fn all(&self) -> Vec<PartitionId> {
        (0..self.num_partitions() as u32).map(PartitionId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_of_respects_boundaries() {
        // 3 partitions: (-inf, 10), [10, 20), [20, +inf)
        let p = PartitionScheme::new(0, vec![10, 20]).unwrap();
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.partition_of(-5), PartitionId(0));
        assert_eq!(p.partition_of(9), PartitionId(0));
        assert_eq!(p.partition_of(10), PartitionId(1));
        assert_eq!(p.partition_of(19), PartitionId(1));
        assert_eq!(p.partition_of(20), PartitionId(2));
        assert_eq!(p.partition_of(1000), PartitionId(2));
    }

    #[test]
    fn covering_returns_overlapping_partitions() {
        let p = PartitionScheme::new(0, vec![10, 20, 30]).unwrap();
        assert_eq!(p.covering(12, 18), vec![PartitionId(1)]);
        assert_eq!(
            p.covering(5, 25),
            vec![PartitionId(0), PartitionId(1), PartitionId(2)]
        );
        assert_eq!(p.covering(30, 99), vec![PartitionId(3)]);
        assert_eq!(p.covering(50, 40), Vec::<PartitionId>::new());
        assert_eq!(p.all().len(), 4);
    }

    #[test]
    fn boundaries_must_increase() {
        assert!(PartitionScheme::new(0, vec![10, 10]).is_err());
        assert!(PartitionScheme::new(0, vec![20, 10]).is_err());
        assert!(PartitionScheme::new(0, vec![]).is_ok());
    }

    #[test]
    fn equal_width_covers_range() {
        // SSB order dates: 1992-01-01 .. 1998-08-02 as yyyymmdd integers, 7 partitions
        // (one per year).
        let p = PartitionScheme::equal_width(5, 19920101, 19980802, 7).unwrap();
        assert_eq!(p.num_partitions(), 7);
        // Every date maps to some partition and partition ids are monotone in value.
        let mut prev = p.partition_of(19920101);
        for date in [19930101, 19940601, 19951231, 19970704, 19980802] {
            let cur = p.partition_of(date);
            assert!(cur >= prev);
            prev = cur;
        }
    }

    #[test]
    fn equal_width_rejects_bad_input() {
        assert!(PartitionScheme::equal_width(0, 0, 100, 0).is_err());
        assert!(PartitionScheme::equal_width(0, 100, 100, 4).is_err());
        assert!(PartitionScheme::equal_width(0, 200, 100, 4).is_err());
    }

    #[test]
    fn single_partition_scheme() {
        let p = PartitionScheme::equal_width(0, 0, 10, 1).unwrap();
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.partition_of(-100), PartitionId(0));
        assert_eq!(p.partition_of(100), PartitionId(0));
    }

    #[test]
    fn partition_id_index() {
        assert_eq!(PartitionId(3).index(), 3);
    }
}
