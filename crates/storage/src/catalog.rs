//! Named collection of tables.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use cjoin_common::{Error, Result};

use crate::partition::PartitionScheme;
use crate::snapshot::SnapshotManager;
use crate::table::Table;

/// The warehouse catalog: the fact table, its dimension tables, and the snapshot
/// manager they share.
///
/// Both engines (CJOIN and the query-at-a-time baseline) operate over the same
/// catalog, which is what makes their results directly comparable in the tests and
/// benchmarks.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
    fact_table: RwLock<Option<String>>,
    fact_partitioning: RwLock<Option<PartitionScheme>>,
    snapshots: Arc<SnapshotManager>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table under its schema name. Replaces any previous registration.
    pub fn add_table(&self, table: Arc<Table>) {
        self.tables.write().insert(table.name().to_string(), table);
    }

    /// Registers `table` and marks it as the fact table.
    pub fn add_fact_table(&self, table: Arc<Table>) {
        *self.fact_table.write() = Some(table.name().to_string());
        self.add_table(table);
    }

    /// Declares the fact table's range-partitioning scheme (optional; used by the §5
    /// partitioning extension).
    pub fn set_fact_partitioning(&self, scheme: PartitionScheme) {
        *self.fact_partitioning.write() = Some(scheme);
    }

    /// Returns the fact table's partitioning scheme, if declared.
    pub fn fact_partitioning(&self) -> Option<PartitionScheme> {
        self.fact_partitioning.read().clone()
    }

    /// Looks up a table by name.
    ///
    /// # Errors
    /// Returns [`Error::UnknownTable`] if not registered.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::UnknownTable {
                name: name.to_string(),
            })
    }

    /// Returns the designated fact table.
    ///
    /// # Errors
    /// Returns [`Error::InvalidState`] if no fact table was designated.
    pub fn fact_table(&self) -> Result<Arc<Table>> {
        let name = self
            .fact_table
            .read()
            .clone()
            .ok_or_else(|| Error::invalid_state("no fact table registered"))?;
        self.table(&name)
    }

    /// Name of the designated fact table, if any.
    pub fn fact_table_name(&self) -> Option<String> {
        self.fact_table.read().clone()
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Names of all registered dimension tables (everything except the fact table),
    /// sorted.
    pub fn dimension_names(&self) -> Vec<String> {
        let fact = self.fact_table.read().clone();
        self.tables
            .read()
            .keys()
            .filter(|n| Some(n.as_str()) != fact.as_deref())
            .cloned()
            .collect()
    }

    /// The shared snapshot manager.
    pub fn snapshots(&self) -> &Arc<SnapshotManager> {
        &self.snapshots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};

    fn table(name: &str) -> Arc<Table> {
        Arc::new(Table::new(Schema::new(name, vec![Column::int("k")])))
    }

    #[test]
    fn add_and_lookup_tables() {
        let c = Catalog::new();
        c.add_table(table("customer"));
        c.add_table(table("supplier"));
        assert!(c.table("customer").is_ok());
        assert!(matches!(c.table("nope"), Err(Error::UnknownTable { .. })));
        assert_eq!(c.table_names(), vec!["customer", "supplier"]);
    }

    #[test]
    fn fact_table_designation() {
        let c = Catalog::new();
        assert!(c.fact_table().is_err());
        c.add_table(table("customer"));
        c.add_fact_table(table("lineorder"));
        assert_eq!(c.fact_table().unwrap().name(), "lineorder");
        assert_eq!(c.fact_table_name().as_deref(), Some("lineorder"));
        assert_eq!(c.dimension_names(), vec!["customer"]);
    }

    #[test]
    fn partitioning_roundtrip() {
        let c = Catalog::new();
        assert!(c.fact_partitioning().is_none());
        let scheme = PartitionScheme::equal_width(5, 0, 100, 4).unwrap();
        c.set_fact_partitioning(scheme.clone());
        assert_eq!(c.fact_partitioning().unwrap(), scheme);
    }

    #[test]
    fn snapshot_manager_is_shared() {
        let c = Arc::new(Catalog::new());
        let s1 = c.snapshots().commit();
        assert_eq!(c.snapshots().current(), s1);
    }

    #[test]
    fn re_registering_replaces() {
        let c = Catalog::new();
        c.add_table(table("dim"));
        let t2 = table("dim");
        c.add_table(Arc::clone(&t2));
        assert!(Arc::ptr_eq(&c.table("dim").unwrap(), &t2));
        assert_eq!(c.table_names().len(), 1);
    }
}
