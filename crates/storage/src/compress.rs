//! Lightweight column compression: dictionary encoding and run-length encoding.
//!
//! §5 of the paper ("Compressed Tables") observes that data warehouses compress
//! tables to reduce the I/O and memory bandwidth spent moving tuples, and that CJOIN
//! is agnostic to the physical representation as long as predicates can be evaluated
//! and fields extracted. This module provides the two encodings the columnar store
//! ([`crate::columnar`]) uses:
//!
//! * [`Dictionary`] / [`DictColumn`] — dictionary encoding for string columns. Star
//!   schema dimension attributes (regions, nations, brands, …) and even many fact
//!   columns have tiny domains, so storing a `u32` code per row plus one copy of each
//!   distinct string is a large win.
//! * [`RleVec`] — run-length encoding for integer columns. Fact tables loaded in date
//!   order have long runs of identical values in the date/partition columns. A scan
//!   kernel iterates the runs directly through [`RunCursor`], paying one predicate
//!   probe per run instead of one per row.
//! * [`BitPackedVec`] — frame-of-reference bit packing for integer columns with a
//!   narrow value range (e.g. `lo_quantity`, `lo_discount`): values are stored as
//!   fixed-width offsets from the column minimum.
//! * [`DeltaVec`] — block-wise delta encoding for smoothly growing columns (e.g. a
//!   sequential order key): each block stores its minimum as a base plus bit-packed
//!   per-row offsets, so sequential keys cost ~`log2(block)` bits per row.
//!
//! All encodings support random access by row position (`get`), which is what the
//! scan needs to materialise only the columns a query mix touches, and all report
//! their heap footprint so the experiment harness can quantify the saved scan volume.

use std::sync::Arc;

use cjoin_common::FxHashMap;

/// A run-length encoded vector of `i64` values.
///
/// Values are stored as `(value, run_length)` pairs plus a prefix-sum index of run
/// end positions, so `get` is a binary search over the runs (`O(log runs)`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RleVec {
    /// `(value, end_position_exclusive)` for each run, end positions strictly increasing.
    runs: Vec<(i64, u64)>,
    len: u64,
}

impl RleVec {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an [`RleVec`] from a slice of plain values.
    pub fn from_slice(values: &[i64]) -> Self {
        let mut rle = Self::new();
        for &v in values {
            rle.push(v);
        }
        rle
    }

    /// Appends a value, extending the last run when it matches.
    pub fn push(&mut self, value: i64) {
        self.len += 1;
        match self.runs.last_mut() {
            Some((last, end)) if *last == value => *end = self.len,
            _ => self.runs.push((value, self.len)),
        }
    }

    /// Number of logical values.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the vector holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs (the compressed length).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Returns the value at logical position `index`, or `None` when out of range.
    pub fn get(&self, index: usize) -> Option<i64> {
        let index = index as u64;
        if index >= self.len {
            return None;
        }
        // First run whose exclusive end is greater than `index`.
        let run = self.runs.partition_point(|&(_, end)| end <= index);
        Some(self.runs[run].0)
    }

    /// Iterates the logical values in order.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.runs
            .iter()
            .scan(0u64, |prev_end, &(value, end)| {
                let count = end - *prev_end;
                *prev_end = end;
                Some(std::iter::repeat_n(value, count as usize))
            })
            .flatten()
    }

    /// Decodes the whole vector back into plain values.
    pub fn decode(&self) -> Vec<i64> {
        self.iter().collect()
    }

    /// Approximate heap footprint in bytes of the encoded form.
    pub fn encoded_bytes(&self) -> u64 {
        (self.runs.len() * std::mem::size_of::<(i64, u64)>()) as u64
    }

    /// Heap footprint the same data would occupy as a plain `Vec<i64>`.
    pub fn plain_bytes(&self) -> u64 {
        self.len * std::mem::size_of::<i64>() as u64
    }

    /// Compression ratio (`plain / encoded`); 1.0 for an empty vector.
    pub fn compression_ratio(&self) -> f64 {
        if self.encoded_bytes() == 0 {
            return 1.0;
        }
        self.plain_bytes() as f64 / self.encoded_bytes() as f64
    }

    /// Returns run `r` as `(value, start, end)` with `start..end` the logical
    /// positions the run covers.
    pub fn run(&self, r: usize) -> Option<(i64, u64, u64)> {
        let &(value, end) = self.runs.get(r)?;
        let start = if r == 0 { 0 } else { self.runs[r - 1].1 };
        Some((value, start, end))
    }

    /// A sequential cursor over the runs, for scan kernels that evaluate a
    /// predicate once per run instead of once per row.
    pub fn runs(&self) -> RunCursor<'_> {
        RunCursor { rle: self, run: 0 }
    }
}

/// Sequential iterator over the runs of an [`RleVec`].
///
/// `next_run` yields `(value, start, end)` triples in position order; `seek`
/// repositions the cursor (binary search) so the next run yielded is the one
/// containing a given logical position — the shape a segmented scan needs to
/// resume mid-column.
#[derive(Debug, Clone)]
pub struct RunCursor<'a> {
    rle: &'a RleVec,
    run: usize,
}

impl<'a> RunCursor<'a> {
    /// Positions the cursor so the next `next_run` call returns the run
    /// containing logical `position` (or `None` if past the end).
    pub fn seek(&mut self, position: u64) {
        self.run = self.rle.runs.partition_point(|&(_, end)| end <= position);
    }

    /// Returns the next run as `(value, start, end)`, advancing the cursor.
    pub fn next_run(&mut self) -> Option<(i64, u64, u64)> {
        let run = self.rle.run(self.run)?;
        self.run += 1;
        Some(run)
    }
}

impl FromIterator<i64> for RleVec {
    fn from_iter<T: IntoIterator<Item = i64>>(iter: T) -> Self {
        let mut rle = RleVec::new();
        for v in iter {
            rle.push(v);
        }
        rle
    }
}

/// Writes `width` low bits of `value` at bit position `index * width` in `words`.
fn write_bits(words: &mut [u64], index: u64, width: u32, value: u64) {
    if width == 0 {
        return;
    }
    let bit = index * u64::from(width);
    let word = (bit / 64) as usize;
    let off = (bit % 64) as u32;
    words[word] |= value << off;
    if off + width > 64 {
        words[word + 1] |= value >> (64 - off);
    }
}

/// Reads `width` bits at bit position `index * width` from `words`.
fn read_bits(words: &[u64], index: u64, width: u32) -> u64 {
    if width == 0 {
        return 0;
    }
    let bit = index * u64::from(width);
    let word = (bit / 64) as usize;
    let off = (bit % 64) as u32;
    let mut v = words[word] >> off;
    if off + width > 64 {
        v |= words[word + 1] << (64 - off);
    }
    if width == 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

/// Bits needed to represent any offset in `0..=range`.
fn bits_for_range(range: u128) -> u32 {
    (128 - range.leading_zeros()).min(64)
}

/// Unsigned offset of `value` from `base` (`base <= value` is a precondition).
fn offset_from(base: i64, value: i64) -> u64 {
    (i128::from(value) - i128::from(base)) as u64
}

/// A frame-of-reference bit-packed vector of `i64` values.
///
/// Every value is stored as a fixed-width unsigned offset from the column
/// minimum, packed contiguously into `u64` words. Random access is `O(1)`:
/// one (occasionally two) word reads plus a shift/mask. This is the encoding
/// of choice for columns with a narrow value range regardless of ordering
/// (quantities, discounts, flags).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitPackedVec {
    base: i64,
    width: u32,
    len: u64,
    words: Vec<u64>,
}

impl BitPackedVec {
    /// Builds a [`BitPackedVec`] from a slice of plain values.
    pub fn from_slice(values: &[i64]) -> Self {
        let Some(&first) = values.first() else {
            return Self::default();
        };
        let (mut min, mut max) = (first, first);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        let width = bits_for_range(offset_from(min, max) as u128);
        let total_bits = values.len() as u64 * u64::from(width);
        let mut words = vec![0u64; total_bits.div_ceil(64) as usize];
        for (i, &v) in values.iter().enumerate() {
            write_bits(&mut words, i as u64, width, offset_from(min, v));
        }
        Self {
            base: min,
            width,
            len: values.len() as u64,
            words,
        }
    }

    /// Number of logical values.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the vector holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per stored value.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns the value at position `index`, or `None` when out of range.
    pub fn get(&self, index: usize) -> Option<i64> {
        if (index as u64) >= self.len {
            return None;
        }
        let raw = read_bits(&self.words, index as u64, self.width);
        Some((i128::from(self.base) + i128::from(raw)) as i64)
    }

    /// Decodes the whole vector back into plain values.
    pub fn decode(&self) -> Vec<i64> {
        (0..self.len()).map(|i| self.get(i).unwrap()).collect()
    }

    /// Approximate heap footprint in bytes of the encoded form.
    pub fn encoded_bytes(&self) -> u64 {
        (self.words.len() * std::mem::size_of::<u64>()) as u64 + std::mem::size_of::<Self>() as u64
    }

    /// Heap footprint the same data would occupy as a plain `Vec<i64>`.
    pub fn plain_bytes(&self) -> u64 {
        self.len * std::mem::size_of::<i64>() as u64
    }
}

/// Rows per [`DeltaVec`] block: each block stores one `i64` base (the block
/// minimum) plus bit-packed offsets at a vector-wide width.
pub const DELTA_BLOCK_ROWS: usize = 128;

/// A block-wise frame-of-reference ("delta") encoded vector of `i64` values.
///
/// The vector is split into blocks of [`DELTA_BLOCK_ROWS`] rows; each block
/// stores its minimum as a base, and every row stores a bit-packed offset from
/// its block's base at one vector-wide width (the largest any block needs).
/// Smoothly growing columns — sequential keys, timestamps — have tiny
/// per-block ranges even when the global range is huge, which is exactly the
/// case plain frame-of-reference ([`BitPackedVec`]) handles poorly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaVec {
    bases: Vec<i64>,
    width: u32,
    len: u64,
    words: Vec<u64>,
}

impl DeltaVec {
    /// Builds a [`DeltaVec`] from a slice of plain values.
    pub fn from_slice(values: &[i64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let mut bases = Vec::with_capacity(values.len().div_ceil(DELTA_BLOCK_ROWS));
        let mut max_range = 0u128;
        for block in values.chunks(DELTA_BLOCK_ROWS) {
            let (mut min, mut max) = (block[0], block[0]);
            for &v in block {
                min = min.min(v);
                max = max.max(v);
            }
            bases.push(min);
            max_range = max_range.max(offset_from(min, max) as u128);
        }
        let width = bits_for_range(max_range);
        let total_bits = values.len() as u64 * u64::from(width);
        let mut words = vec![0u64; total_bits.div_ceil(64) as usize];
        for (i, &v) in values.iter().enumerate() {
            let base = bases[i / DELTA_BLOCK_ROWS];
            write_bits(&mut words, i as u64, width, offset_from(base, v));
        }
        Self {
            bases,
            width,
            len: values.len() as u64,
            words,
        }
    }

    /// Number of logical values.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the vector holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per stored offset.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns the value at position `index`, or `None` when out of range.
    pub fn get(&self, index: usize) -> Option<i64> {
        if (index as u64) >= self.len {
            return None;
        }
        let base = self.bases[index / DELTA_BLOCK_ROWS];
        let raw = read_bits(&self.words, index as u64, self.width);
        Some((i128::from(base) + i128::from(raw)) as i64)
    }

    /// Decodes the whole vector back into plain values.
    pub fn decode(&self) -> Vec<i64> {
        (0..self.len()).map(|i| self.get(i).unwrap()).collect()
    }

    /// Approximate heap footprint in bytes of the encoded form.
    pub fn encoded_bytes(&self) -> u64 {
        ((self.words.len() + self.bases.len()) * std::mem::size_of::<u64>()) as u64
            + std::mem::size_of::<Self>() as u64
    }

    /// Heap footprint the same data would occupy as a plain `Vec<i64>`.
    pub fn plain_bytes(&self) -> u64 {
        self.len * std::mem::size_of::<i64>() as u64
    }
}

/// An append-only string dictionary mapping distinct strings to dense `u32` codes.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    by_code: Vec<Arc<str>>,
    by_value: FxHashMap<Arc<str>, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the code for `value`, interning it if it is new.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&code) = self.by_value.get(value) {
            return code;
        }
        let code = u32::try_from(self.by_code.len()).expect("dictionary exceeds u32 codes");
        let owned: Arc<str> = Arc::from(value);
        self.by_code.push(Arc::clone(&owned));
        self.by_value.insert(owned, code);
        code
    }

    /// Looks up an existing code without interning.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.by_value.get(value).copied()
    }

    /// Returns the string for `code`, or `None` if the code was never issued.
    pub fn value_of(&self, code: u32) -> Option<&Arc<str>> {
        self.by_code.get(code as usize)
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.by_code.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.by_code.is_empty()
    }

    /// Approximate heap footprint in bytes (string payloads plus the code table).
    pub fn encoded_bytes(&self) -> u64 {
        let strings: usize = self.by_code.iter().map(|s| s.len()).sum();
        (strings + self.by_code.len() * std::mem::size_of::<Arc<str>>()) as u64
    }
}

/// A dictionary-encoded string column: one `u32` code per row plus the dictionary.
#[derive(Debug, Clone, Default)]
pub struct DictColumn {
    codes: Vec<u32>,
    dictionary: Dictionary,
}

impl DictColumn {
    /// Creates an empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a dictionary column from an iterator of strings.
    pub fn from_values<'a, I: IntoIterator<Item = &'a str>>(values: I) -> Self {
        let mut col = Self::new();
        for v in values {
            col.push(v);
        }
        col
    }

    /// Appends a value.
    pub fn push(&mut self, value: &str) {
        let code = self.dictionary.intern(value);
        self.codes.push(code);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.dictionary.len()
    }

    /// Returns the string at row `index`, or `None` when out of range.
    ///
    /// The returned `Arc<str>` shares the dictionary's single copy of the string, so
    /// materialising a [`crate::Value`] from it does not allocate.
    pub fn get(&self, index: usize) -> Option<Arc<str>> {
        let code = *self.codes.get(index)?;
        self.dictionary.value_of(code).cloned()
    }

    /// Returns the code at row `index` (useful for predicate evaluation directly on
    /// codes, the partial-decompression trick BLINK uses).
    pub fn code(&self, index: usize) -> Option<u32> {
        self.codes.get(index).copied()
    }

    /// The underlying dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// Approximate heap footprint in bytes of the encoded form.
    pub fn encoded_bytes(&self) -> u64 {
        (self.codes.len() * std::mem::size_of::<u32>()) as u64 + self.dictionary.encoded_bytes()
    }

    /// Heap footprint the same data would occupy as one owned `String` per row.
    pub fn plain_bytes(&self) -> u64 {
        self.codes
            .iter()
            .map(|&c| {
                self.dictionary
                    .value_of(c)
                    .map_or(0, |s| s.len() + std::mem::size_of::<String>())
            })
            .sum::<usize>() as u64
    }

    /// Compression ratio (`plain / encoded`); 1.0 for an empty column.
    pub fn compression_ratio(&self) -> f64 {
        if self.encoded_bytes() == 0 {
            return 1.0;
        }
        self.plain_bytes() as f64 / self.encoded_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rle_roundtrip_simple() {
        let values = vec![1, 1, 1, 2, 2, 3, 3, 3, 3, 1];
        let rle = RleVec::from_slice(&values);
        assert_eq!(rle.len(), values.len());
        assert_eq!(rle.num_runs(), 4);
        assert_eq!(rle.decode(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(rle.get(i), Some(v));
        }
        assert_eq!(rle.get(values.len()), None);
    }

    #[test]
    fn rle_empty() {
        let rle = RleVec::new();
        assert!(rle.is_empty());
        assert_eq!(rle.len(), 0);
        assert_eq!(rle.num_runs(), 0);
        assert_eq!(rle.get(0), None);
        assert_eq!(rle.decode(), Vec::<i64>::new());
        assert_eq!(rle.compression_ratio(), 1.0);
    }

    #[test]
    fn rle_single_run_compresses_well() {
        let rle: RleVec = std::iter::repeat_n(42, 10_000).collect();
        assert_eq!(rle.num_runs(), 1);
        assert_eq!(rle.len(), 10_000);
        assert_eq!(rle.get(9_999), Some(42));
        assert!(rle.compression_ratio() > 1_000.0);
    }

    #[test]
    fn rle_incompressible_data_costs_double() {
        // Strictly alternating values: one run per value, each run is 16 bytes vs 8.
        let values: Vec<i64> = (0..100).map(|i| i % 2).collect();
        let rle = RleVec::from_slice(&values);
        assert_eq!(rle.num_runs(), 100);
        assert!(rle.compression_ratio() < 1.0);
        assert_eq!(rle.decode(), values);
    }

    #[test]
    fn rle_iter_matches_decode() {
        let values = vec![5, 5, -1, -1, -1, 0];
        let rle = RleVec::from_slice(&values);
        let collected: Vec<i64> = rle.iter().collect();
        assert_eq!(collected, values);
    }

    #[test]
    fn run_cursor_walks_runs_and_seeks_mid_run() {
        let values = vec![7, 7, 7, 2, 2, 9, 9, 9, 9, 4];
        let rle = RleVec::from_slice(&values);
        let mut cursor = rle.runs();
        assert_eq!(cursor.next_run(), Some((7, 0, 3)));
        assert_eq!(cursor.next_run(), Some((2, 3, 5)));
        assert_eq!(cursor.next_run(), Some((9, 5, 9)));
        assert_eq!(cursor.next_run(), Some((4, 9, 10)));
        assert_eq!(cursor.next_run(), None);
        // Seeking into the middle of a run yields that run in full.
        cursor.seek(6);
        assert_eq!(cursor.next_run(), Some((9, 5, 9)));
        cursor.seek(0);
        assert_eq!(cursor.next_run(), Some((7, 0, 3)));
        cursor.seek(10);
        assert_eq!(cursor.next_run(), None);
    }

    #[test]
    fn run_cursor_reconstructs_decode() {
        let mut rng = StdRng::seed_from_u64(0x2C57);
        for case in 0..64 {
            let values: Vec<i64> = (0..rng.gen_range(0..300usize))
                .map(|_| rng.gen_range(-4i64..4))
                .collect();
            let rle = RleVec::from_slice(&values);
            let mut rebuilt = Vec::new();
            let mut cursor = rle.runs();
            while let Some((value, start, end)) = cursor.next_run() {
                assert_eq!(start, rebuilt.len() as u64, "case {case}");
                rebuilt.extend(std::iter::repeat_n(value, (end - start) as usize));
            }
            assert_eq!(rebuilt, rle.decode(), "case {case}");
            assert_eq!(rebuilt, values, "case {case}");
        }
    }

    #[test]
    fn bit_packed_roundtrip_and_width() {
        let values: Vec<i64> = (0..1000).map(|i| 100 + i % 7).collect();
        let packed = BitPackedVec::from_slice(&values);
        assert_eq!(packed.len(), values.len());
        assert_eq!(packed.width(), 3); // range 0..=6 needs 3 bits
        assert_eq!(packed.decode(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(packed.get(i), Some(v), "index {i}");
        }
        assert_eq!(packed.get(values.len()), None);
        assert!(packed.encoded_bytes() < packed.plain_bytes() / 4);
    }

    #[test]
    fn bit_packed_handles_extremes_and_empty() {
        assert!(BitPackedVec::from_slice(&[]).is_empty());
        assert_eq!(BitPackedVec::from_slice(&[]).get(0), None);
        let constant = BitPackedVec::from_slice(&[5; 64]);
        assert_eq!(constant.width(), 0);
        assert_eq!(constant.decode(), vec![5; 64]);
        // Full i64 range forces width 64 and must still round-trip.
        let wide = BitPackedVec::from_slice(&[i64::MIN, 0, i64::MAX, -1, 1]);
        assert_eq!(wide.width(), 64);
        assert_eq!(wide.decode(), vec![i64::MIN, 0, i64::MAX, -1, 1]);
    }

    #[test]
    fn delta_roundtrip_on_sequential_keys() {
        let values: Vec<i64> = (0..5000).collect();
        let delta = DeltaVec::from_slice(&values);
        assert_eq!(delta.len(), values.len());
        // Each 128-row block spans 127, so offsets fit in 7 bits.
        assert_eq!(delta.width(), 7);
        assert_eq!(delta.decode(), values);
        for &i in &[0usize, 127, 128, 129, 4999] {
            assert_eq!(delta.get(i), Some(values[i]), "index {i}");
        }
        assert_eq!(delta.get(values.len()), None);
        assert!(delta.encoded_bytes() < delta.plain_bytes() / 4);
    }

    #[test]
    fn delta_handles_extremes_and_empty() {
        assert!(DeltaVec::from_slice(&[]).is_empty());
        let wide = DeltaVec::from_slice(&[i64::MIN, i64::MAX, 0, -7]);
        assert_eq!(wide.decode(), vec![i64::MIN, i64::MAX, 0, -7]);
    }

    #[test]
    fn prop_packed_and_delta_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0xB17);
        for case in 0..128 {
            let len = rng.gen_range(0..600usize);
            let base = rng.gen_range(-1_000_000i64..1_000_000);
            let spread = rng.gen_range(0i64..10_000);
            let values: Vec<i64> = (0..len)
                .map(|_| base + rng.gen_range(0..spread + 1))
                .collect();
            let packed = BitPackedVec::from_slice(&values);
            assert_eq!(packed.decode(), values, "packed case {case}");
            let delta = DeltaVec::from_slice(&values);
            assert_eq!(delta.decode(), values, "delta case {case}");
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(packed.get(i), Some(v), "packed case {case} index {i}");
                assert_eq!(delta.get(i), Some(v), "delta case {case} index {i}");
            }
        }
    }

    #[test]
    fn dictionary_interns_and_reuses_codes() {
        let mut dict = Dictionary::new();
        let a = dict.intern("ASIA");
        let b = dict.intern("EUROPE");
        let a2 = dict.intern("ASIA");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(dict.len(), 2);
        assert!(!dict.is_empty());
        assert_eq!(dict.value_of(a).unwrap().as_ref(), "ASIA");
        assert_eq!(dict.code_of("EUROPE"), Some(b));
        assert_eq!(dict.code_of("AFRICA"), None);
        assert_eq!(dict.value_of(99), None);
    }

    #[test]
    fn dict_column_roundtrip_and_cardinality() {
        let values = ["ASIA", "ASIA", "EUROPE", "AMERICA", "ASIA"];
        let col = DictColumn::from_values(values.iter().copied());
        assert_eq!(col.len(), 5);
        assert_eq!(col.cardinality(), 3);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(col.get(i).unwrap().as_ref(), *v);
        }
        assert_eq!(col.get(5), None);
        assert_eq!(col.code(0), col.code(1));
        assert_ne!(col.code(0), col.code(2));
        assert_eq!(col.code(9), None);
    }

    #[test]
    fn dict_column_low_cardinality_compresses_well() {
        let col =
            DictColumn::from_values(
                (0..10_000).map(|i| if i % 2 == 0 { "MFGR#1" } else { "MFGR#2" }),
            );
        assert_eq!(col.cardinality(), 2);
        assert!(
            col.compression_ratio() > 5.0,
            "ratio {}",
            col.compression_ratio()
        );
    }

    #[test]
    fn dict_column_empty() {
        let col = DictColumn::new();
        assert!(col.is_empty());
        assert_eq!(col.compression_ratio(), 1.0);
        assert_eq!(col.dictionary().len(), 0);
    }

    // Randomized round-trip properties over a fixed-seed RNG (deterministic runs;
    // the case index in the assertion message identifies a failing input).
    #[test]
    fn prop_rle_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x51E1);
        for case in 0..256 {
            let values: Vec<i64> = (0..rng.gen_range(0..400usize))
                .map(|_| rng.gen_range(-50i64..50))
                .collect();
            let rle = RleVec::from_slice(&values);
            assert_eq!(rle.decode(), values, "case {case}");
            assert_eq!(rle.len(), values.len(), "case {case}");
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(rle.get(i), Some(v), "case {case} index {i}");
            }
            assert!(rle.num_runs() <= values.len(), "case {case}");
        }
    }

    #[test]
    fn prop_dict_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0xD1C1);
        for case in 0..256 {
            // Short strings over the letters A–E, the low-cardinality shape
            // dictionary encoding is built for.
            let values: Vec<String> = (0..rng.gen_range(0..200usize))
                .map(|_| {
                    (0..rng.gen_range(1..=3usize))
                        .map(|_| (b'A' + rng.gen_range(0..5u8)) as char)
                        .collect()
                })
                .collect();
            let col = DictColumn::from_values(values.iter().map(String::as_str));
            assert_eq!(col.len(), values.len(), "case {case}");
            for (i, v) in values.iter().enumerate() {
                let got = col.get(i).unwrap();
                assert_eq!(got.as_ref(), v.as_str(), "case {case} index {i}");
            }
            let distinct: std::collections::BTreeSet<&str> =
                values.iter().map(String::as_str).collect();
            assert_eq!(col.cardinality(), distinct.len(), "case {case}");
        }
    }
}
