//! Lightweight column compression: dictionary encoding and run-length encoding.
//!
//! §5 of the paper ("Compressed Tables") observes that data warehouses compress
//! tables to reduce the I/O and memory bandwidth spent moving tuples, and that CJOIN
//! is agnostic to the physical representation as long as predicates can be evaluated
//! and fields extracted. This module provides the two encodings the columnar store
//! ([`crate::columnar`]) uses:
//!
//! * [`Dictionary`] / [`DictColumn`] — dictionary encoding for string columns. Star
//!   schema dimension attributes (regions, nations, brands, …) and even many fact
//!   columns have tiny domains, so storing a `u32` code per row plus one copy of each
//!   distinct string is a large win.
//! * [`RleVec`] — run-length encoding for integer columns. Fact tables loaded in date
//!   order have long runs of identical values in the date/partition columns.
//!
//! Both encodings support random access by row position (`get`), which is what the
//! scan needs to materialise only the columns a query mix touches, and both report
//! their heap footprint so the experiment harness can quantify the saved scan volume.

use std::sync::Arc;

use cjoin_common::FxHashMap;

/// A run-length encoded vector of `i64` values.
///
/// Values are stored as `(value, run_length)` pairs plus a prefix-sum index of run
/// end positions, so `get` is a binary search over the runs (`O(log runs)`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RleVec {
    /// `(value, end_position_exclusive)` for each run, end positions strictly increasing.
    runs: Vec<(i64, u64)>,
    len: u64,
}

impl RleVec {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an [`RleVec`] from a slice of plain values.
    pub fn from_slice(values: &[i64]) -> Self {
        let mut rle = Self::new();
        for &v in values {
            rle.push(v);
        }
        rle
    }

    /// Appends a value, extending the last run when it matches.
    pub fn push(&mut self, value: i64) {
        self.len += 1;
        match self.runs.last_mut() {
            Some((last, end)) if *last == value => *end = self.len,
            _ => self.runs.push((value, self.len)),
        }
    }

    /// Number of logical values.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the vector holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs (the compressed length).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Returns the value at logical position `index`, or `None` when out of range.
    pub fn get(&self, index: usize) -> Option<i64> {
        let index = index as u64;
        if index >= self.len {
            return None;
        }
        // First run whose exclusive end is greater than `index`.
        let run = self.runs.partition_point(|&(_, end)| end <= index);
        Some(self.runs[run].0)
    }

    /// Iterates the logical values in order.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.runs
            .iter()
            .scan(0u64, |prev_end, &(value, end)| {
                let count = end - *prev_end;
                *prev_end = end;
                Some(std::iter::repeat_n(value, count as usize))
            })
            .flatten()
    }

    /// Decodes the whole vector back into plain values.
    pub fn decode(&self) -> Vec<i64> {
        self.iter().collect()
    }

    /// Approximate heap footprint in bytes of the encoded form.
    pub fn encoded_bytes(&self) -> u64 {
        (self.runs.len() * std::mem::size_of::<(i64, u64)>()) as u64
    }

    /// Heap footprint the same data would occupy as a plain `Vec<i64>`.
    pub fn plain_bytes(&self) -> u64 {
        self.len * std::mem::size_of::<i64>() as u64
    }

    /// Compression ratio (`plain / encoded`); 1.0 for an empty vector.
    pub fn compression_ratio(&self) -> f64 {
        if self.encoded_bytes() == 0 {
            return 1.0;
        }
        self.plain_bytes() as f64 / self.encoded_bytes() as f64
    }
}

impl FromIterator<i64> for RleVec {
    fn from_iter<T: IntoIterator<Item = i64>>(iter: T) -> Self {
        let mut rle = RleVec::new();
        for v in iter {
            rle.push(v);
        }
        rle
    }
}

/// An append-only string dictionary mapping distinct strings to dense `u32` codes.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    by_code: Vec<Arc<str>>,
    by_value: FxHashMap<Arc<str>, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the code for `value`, interning it if it is new.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&code) = self.by_value.get(value) {
            return code;
        }
        let code = u32::try_from(self.by_code.len()).expect("dictionary exceeds u32 codes");
        let owned: Arc<str> = Arc::from(value);
        self.by_code.push(Arc::clone(&owned));
        self.by_value.insert(owned, code);
        code
    }

    /// Looks up an existing code without interning.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.by_value.get(value).copied()
    }

    /// Returns the string for `code`, or `None` if the code was never issued.
    pub fn value_of(&self, code: u32) -> Option<&Arc<str>> {
        self.by_code.get(code as usize)
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.by_code.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.by_code.is_empty()
    }

    /// Approximate heap footprint in bytes (string payloads plus the code table).
    pub fn encoded_bytes(&self) -> u64 {
        let strings: usize = self.by_code.iter().map(|s| s.len()).sum();
        (strings + self.by_code.len() * std::mem::size_of::<Arc<str>>()) as u64
    }
}

/// A dictionary-encoded string column: one `u32` code per row plus the dictionary.
#[derive(Debug, Clone, Default)]
pub struct DictColumn {
    codes: Vec<u32>,
    dictionary: Dictionary,
}

impl DictColumn {
    /// Creates an empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a dictionary column from an iterator of strings.
    pub fn from_values<'a, I: IntoIterator<Item = &'a str>>(values: I) -> Self {
        let mut col = Self::new();
        for v in values {
            col.push(v);
        }
        col
    }

    /// Appends a value.
    pub fn push(&mut self, value: &str) {
        let code = self.dictionary.intern(value);
        self.codes.push(code);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.dictionary.len()
    }

    /// Returns the string at row `index`, or `None` when out of range.
    ///
    /// The returned `Arc<str>` shares the dictionary's single copy of the string, so
    /// materialising a [`crate::Value`] from it does not allocate.
    pub fn get(&self, index: usize) -> Option<Arc<str>> {
        let code = *self.codes.get(index)?;
        self.dictionary.value_of(code).cloned()
    }

    /// Returns the code at row `index` (useful for predicate evaluation directly on
    /// codes, the partial-decompression trick BLINK uses).
    pub fn code(&self, index: usize) -> Option<u32> {
        self.codes.get(index).copied()
    }

    /// The underlying dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// Approximate heap footprint in bytes of the encoded form.
    pub fn encoded_bytes(&self) -> u64 {
        (self.codes.len() * std::mem::size_of::<u32>()) as u64 + self.dictionary.encoded_bytes()
    }

    /// Heap footprint the same data would occupy as one owned `String` per row.
    pub fn plain_bytes(&self) -> u64 {
        self.codes
            .iter()
            .map(|&c| {
                self.dictionary
                    .value_of(c)
                    .map_or(0, |s| s.len() + std::mem::size_of::<String>())
            })
            .sum::<usize>() as u64
    }

    /// Compression ratio (`plain / encoded`); 1.0 for an empty column.
    pub fn compression_ratio(&self) -> f64 {
        if self.encoded_bytes() == 0 {
            return 1.0;
        }
        self.plain_bytes() as f64 / self.encoded_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rle_roundtrip_simple() {
        let values = vec![1, 1, 1, 2, 2, 3, 3, 3, 3, 1];
        let rle = RleVec::from_slice(&values);
        assert_eq!(rle.len(), values.len());
        assert_eq!(rle.num_runs(), 4);
        assert_eq!(rle.decode(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(rle.get(i), Some(v));
        }
        assert_eq!(rle.get(values.len()), None);
    }

    #[test]
    fn rle_empty() {
        let rle = RleVec::new();
        assert!(rle.is_empty());
        assert_eq!(rle.len(), 0);
        assert_eq!(rle.num_runs(), 0);
        assert_eq!(rle.get(0), None);
        assert_eq!(rle.decode(), Vec::<i64>::new());
        assert_eq!(rle.compression_ratio(), 1.0);
    }

    #[test]
    fn rle_single_run_compresses_well() {
        let rle: RleVec = std::iter::repeat_n(42, 10_000).collect();
        assert_eq!(rle.num_runs(), 1);
        assert_eq!(rle.len(), 10_000);
        assert_eq!(rle.get(9_999), Some(42));
        assert!(rle.compression_ratio() > 1_000.0);
    }

    #[test]
    fn rle_incompressible_data_costs_double() {
        // Strictly alternating values: one run per value, each run is 16 bytes vs 8.
        let values: Vec<i64> = (0..100).map(|i| i % 2).collect();
        let rle = RleVec::from_slice(&values);
        assert_eq!(rle.num_runs(), 100);
        assert!(rle.compression_ratio() < 1.0);
        assert_eq!(rle.decode(), values);
    }

    #[test]
    fn rle_iter_matches_decode() {
        let values = vec![5, 5, -1, -1, -1, 0];
        let rle = RleVec::from_slice(&values);
        let collected: Vec<i64> = rle.iter().collect();
        assert_eq!(collected, values);
    }

    #[test]
    fn dictionary_interns_and_reuses_codes() {
        let mut dict = Dictionary::new();
        let a = dict.intern("ASIA");
        let b = dict.intern("EUROPE");
        let a2 = dict.intern("ASIA");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(dict.len(), 2);
        assert!(!dict.is_empty());
        assert_eq!(dict.value_of(a).unwrap().as_ref(), "ASIA");
        assert_eq!(dict.code_of("EUROPE"), Some(b));
        assert_eq!(dict.code_of("AFRICA"), None);
        assert_eq!(dict.value_of(99), None);
    }

    #[test]
    fn dict_column_roundtrip_and_cardinality() {
        let values = ["ASIA", "ASIA", "EUROPE", "AMERICA", "ASIA"];
        let col = DictColumn::from_values(values.iter().copied());
        assert_eq!(col.len(), 5);
        assert_eq!(col.cardinality(), 3);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(col.get(i).unwrap().as_ref(), *v);
        }
        assert_eq!(col.get(5), None);
        assert_eq!(col.code(0), col.code(1));
        assert_ne!(col.code(0), col.code(2));
        assert_eq!(col.code(9), None);
    }

    #[test]
    fn dict_column_low_cardinality_compresses_well() {
        let col =
            DictColumn::from_values(
                (0..10_000).map(|i| if i % 2 == 0 { "MFGR#1" } else { "MFGR#2" }),
            );
        assert_eq!(col.cardinality(), 2);
        assert!(
            col.compression_ratio() > 5.0,
            "ratio {}",
            col.compression_ratio()
        );
    }

    #[test]
    fn dict_column_empty() {
        let col = DictColumn::new();
        assert!(col.is_empty());
        assert_eq!(col.compression_ratio(), 1.0);
        assert_eq!(col.dictionary().len(), 0);
    }

    // Randomized round-trip properties over a fixed-seed RNG (deterministic runs;
    // the case index in the assertion message identifies a failing input).
    #[test]
    fn prop_rle_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x51E1);
        for case in 0..256 {
            let values: Vec<i64> = (0..rng.gen_range(0..400usize))
                .map(|_| rng.gen_range(-50i64..50))
                .collect();
            let rle = RleVec::from_slice(&values);
            assert_eq!(rle.decode(), values, "case {case}");
            assert_eq!(rle.len(), values.len(), "case {case}");
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(rle.get(i), Some(v), "case {case} index {i}");
            }
            assert!(rle.num_runs() <= values.len(), "case {case}");
        }
    }

    #[test]
    fn prop_dict_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0xD1C1);
        for case in 0..256 {
            // Short strings over the letters A–E, the low-cardinality shape
            // dictionary encoding is built for.
            let values: Vec<String> = (0..rng.gen_range(0..200usize))
                .map(|_| {
                    (0..rng.gen_range(1..=3usize))
                        .map(|_| (b'A' + rng.gen_range(0..5u8)) as char)
                        .collect()
                })
                .collect();
            let col = DictColumn::from_values(values.iter().map(String::as_str));
            assert_eq!(col.len(), values.len(), "case {case}");
            for (i, v) in values.iter().enumerate() {
                let got = col.get(i).unwrap();
                assert_eq!(got.as_ref(), v.as_str(), "case {case} index {i}");
            }
            let distinct: std::collections::BTreeSet<&str> =
                values.iter().map(String::as_str).collect();
            assert_eq!(col.cardinality(), distinct.len(), "case {case}");
        }
    }
}
