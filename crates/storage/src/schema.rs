//! Table schemas.

use serde::{Deserialize, Serialize};

use cjoin_common::{Error, Result};

use crate::value::Value;

/// Index of a column within a schema.
pub type ColumnId = usize;

/// Logical column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit integer (also used for keys and `yyyymmdd` dates).
    Int,
    /// UTF-8 string.
    Str,
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (lower-case, SSB style, e.g. `lo_orderdate`).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }

    /// Shorthand for an integer column.
    pub fn int(name: impl Into<String>) -> Self {
        Self::new(name, ColumnType::Int)
    }

    /// Shorthand for a string column.
    pub fn str(name: impl Into<String>) -> Self {
        Self::new(name, ColumnType::Str)
    }
}

/// An ordered list of columns describing a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Table name.
    pub table: String,
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema for `table` with the given columns.
    pub fn new(table: impl Into<String>, columns: Vec<Column>) -> Self {
        Self {
            table: table.into(),
            columns,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// All columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Returns the index of a column by name.
    ///
    /// # Errors
    /// Returns [`Error::UnknownColumn`] if no column has that name.
    pub fn column_index(&self, name: &str) -> Result<ColumnId> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::UnknownColumn {
                table: self.table.clone(),
                column: name.to_string(),
            })
    }

    /// Returns the column at `idx`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn column(&self, idx: ColumnId) -> &Column {
        &self.columns[idx]
    }

    /// Checks that a row of values matches the schema's arity and types
    /// (NULL is accepted for any type).
    ///
    /// # Errors
    /// Returns a type-mismatch error describing the first offending column.
    pub fn validate_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.arity() {
            return Err(Error::type_mismatch(format!(
                "table {}: expected {} values, got {}",
                self.table,
                self.arity(),
                values.len()
            )));
        }
        for (i, (v, c)) in values.iter().zip(&self.columns).enumerate() {
            let ok = matches!(
                (v, c.ty),
                (Value::Null, _)
                    | (Value::Int(_), ColumnType::Int)
                    | (Value::Str(_), ColumnType::Str)
            );
            if !ok {
                return Err(Error::type_mismatch(format!(
                    "table {}: column {} ({}) expects {:?}, got {:?}",
                    self.table, i, c.name, c.ty, v
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            "customer",
            vec![
                Column::int("c_custkey"),
                Column::str("c_name"),
                Column::str("c_region"),
            ],
        )
    }

    #[test]
    fn column_index_lookup() {
        let s = schema();
        assert_eq!(s.column_index("c_custkey").unwrap(), 0);
        assert_eq!(s.column_index("c_region").unwrap(), 2);
        assert!(matches!(
            s.column_index("c_missing"),
            Err(Error::UnknownColumn { .. })
        ));
    }

    #[test]
    fn arity_and_accessors() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column(1).name, "c_name");
        assert_eq!(s.columns().len(), 3);
        assert_eq!(s.table, "customer");
    }

    #[test]
    fn validate_row_accepts_matching_types_and_nulls() {
        let s = schema();
        s.validate_row(&[Value::int(1), Value::str("Customer#1"), Value::str("ASIA")])
            .unwrap();
        s.validate_row(&[Value::int(1), Value::Null, Value::Null])
            .unwrap();
    }

    #[test]
    fn validate_row_rejects_wrong_arity_and_type() {
        let s = schema();
        assert!(s.validate_row(&[Value::int(1)]).is_err());
        assert!(s
            .validate_row(&[Value::str("oops"), Value::str("x"), Value::str("y")])
            .is_err());
    }

    #[test]
    fn column_shorthands() {
        assert_eq!(Column::int("k").ty, ColumnType::Int);
        assert_eq!(Column::str("s").ty, ColumnType::Str);
    }
}
