//! Write-ahead log for durable near-real-time ingestion.
//!
//! The paper's setting (§2.1) is a warehouse under snapshot isolation whose fact
//! table receives a sustained append stream while dimension tables mutate slowly.
//! This module supplies the durability half of that contract: every ingestion
//! batch is logged as a sequence of *epoch-stamped* records closed by a commit
//! marker, and a batch becomes visible to queries only after its commit marker is
//! durable (see [`SnapshotManager`](crate::SnapshotManager) for the visibility
//! half — the committed-watermark publish that makes the batch atomic).
//!
//! # Log format
//!
//! The log is a flat file of length-prefixed, checksummed records:
//!
//! ```text
//! ┌──────────┬──────────────┬───────────────────────────────────────┐
//! │ len: u32 │ checksum: u64│ payload (len bytes)                   │
//! │  (LE)    │  (FxHash LE) │  epoch: u64 │ kind: u8 │ body…        │
//! └──────────┴──────────────┴───────────────────────────────────────┘
//! ```
//!
//! `checksum` is the [`FxHasher`] digest of the payload bytes. Record kinds are
//! fact appends, dimension upserts, dimension deletes and the per-epoch commit
//! marker ([`WalRecord`]). All integers are little-endian; values use a compact
//! tag encoding (0 = NULL, 1 = `i64`, 2 = UTF-8 string).
//!
//! # Sync policies and group commit
//!
//! [`SyncPolicy`] picks the durability/throughput trade-off. `EveryRecord`
//! writes and fsyncs each record as it is appended. `OnCommit` is the group
//! commit: records accumulate in a userland buffer and reach the file (and the
//! disk, via one fsync) only when the batch's commit marker is written — so a
//! crash mid-batch loses the whole batch cleanly, never a prefix mixed with
//! other batches' syncs. `Never` writes on commit but leaves syncing to the OS.
//!
//! # Recovery semantics
//!
//! [`WarehouseLog::replay`] scans the log sequentially, verifying each record's
//! length and checksum and buffering records per epoch. An epoch is applied
//! only when its commit marker is reached, so a committed-but-unsynced tail is
//! discarded wholesale — never partially applied. The first torn record
//! (truncated header or payload), checksum mismatch or undecodable payload
//! stops replay and **truncates the log at that offset** (the standard
//! ARIES-style torn-tail rule: everything after the first defect is
//! untrustworthy because record boundaries can no longer be established); the
//! typed [`ReplayReport`] records what was applied, what was discarded and why.
//!
//! # Concurrency argument
//!
//! A `WarehouseLog` is owned by exactly one writer at a time (the engine wraps
//! it in a mutex and serializes ingestion batches through it), so the in-memory
//! buffer, the file offset and the sync clock need no internal locking. Readers
//! never touch the live log: recovery runs strictly before the engine opens the
//! log for appending, and queries read table state, never the log. The only
//! cross-thread hand-off is therefore "replay happened-before append", which
//! the caller's program order provides. Fault-injection helpers
//! ([`WarehouseLog::truncate_to`], [`WarehouseLog::corrupt_byte`]) mutate the
//! file through the same single-writer handle.

use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use cjoin_common::{Error, FxHasher, Result};

use crate::catalog::Catalog;
use crate::row::Row;
use crate::snapshot::SnapshotId;
use crate::value::Value;

/// Fixed per-record header: `u32` length + `u64` checksum.
const HEADER_LEN: usize = 12;
/// Upper bound on one record's payload; longer length prefixes are treated as
/// corruption (a torn or bit-flipped length would otherwise ask replay to
/// buffer gigabytes).
const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

const KIND_FACT_APPEND: u8 = 1;
const KIND_DIM_UPSERT: u8 = 2;
const KIND_DIM_DELETE: u8 = 3;
const KIND_COMMIT: u8 = 4;

/// When the log forces its buffered bytes to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Write and fsync every record as it is appended: maximum durability,
    /// one disk round-trip per record.
    EveryRecord,
    /// Group commit (the default): records buffer in userland and are written
    /// and fsynced together when the batch's commit marker lands. One fsync
    /// per batch; a crash mid-batch loses the whole batch, never a prefix.
    OnCommit,
    /// Write on commit but never fsync: the OS decides when bytes reach disk.
    /// Fastest; a crash may lose recently committed batches (replay still
    /// recovers a clean prefix).
    Never,
}

/// One logical mutation in the log, stamped with the epoch of the batch that
/// carries it.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Rows appended to the fact table.
    FactAppend {
        /// The appended rows' column values.
        rows: Vec<Vec<Value>>,
    },
    /// A dimension row inserted or replaced by key.
    DimUpsert {
        /// Dimension table name.
        table: String,
        /// Column holding the dimension's key.
        key_column: usize,
        /// The new row (its `key_column` value identifies the row to replace).
        row: Vec<Value>,
    },
    /// A dimension row deleted by key.
    DimDelete {
        /// Dimension table name.
        table: String,
        /// Column holding the dimension's key.
        key_column: usize,
        /// Key of the row to delete.
        key: i64,
    },
    /// The epoch's commit marker: everything logged under the epoch becomes
    /// atomically visible once this record is durable.
    Commit,
}

/// Why replay stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalDefect {
    /// The file ends mid-header or mid-payload (a torn write).
    TornRecord,
    /// A record's checksum does not match its payload (bit rot / torn write
    /// landing inside the payload).
    ChecksumMismatch,
    /// The checksum matched but the payload does not decode (format bug or a
    /// collision-grade corruption).
    CorruptPayload,
}

impl std::fmt::Display for WalDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalDefect::TornRecord => write!(f, "torn record"),
            WalDefect::ChecksumMismatch => write!(f, "checksum mismatch"),
            WalDefect::CorruptPayload => write!(f, "corrupt payload"),
        }
    }
}

/// What [`WarehouseLog::replay`] did: how much state was rebuilt, what was
/// discarded, and whether (and why) the log was truncated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayReport {
    /// Mutation records applied (commit markers not counted).
    pub records_applied: u64,
    /// Number of epochs whose commit marker was reached.
    pub epochs_committed: u64,
    /// The largest committed epoch (`0` when nothing committed).
    pub last_epoch: u64,
    /// Records read successfully but discarded because their epoch's commit
    /// marker never appeared (the uncommitted tail).
    pub uncommitted_discarded: u64,
    /// Byte offset the log was truncated at, when a defect was found.
    pub truncated_at: Option<u64>,
    /// The defect that stopped replay, when one was found.
    pub defect: Option<WalDefect>,
}

/// The write-ahead log: an append-only file of checksummed, epoch-stamped
/// mutation records (see the module docs for format and recovery semantics).
#[derive(Debug)]
pub struct WarehouseLog {
    file: File,
    path: PathBuf,
    policy: SyncPolicy,
    /// Userland group-commit buffer (`OnCommit` / `Never` policies).
    pending: Vec<u8>,
    /// Logical log length: file bytes plus buffered bytes.
    len: u64,
    /// Nanoseconds spent in fsync so far.
    sync_ns: u64,
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> Error {
    Error::invalid_state(format!("wal {context} ({}): {e}", path.display()))
}

impl WarehouseLog {
    /// Opens (creating if absent) the log at `path` for appending.
    ///
    /// Run [`WarehouseLog::replay`] first: replay both rebuilds state and
    /// truncates any torn tail, so appends always start at a clean boundary.
    ///
    /// # Errors
    /// Fails if the file cannot be opened or its length read.
    pub fn open(path: impl AsRef<Path>, policy: SyncPolicy) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open", &path, e))?;
        let len = file
            .metadata()
            .map_err(|e| io_err("metadata", &path, e))?
            .len();
        Ok(Self {
            file,
            path,
            policy,
            pending: Vec::new(),
            len,
            sync_ns: 0,
        })
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Logical length of the log (durable bytes plus buffered bytes); after a
    /// successful [`WarehouseLog::commit`] this equals the file length.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total nanoseconds this log has spent waiting on fsync.
    pub fn sync_ns(&self) -> u64 {
        self.sync_ns
    }

    /// Appends one record under `epoch`, returning the logical log offset of
    /// the record's *end* (a record boundary — the crash-recovery oracle
    /// truncates copies of the log at these offsets).
    ///
    /// # Errors
    /// Fails if the bytes cannot be written (or, under
    /// [`SyncPolicy::EveryRecord`], synced).
    pub fn append(&mut self, epoch: SnapshotId, record: &WalRecord) -> Result<u64> {
        let mut payload = Vec::with_capacity(64);
        payload.extend_from_slice(&epoch.0.to_le_bytes());
        encode_record(record, &mut payload);
        let mut hasher = FxHasher::default();
        hasher.write(&payload);
        let checksum = hasher.finish();
        self.pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending.extend_from_slice(&checksum.to_le_bytes());
        self.pending.extend_from_slice(&payload);
        self.len += (HEADER_LEN + payload.len()) as u64;
        if self.policy == SyncPolicy::EveryRecord {
            self.write_out()?;
            self.sync()?;
        }
        Ok(self.len)
    }

    /// Writes the epoch's commit marker and makes the batch durable according
    /// to the sync policy. Returns the log offset after the marker.
    ///
    /// # Errors
    /// Fails if the marker cannot be written or synced.
    pub fn commit(&mut self, epoch: SnapshotId) -> Result<u64> {
        self.append(epoch, &WalRecord::Commit)?;
        self.write_out()?;
        if self.policy != SyncPolicy::Never {
            self.sync()?;
        }
        Ok(self.len)
    }

    /// Flushes the userland buffer into the file (no fsync).
    fn write_out(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file
            .seek(SeekFrom::End(0))
            .and_then(|_| self.file.write_all(&self.pending))
            .map_err(|e| io_err("write", &self.path, e))?;
        self.pending.clear();
        Ok(())
    }

    /// Forces written bytes to disk, accumulating the wait into
    /// [`WarehouseLog::sync_ns`].
    fn sync(&mut self) -> Result<()> {
        let started = Instant::now();
        self.file
            .sync_data()
            .map_err(|e| io_err("sync", &self.path, e))?;
        self.sync_ns += started.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// Fault-injection helper: flushes buffered bytes and truncates the file
    /// to `len` bytes, simulating a torn write that lost the tail.
    ///
    /// # Errors
    /// Fails if the file cannot be written or truncated.
    pub fn truncate_to(&mut self, len: u64) -> Result<()> {
        self.write_out()?;
        self.file
            .set_len(len)
            .map_err(|e| io_err("truncate", &self.path, e))?;
        self.len = len;
        Ok(())
    }

    /// Fault-injection helper: flushes buffered bytes and flips every bit of
    /// the byte at `offset`, simulating silent media corruption. The log keeps
    /// appending normally afterwards; the damage surfaces at replay as a
    /// checksum mismatch.
    ///
    /// # Errors
    /// Fails if the file cannot be read or written at `offset`.
    pub fn corrupt_byte(&mut self, offset: u64) -> Result<()> {
        self.write_out()?;
        let mut byte = [0u8; 1];
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.read_exact(&mut byte))
            .map_err(|e| io_err("corrupt read", &self.path, e))?;
        byte[0] = !byte[0];
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.write_all(&byte))
            .map_err(|e| io_err("corrupt write", &self.path, e))?;
        Ok(())
    }

    /// Replays the log at `path`, invoking `apply` for every record of every
    /// *committed* epoch, in log order, as the epoch's commit marker is
    /// reached. Uncommitted trailing records are counted and discarded. The
    /// first defect (torn record, checksum mismatch, undecodable payload)
    /// stops replay and truncates the file at the defect's offset.
    ///
    /// # Errors
    /// Fails only on I/O errors reading or truncating the file (a missing file
    /// replays as empty); defects are *reported*, not errors.
    pub fn replay(
        path: impl AsRef<Path>,
        mut apply: impl FnMut(SnapshotId, &WalRecord) -> Result<()>,
    ) -> Result<ReplayReport> {
        let path = path.as_ref();
        let mut report = ReplayReport::default();
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
            Err(e) => return Err(io_err("read", path, e)),
        };
        // Records read but not yet committed, in log order: (epoch, record).
        let mut uncommitted: Vec<(u64, WalRecord)> = Vec::new();
        let mut offset = 0usize;
        let stop = |report: &mut ReplayReport, at: usize, defect: WalDefect| {
            report.truncated_at = Some(at as u64);
            report.defect = Some(defect);
        };
        while offset < bytes.len() {
            if bytes.len() - offset < HEADER_LEN {
                stop(&mut report, offset, WalDefect::TornRecord);
                break;
            }
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
            let checksum = u64::from_le_bytes(bytes[offset + 4..offset + 12].try_into().unwrap());
            if len > MAX_RECORD_LEN {
                stop(&mut report, offset, WalDefect::CorruptPayload);
                break;
            }
            let body_start = offset + HEADER_LEN;
            let body_end = body_start + len as usize;
            if body_end > bytes.len() {
                stop(&mut report, offset, WalDefect::TornRecord);
                break;
            }
            let payload = &bytes[body_start..body_end];
            let mut hasher = FxHasher::default();
            hasher.write(payload);
            if hasher.finish() != checksum {
                stop(&mut report, offset, WalDefect::ChecksumMismatch);
                break;
            }
            let Some((epoch, record)) = decode_record(payload) else {
                stop(&mut report, offset, WalDefect::CorruptPayload);
                break;
            };
            match record {
                WalRecord::Commit => {
                    // Apply every pending record of this epoch, in log order.
                    let mut kept = Vec::new();
                    for (e, r) in uncommitted.drain(..) {
                        if e == epoch {
                            apply(SnapshotId(e), &r)?;
                            report.records_applied += 1;
                        } else {
                            kept.push((e, r));
                        }
                    }
                    uncommitted = kept;
                    report.epochs_committed += 1;
                    report.last_epoch = report.last_epoch.max(epoch);
                }
                record => uncommitted.push((epoch, record)),
            }
            offset = body_end;
        }
        report.uncommitted_discarded = uncommitted.len() as u64;
        if let Some(at) = report.truncated_at {
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| io_err("open for truncate", path, e))?;
            file.set_len(at).map_err(|e| io_err("truncate", path, e))?;
        }
        Ok(report)
    }

    /// Replays the log into `catalog`: committed fact appends, dimension
    /// upserts and deletes are applied with [`apply_record`], and the snapshot
    /// manager's committed watermark is raised to the last committed epoch so
    /// recovered rows are visible and recovered epochs are never re-allocated.
    ///
    /// # Errors
    /// Fails on I/O errors or if a committed record references a table the
    /// catalog does not have (schema mismatch between log and catalog).
    pub fn replay_into(path: impl AsRef<Path>, catalog: &Catalog) -> Result<ReplayReport> {
        let report = Self::replay(path, |epoch, record| apply_record(catalog, epoch, record))?;
        if report.last_epoch > 0 {
            catalog
                .snapshots()
                .commit_through(SnapshotId(report.last_epoch));
        }
        Ok(report)
    }
}

/// Applies one committed WAL record to catalog state under `epoch`. Shared by
/// recovery ([`WarehouseLog::replay_into`]) and the engine's live commit path,
/// so a recovered warehouse is bit-identical to one that never crashed.
///
/// # Errors
/// Fails if the referenced table is missing or a row violates its schema.
pub fn apply_record(catalog: &Catalog, epoch: SnapshotId, record: &WalRecord) -> Result<()> {
    match record {
        WalRecord::FactAppend { rows } => {
            let fact = catalog.fact_table()?;
            for values in rows {
                fact.insert(values.clone(), epoch)?;
            }
        }
        WalRecord::DimUpsert {
            table,
            key_column,
            row,
        } => {
            let dim = catalog.table(table)?;
            let key = row
                .get(*key_column)
                .ok_or_else(|| {
                    Error::invalid_state(format!(
                        "dimension upsert for '{table}' has no column {key_column}"
                    ))
                })?
                .as_int()?;
            retire_dimension_row(&dim, *key_column, key, epoch);
            dim.insert(row.clone(), epoch)?;
        }
        WalRecord::DimDelete {
            table,
            key_column,
            key,
        } => {
            let dim = catalog.table(table)?;
            retire_dimension_row(&dim, *key_column, *key, epoch);
        }
        WalRecord::Commit => {}
    }
    Ok(())
}

/// Marks the currently visible row with `key` (if any) deleted at `epoch`.
/// Readers at older snapshots keep seeing the old version (MVCC), readers at
/// `epoch` and later do not.
fn retire_dimension_row(dim: &crate::table::Table, key_column: usize, key: i64, epoch: SnapshotId) {
    // "Currently visible" = visible at the newest possible snapshot.
    let live = dim.select(SnapshotId(u64::MAX), |row| {
        row.try_get(key_column)
            .is_some_and(|v| v.as_int() == Ok(key))
    });
    for (id, _) in live {
        dim.delete(id, epoch);
    }
}

/// Builds the [`Row`]s of a fact-append record (convenience for callers that
/// apply records to non-catalog stores).
pub fn rows_of(values: &[Vec<Value>]) -> Vec<Row> {
    values.iter().map(|v| Row::new(v.clone())).collect()
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(2);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn encode_values(values: &[Value], out: &mut Vec<u8>) {
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        encode_value(v, out);
    }
}

fn encode_record(record: &WalRecord, out: &mut Vec<u8>) {
    match record {
        WalRecord::FactAppend { rows } => {
            out.push(KIND_FACT_APPEND);
            out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            for row in rows {
                encode_values(row, out);
            }
        }
        WalRecord::DimUpsert {
            table,
            key_column,
            row,
        } => {
            out.push(KIND_DIM_UPSERT);
            out.extend_from_slice(&(table.len() as u32).to_le_bytes());
            out.extend_from_slice(table.as_bytes());
            out.extend_from_slice(&(*key_column as u32).to_le_bytes());
            encode_values(row, out);
        }
        WalRecord::DimDelete {
            table,
            key_column,
            key,
        } => {
            out.push(KIND_DIM_DELETE);
            out.extend_from_slice(&(table.len() as u32).to_le_bytes());
            out.extend_from_slice(table.as_bytes());
            out.extend_from_slice(&(*key_column as u32).to_le_bytes());
            out.extend_from_slice(&key.to_le_bytes());
        }
        WalRecord::Commit => out.push(KIND_COMMIT),
    }
}

/// Bounds-checked little-endian reader over one record payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|b| i64::from_le_bytes(b.try_into().unwrap()))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn value(&mut self) -> Option<Value> {
        match self.u8()? {
            0 => Some(Value::Null),
            1 => self.i64().map(Value::Int),
            2 => self.string().map(Value::from),
            _ => None,
        }
    }

    fn values(&mut self) -> Option<Vec<Value>> {
        let n = self.u32()? as usize;
        // Each value is at least one tag byte: reject hostile lengths early.
        if n > self.bytes.len() - self.pos {
            return None;
        }
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(self.value()?);
        }
        Some(values)
    }

    fn exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn decode_record(payload: &[u8]) -> Option<(u64, WalRecord)> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let epoch = r.u64()?;
    let record = match r.u8()? {
        KIND_FACT_APPEND => {
            let n = r.u32()? as usize;
            if n > payload.len() {
                return None;
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(r.values()?);
            }
            WalRecord::FactAppend { rows }
        }
        KIND_DIM_UPSERT => WalRecord::DimUpsert {
            table: r.string()?,
            key_column: r.u32()? as usize,
            row: r.values()?,
        },
        KIND_DIM_DELETE => WalRecord::DimDelete {
            table: r.string()?,
            key_column: r.u32()? as usize,
            key: r.i64()?,
        },
        KIND_COMMIT => WalRecord::Commit,
        _ => return None,
    };
    r.exhausted().then_some((epoch, record))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::table::Table;
    use std::sync::Arc;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cjoin-wal-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        catalog.add_fact_table(Arc::new(Table::new(Schema::new(
            "fact",
            vec![Column::int("k"), Column::int("v")],
        ))));
        catalog.add_table(Arc::new(Table::new(Schema::new(
            "dim",
            vec![Column::int("key"), Column::str("attr")],
        ))));
        catalog
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::FactAppend {
                rows: vec![
                    vec![Value::int(1), Value::int(10)],
                    vec![Value::int(2), Value::int(20)],
                ],
            },
            WalRecord::DimUpsert {
                table: "dim".into(),
                key_column: 0,
                row: vec![Value::int(1), Value::str("ASIA")],
            },
            WalRecord::DimDelete {
                table: "dim".into(),
                key_column: 0,
                key: 9,
            },
        ]
    }

    #[test]
    fn records_roundtrip_through_the_codec() {
        for (i, record) in sample_records().iter().enumerate() {
            let mut payload = Vec::new();
            payload.extend_from_slice(&(i as u64 + 1).to_le_bytes());
            encode_record(record, &mut payload);
            let (epoch, decoded) = decode_record(&payload).expect("decodes");
            assert_eq!(epoch, i as u64 + 1);
            assert_eq!(&decoded, record);
        }
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u64.to_le_bytes());
        encode_record(&WalRecord::Commit, &mut payload);
        assert_eq!(decode_record(&payload), Some((7, WalRecord::Commit)));
    }

    #[test]
    fn truncated_payloads_never_decode_or_panic() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&3u64.to_le_bytes());
        encode_record(&sample_records()[0], &mut payload);
        for n in 0..payload.len() {
            assert_eq!(decode_record(&payload[..n]), None, "prefix of {n} bytes");
        }
        // Trailing garbage is rejected too (exhaustion check).
        payload.push(0);
        assert_eq!(decode_record(&payload), None);
    }

    #[test]
    fn append_commit_replay_roundtrip() {
        let path = temp_path("roundtrip");
        let mut log = WarehouseLog::open(&path, SyncPolicy::OnCommit).unwrap();
        for record in &sample_records() {
            log.append(SnapshotId(1), record).unwrap();
        }
        log.commit(SnapshotId(1)).unwrap();
        let mut seen = Vec::new();
        let report = WarehouseLog::replay(&path, |epoch, record| {
            seen.push((epoch, record.clone()));
            Ok(())
        })
        .unwrap();
        assert_eq!(report.records_applied, 3);
        assert_eq!(report.epochs_committed, 1);
        assert_eq!(report.last_epoch, 1);
        assert_eq!(report.truncated_at, None);
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].0, SnapshotId(1));
        assert_eq!(&seen[1].1, &sample_records()[1]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn uncommitted_tail_is_discarded_wholesale() {
        let path = temp_path("uncommitted");
        let mut log = WarehouseLog::open(&path, SyncPolicy::EveryRecord).unwrap();
        log.append(SnapshotId(1), &sample_records()[0]).unwrap();
        log.commit(SnapshotId(1)).unwrap();
        // Epoch 2 never commits.
        log.append(SnapshotId(2), &sample_records()[1]).unwrap();
        log.append(SnapshotId(2), &sample_records()[2]).unwrap();
        let mut applied = 0;
        let report = WarehouseLog::replay(&path, |epoch, _| {
            assert_eq!(epoch, SnapshotId(1), "only the committed epoch applies");
            applied += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(applied, 1);
        assert_eq!(report.uncommitted_discarded, 2);
        assert_eq!(
            report.defect, None,
            "a clean uncommitted tail is not a defect"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_at_first_bad_record() {
        let path = temp_path("torn");
        let mut log = WarehouseLog::open(&path, SyncPolicy::EveryRecord).unwrap();
        log.append(SnapshotId(1), &sample_records()[0]).unwrap();
        let clean = log.commit(SnapshotId(1)).unwrap();
        log.append(SnapshotId(2), &sample_records()[1]).unwrap();
        let torn = clean + 5; // mid-header of the epoch-2 record
        log.truncate_to(torn).unwrap();
        drop(log);
        let report = WarehouseLog::replay(&path, |_, _| Ok(())).unwrap();
        assert_eq!(report.epochs_committed, 1);
        assert_eq!(report.truncated_at, Some(clean));
        assert_eq!(report.defect, Some(WalDefect::TornRecord));
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean,
            "the log is physically truncated at the defect"
        );
        // A second replay of the truncated log is clean.
        let report = WarehouseLog::replay(&path, |_, _| Ok(())).unwrap();
        assert_eq!(report.defect, None);
        assert_eq!(report.epochs_committed, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flip_is_caught_by_the_checksum_and_truncated() {
        let path = temp_path("bitflip");
        let mut log = WarehouseLog::open(&path, SyncPolicy::EveryRecord).unwrap();
        let first_end = log.append(SnapshotId(1), &sample_records()[0]).unwrap();
        log.commit(SnapshotId(1)).unwrap();
        log.append(SnapshotId(2), &sample_records()[1]).unwrap();
        log.commit(SnapshotId(2)).unwrap();
        // Corrupt a payload byte of the *second* epoch's first record.
        log.corrupt_byte(first_end + HEADER_LEN as u64 + 20)
            .unwrap();
        drop(log);
        let mut applied = 0;
        let report = WarehouseLog::replay(&path, |epoch, _| {
            assert_eq!(epoch, SnapshotId(1));
            applied += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(applied, 1, "the clean committed prefix still applies");
        assert_eq!(report.defect, Some(WalDefect::ChecksumMismatch));
        // Everything from the corrupt record on is gone.
        assert!(std::fs::metadata(&path).unwrap().len() <= first_end + HEADER_LEN as u64 + 64);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_into_rebuilds_catalog_state_and_watermark() {
        let path = temp_path("into");
        let mut log = WarehouseLog::open(&path, SyncPolicy::OnCommit).unwrap();
        for record in &sample_records() {
            log.append(SnapshotId(3), record).unwrap();
        }
        log.commit(SnapshotId(3)).unwrap();
        drop(log);
        let catalog = catalog();
        // Pre-existing dim row with key 9 gets deleted by the replayed DimDelete.
        catalog
            .table("dim")
            .unwrap()
            .insert(vec![Value::int(9), Value::str("OLD")], SnapshotId(0))
            .unwrap();
        let report = WarehouseLog::replay_into(&path, &catalog).unwrap();
        assert_eq!(report.epochs_committed, 1);
        assert_eq!(catalog.snapshots().current(), SnapshotId(3));
        assert_eq!(catalog.fact_table().unwrap().len(), 2);
        let dim = catalog.table("dim").unwrap();
        let visible = dim.select(catalog.snapshots().current(), |_| true);
        assert_eq!(visible.len(), 1, "key 9 deleted, key 1 upserted");
        assert_eq!(visible[0].1.int(0), 1);
        // A reader at the pre-replay snapshot still sees the old row (MVCC).
        let old = dim.select(SnapshotId(0), |_| true);
        assert_eq!(old.len(), 1);
        assert_eq!(old[0].1.int(0), 9);
        // Fresh epochs never collide with replayed ones.
        assert!(catalog.snapshots().begin() > SnapshotId(3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn upsert_replaces_by_key_within_and_across_epochs() {
        let catalog = catalog();
        let dim = catalog.table("dim").unwrap();
        for (epoch, attr) in [(1u64, "A"), (2, "B"), (3, "C")] {
            apply_record(
                &catalog,
                SnapshotId(epoch),
                &WalRecord::DimUpsert {
                    table: "dim".into(),
                    key_column: 0,
                    row: vec![Value::int(5), Value::str(attr)],
                },
            )
            .unwrap();
        }
        for (snapshot, attr) in [(1u64, "A"), (2, "B"), (3, "C"), (9, "C")] {
            let rows = dim.select(SnapshotId(snapshot), |r| r.int(0) == 5);
            assert_eq!(rows.len(), 1, "snapshot {snapshot}");
            assert_eq!(rows[0].1.get(1).as_str().unwrap(), attr);
        }
    }

    #[test]
    fn kill_at_every_byte_offset_recovers_a_clean_prefix() {
        let path = temp_path("sweep");
        let mut log = WarehouseLog::open(&path, SyncPolicy::EveryRecord).unwrap();
        let mut commit_ends = Vec::new();
        for epoch in 1..=3u64 {
            log.append(SnapshotId(epoch), &sample_records()[0]).unwrap();
            commit_ends.push(log.commit(SnapshotId(epoch)).unwrap());
        }
        drop(log);
        let full = std::fs::read(&path).unwrap();
        let copy = temp_path("sweep-copy");
        for cut in 0..=full.len() {
            std::fs::write(&copy, &full[..cut]).unwrap();
            let report = WarehouseLog::replay(&copy, |_, _| Ok(())).unwrap();
            // Committed epochs = number of commit markers wholly within the cut.
            let expect = commit_ends.iter().filter(|&&e| e <= cut as u64).count() as u64;
            assert_eq!(report.epochs_committed, expect, "cut at byte {cut}");
            assert_eq!(report.records_applied, expect, "cut at byte {cut}");
            // After truncation, a re-replay is clean and reports the same state.
            let again = WarehouseLog::replay(&copy, |_, _| Ok(())).unwrap();
            assert_eq!(again.defect, None, "cut at byte {cut}");
            assert_eq!(again.epochs_committed, expect, "cut at byte {cut}");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&copy);
    }
}
