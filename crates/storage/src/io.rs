//! Accounting-only I/O cost model.
//!
//! The paper's experiments run against a 100 GB fact table on a RAID-5 array of
//! 15K-RPM disks; the headline failure mode of query-at-a-time processing is that
//! concurrent, mutually unaware scans degenerate into *random* I/O (§1). Reproducing
//! that on a laptop-scale, memory-resident data set requires a model rather than a
//! disk: scans record how many pages they touched and whether the access pattern was
//! sequential or random, and the [`IoModel`] converts those counts into modelled I/O
//! time. The experiment harness then reports `max(measured CPU time, modelled I/O
//! time)` per scan pass, mirroring a system whose scan is either CPU-bound or
//! I/O-bound.
//!
//! The default cost constants correspond to a single commodity disk stream
//! (~200 MB/s sequential, ~1 ms average seek+rotate for a random page), which is the
//! same order of magnitude as the paper's hardware divided across its RAID spindles.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Whether a page access continued a sequential stream or required a seek.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// The page follows the previously read page of the same stream.
    Sequential,
    /// The page required repositioning (interleaved scans, index lookups, ...).
    Random,
}

/// Thread-safe counters of page accesses, recorded by scans.
#[derive(Debug, Default)]
pub struct IoStats {
    sequential_pages: AtomicU64,
    random_pages: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `pages` page reads of the given kind.
    #[inline]
    pub fn record(&self, kind: AccessKind, pages: u64) {
        match kind {
            AccessKind::Sequential => {
                self.sequential_pages.fetch_add(pages, Ordering::Relaxed);
            }
            AccessKind::Random => {
                self.random_pages.fetch_add(pages, Ordering::Relaxed);
            }
        }
    }

    /// Total sequential page reads recorded.
    pub fn sequential_pages(&self) -> u64 {
        self.sequential_pages.load(Ordering::Relaxed)
    }

    /// Total random page reads recorded.
    pub fn random_pages(&self) -> u64 {
        self.random_pages.load(Ordering::Relaxed)
    }

    /// Total page reads of both kinds.
    pub fn total_pages(&self) -> u64 {
        self.sequential_pages() + self.random_pages()
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.sequential_pages.store(0, Ordering::Relaxed);
        self.random_pages.store(0, Ordering::Relaxed);
    }
}

/// Converts page-access counts into modelled I/O time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoModel {
    /// Cost of one sequentially read page, in microseconds.
    pub sequential_page_us: f64,
    /// Cost of one randomly read page, in microseconds.
    pub random_page_us: f64,
}

impl IoModel {
    /// A memory-resident warehouse: page accesses are free (§5, "Memory-resident
    /// Databases").
    pub fn in_memory() -> Self {
        Self {
            sequential_page_us: 0.0,
            random_page_us: 0.0,
        }
    }

    /// A single-disk cost model: 8 KiB pages at ~200 MB/s sequential (≈40 µs/page)
    /// and ~1 ms per random page (seek + rotational latency dominated).
    pub fn spinning_disk() -> Self {
        Self {
            sequential_page_us: 40.0,
            random_page_us: 1_000.0,
        }
    }

    /// Ratio between random and sequential page cost (≈25 for the disk model); the
    /// degradation factor the query-at-a-time baseline suffers under interleaving.
    pub fn random_penalty(&self) -> f64 {
        if self.sequential_page_us == 0.0 {
            if self.random_page_us == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.random_page_us / self.sequential_page_us
        }
    }

    /// Modelled time, in microseconds, for the accesses recorded in `stats`.
    pub fn modelled_time_us(&self, stats: &IoStats) -> f64 {
        stats.sequential_pages() as f64 * self.sequential_page_us
            + stats.random_pages() as f64 * self.random_page_us
    }

    /// Modelled time, in microseconds, for an explicit number of pages of one kind.
    pub fn pages_time_us(&self, kind: AccessKind, pages: u64) -> f64 {
        match kind {
            AccessKind::Sequential => pages as f64 * self.sequential_page_us,
            AccessKind::Random => pages as f64 * self.random_page_us,
        }
    }
}

impl Default for IoModel {
    fn default() -> Self {
        IoModel::in_memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let s = IoStats::new();
        s.record(AccessKind::Sequential, 10);
        s.record(AccessKind::Random, 3);
        s.record(AccessKind::Sequential, 5);
        assert_eq!(s.sequential_pages(), 15);
        assert_eq!(s.random_pages(), 3);
        assert_eq!(s.total_pages(), 18);
        s.reset();
        assert_eq!(s.total_pages(), 0);
    }

    #[test]
    fn in_memory_model_is_free() {
        let m = IoModel::in_memory();
        let s = IoStats::new();
        s.record(AccessKind::Random, 1_000_000);
        assert_eq!(m.modelled_time_us(&s), 0.0);
        assert_eq!(m.random_penalty(), 1.0);
    }

    #[test]
    fn disk_model_charges_random_more() {
        let m = IoModel::spinning_disk();
        assert!(m.random_penalty() > 10.0);
        let s = IoStats::new();
        s.record(AccessKind::Sequential, 100);
        s.record(AccessKind::Random, 100);
        let t = m.modelled_time_us(&s);
        assert!((t - (100.0 * 40.0 + 100.0 * 1000.0)).abs() < 1e-9);
        assert_eq!(m.pages_time_us(AccessKind::Sequential, 10), 400.0);
        assert_eq!(m.pages_time_us(AccessKind::Random, 10), 10_000.0);
    }

    #[test]
    fn stats_are_thread_safe() {
        use std::sync::Arc;
        let s = Arc::new(IoStats::new());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record(AccessKind::Sequential, 1);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(s.sequential_pages(), 4000);
    }

    #[test]
    fn default_model_is_in_memory() {
        assert_eq!(IoModel::default(), IoModel::in_memory());
    }
}
