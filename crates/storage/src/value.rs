//! Typed column values.
//!
//! The data model intentionally stays small: the Star Schema Benchmark (and star
//! schemas generally) only needs 64-bit integers, dates (stored as `yyyymmdd`
//! integers, as SSB's generator does) and short strings. Strings are stored behind an
//! `Arc<str>` so that copying a [`Value`] — which happens whenever a dimension tuple
//! is loaded into a CJOIN dimension hash table — does not allocate.

use std::fmt;
use std::sync::Arc;

use cjoin_common::{Error, Result};

/// A single column value.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// 64-bit signed integer; also used for surrogate/foreign keys and dates
    /// encoded as `yyyymmdd`.
    Int(i64),
    /// Interned UTF-8 string.
    Str(Arc<str>),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns the integer payload.
    ///
    /// # Errors
    /// Returns a type-mismatch error if the value is not an [`Value::Int`].
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(Error::type_mismatch(format!(
                "expected Int, found {other:?}"
            ))),
        }
    }

    /// Returns the string payload.
    ///
    /// # Errors
    /// Returns a type-mismatch error if the value is not a [`Value::Str`].
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::type_mismatch(format!(
                "expected Str, found {other:?}"
            ))),
        }
    }

    /// Returns `true` if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the integer payload or panics; reserved for hot paths where the
    /// schema guarantees the type (e.g. foreign-key extraction in the Filters).
    #[inline]
    pub fn expect_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            other => panic!("expected Int, found {other:?}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_accessors() {
        let v = Value::int(42);
        assert_eq!(v.as_int().unwrap(), 42);
        assert_eq!(v.expect_int(), 42);
        assert!(v.as_str().is_err());
        assert!(!v.is_null());
    }

    #[test]
    fn str_accessors() {
        let v = Value::str("ASIA");
        assert_eq!(v.as_str().unwrap(), "ASIA");
        assert!(v.as_int().is_err());
    }

    #[test]
    fn null_behaviour() {
        let v = Value::Null;
        assert!(v.is_null());
        assert!(v.as_int().is_err());
        assert!(v.as_str().is_err());
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn expect_int_panics_on_str() {
        Value::str("x").expect_int();
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("a"), Value::str("a"));
        assert_eq!(Value::from(String::from("a")), Value::str("a"));
    }

    #[test]
    fn ordering_within_same_type() {
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::str("ASIA") < Value::str("EUROPE"));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Value::int(5).to_string(), "5");
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(format!("{:?}", Value::str("x")), "\"x\"");
    }

    #[test]
    fn clone_of_str_shares_allocation() {
        let a = Value::str("shared");
        let b = a.clone();
        if let (Value::Str(x), Value::Str(y)) = (&a, &b) {
            assert!(Arc::ptr_eq(x, y));
        } else {
            unreachable!();
        }
    }
}
