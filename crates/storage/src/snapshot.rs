//! Snapshot-isolation bookkeeping.
//!
//! The paper assumes the warehouse runs under snapshot isolation (§2.1): every
//! transaction is tagged with a snapshot identifier, and §3.5 describes how CJOIN
//! copes with queries that reference different snapshots — the association of a query
//! with a snapshot becomes a *virtual fact-table predicate* evaluated by the
//! Preprocessor over each fact tuple's multi-version visibility information.
//!
//! This module provides that visibility information: every stored row carries a
//! [`RowVersion`] (`xmin`/`xmax` in PostgreSQL terminology) and the
//! [`SnapshotManager`] hands out monotonically increasing snapshot ids.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A snapshot identifier. Larger ids correspond to later snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SnapshotId(pub u64);

impl SnapshotId {
    /// The initial snapshot: rows loaded at warehouse-build time are visible to every
    /// query.
    pub const INITIAL: SnapshotId = SnapshotId(0);
}

/// Multi-version visibility metadata attached to each stored row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowVersion {
    /// Snapshot in which the row was inserted.
    pub xmin: SnapshotId,
    /// Snapshot in which the row was deleted, if any.
    pub xmax: Option<SnapshotId>,
}

impl RowVersion {
    /// A row that has always existed and was never deleted.
    pub const ALWAYS_VISIBLE: RowVersion = RowVersion {
        xmin: SnapshotId::INITIAL,
        xmax: None,
    };

    /// Creates version metadata for a row inserted at `xmin`.
    pub fn inserted_at(xmin: SnapshotId) -> Self {
        Self { xmin, xmax: None }
    }

    /// Returns whether the row is visible to a reader running at `snapshot`.
    ///
    /// A row is visible if it was inserted at or before the reader's snapshot and not
    /// deleted at or before it.
    #[inline]
    pub fn visible_at(&self, snapshot: SnapshotId) -> bool {
        self.xmin <= snapshot && self.xmax.is_none_or(|xmax| xmax > snapshot)
    }
}

impl Default for RowVersion {
    fn default() -> Self {
        RowVersion::ALWAYS_VISIBLE
    }
}

/// Hands out snapshot identifiers and tracks the latest committed snapshot.
///
/// Since PR 10 the manager implements a real two-phase commit protocol for the
/// durable ingestion path: [`SnapshotManager::begin`] allocates a *pending*
/// snapshot id (rows inserted under it are invisible to every reader, because
/// readers are admitted at the *committed* watermark and `xmin > snapshot`
/// fails their visibility check), and [`SnapshotManager::commit_through`]
/// publishes the id once the batch's WAL commit marker is durable — the single
/// atomic store that makes the whole batch visible to subsequently admitted
/// queries. A query admitted at time T therefore never sees rows born after
/// its pass began: its snapshot is the committed watermark at admission, and
/// every later batch carries a strictly larger `xmin`.
#[derive(Debug, Default)]
pub struct SnapshotManager {
    /// Pending-allocation high-water mark: the largest id ever handed out by
    /// [`SnapshotManager::begin`] (or adopted by `commit_through` during WAL
    /// replay, so recovered epochs are never re-allocated).
    next: AtomicU64,
    /// The committed watermark readers are admitted at.
    committed: AtomicU64,
}

impl SnapshotManager {
    /// Creates a manager whose current snapshot is [`SnapshotId::INITIAL`].
    pub fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
            committed: AtomicU64::new(0),
        }
    }

    /// Returns the latest committed snapshot (what a newly admitted read-only query
    /// should run against). Pending snapshots allocated by
    /// [`SnapshotManager::begin`] but not yet published through
    /// [`SnapshotManager::commit_through`] are never observable here.
    pub fn current(&self) -> SnapshotId {
        SnapshotId(self.committed.load(Ordering::Acquire))
    }

    /// Allocates a fresh *pending* snapshot id, strictly larger than every id
    /// allocated or committed before. Rows inserted with this id as their
    /// `xmin` stay invisible to all readers until the id is published with
    /// [`SnapshotManager::commit_through`]; an aborted batch simply never
    /// publishes, leaving a harmless hole in the id sequence.
    pub fn begin(&self) -> SnapshotId {
        SnapshotId(self.next.fetch_add(1, Ordering::AcqRel) + 1)
    }

    /// Publishes every snapshot up to and including `id`: the committed
    /// watermark (and the pending allocator, so replayed WAL epochs are never
    /// re-allocated) is raised to `id` if it is not already past it. Raising
    /// the watermark is the commit point — the single atomic store after which
    /// newly admitted readers see the batch.
    pub fn commit_through(&self, id: SnapshotId) {
        for counter in [&self.committed, &self.next] {
            let mut seen = counter.load(Ordering::Acquire);
            while seen < id.0 {
                match counter.compare_exchange_weak(seen, id.0, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => break,
                    Err(actual) => seen = actual,
                }
            }
        }
    }

    /// Commits a new snapshot (e.g. after an update batch) and returns its id.
    ///
    /// Equivalent to [`SnapshotManager::begin`] immediately followed by
    /// [`SnapshotManager::commit_through`] — the legacy single-step path used
    /// by callers that mutate tables directly without a WAL.
    pub fn commit(&self) -> SnapshotId {
        let id = self.begin();
        self.commit_through(id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_visible_is_visible_everywhere() {
        let v = RowVersion::ALWAYS_VISIBLE;
        assert!(v.visible_at(SnapshotId(0)));
        assert!(v.visible_at(SnapshotId(1_000_000)));
    }

    #[test]
    fn insertion_visibility() {
        let v = RowVersion::inserted_at(SnapshotId(5));
        assert!(!v.visible_at(SnapshotId(4)));
        assert!(v.visible_at(SnapshotId(5)));
        assert!(v.visible_at(SnapshotId(6)));
    }

    #[test]
    fn deletion_visibility() {
        let v = RowVersion {
            xmin: SnapshotId(2),
            xmax: Some(SnapshotId(7)),
        };
        assert!(!v.visible_at(SnapshotId(1)), "not yet inserted");
        assert!(v.visible_at(SnapshotId(2)));
        assert!(v.visible_at(SnapshotId(6)));
        assert!(!v.visible_at(SnapshotId(7)), "deleted in snapshot 7");
        assert!(!v.visible_at(SnapshotId(100)));
    }

    #[test]
    fn manager_commit_is_monotonic() {
        let m = SnapshotManager::new();
        assert_eq!(m.current(), SnapshotId(0));
        let s1 = m.commit();
        let s2 = m.commit();
        assert!(s1 < s2);
        assert_eq!(m.current(), s2);
    }

    #[test]
    fn manager_is_thread_safe() {
        use std::sync::Arc;
        let m = Arc::new(SnapshotManager::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        m.commit();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.current(), SnapshotId(800));
    }

    #[test]
    fn default_row_version_is_always_visible() {
        assert_eq!(RowVersion::default(), RowVersion::ALWAYS_VISIBLE);
    }

    #[test]
    fn begin_is_pending_until_committed_through() {
        let m = SnapshotManager::new();
        let pending = m.begin();
        assert_eq!(pending, SnapshotId(1));
        assert_eq!(
            m.current(),
            SnapshotId(0),
            "an uncommitted batch must not move the reader watermark"
        );
        // A row born in the pending snapshot is invisible to a reader admitted now.
        let reader = m.current();
        assert!(!RowVersion::inserted_at(pending).visible_at(reader));
        m.commit_through(pending);
        assert_eq!(m.current(), pending);
        assert!(RowVersion::inserted_at(pending).visible_at(m.current()));
    }

    #[test]
    fn commit_through_is_monotonic_and_adopts_replayed_epochs() {
        let m = SnapshotManager::new();
        // WAL replay publishes epochs it finds in the log without begin().
        m.commit_through(SnapshotId(7));
        assert_eq!(m.current(), SnapshotId(7));
        // A stale commit never lowers the watermark.
        m.commit_through(SnapshotId(3));
        assert_eq!(m.current(), SnapshotId(7));
        // Fresh allocations continue past the adopted epoch — never reusing it.
        assert_eq!(m.begin(), SnapshotId(8));
    }

    #[test]
    fn aborted_batches_leave_holes_but_keep_order() {
        let m = SnapshotManager::new();
        let a = m.begin(); // will be aborted: never committed
        let b = m.begin();
        m.commit_through(b);
        assert_eq!(m.current(), b);
        assert!(a < b);
        assert_eq!(m.begin(), SnapshotId(3));
    }
}
