//! Snapshot-isolation bookkeeping.
//!
//! The paper assumes the warehouse runs under snapshot isolation (§2.1): every
//! transaction is tagged with a snapshot identifier, and §3.5 describes how CJOIN
//! copes with queries that reference different snapshots — the association of a query
//! with a snapshot becomes a *virtual fact-table predicate* evaluated by the
//! Preprocessor over each fact tuple's multi-version visibility information.
//!
//! This module provides that visibility information: every stored row carries a
//! [`RowVersion`] (`xmin`/`xmax` in PostgreSQL terminology) and the
//! [`SnapshotManager`] hands out monotonically increasing snapshot ids.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A snapshot identifier. Larger ids correspond to later snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SnapshotId(pub u64);

impl SnapshotId {
    /// The initial snapshot: rows loaded at warehouse-build time are visible to every
    /// query.
    pub const INITIAL: SnapshotId = SnapshotId(0);
}

/// Multi-version visibility metadata attached to each stored row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowVersion {
    /// Snapshot in which the row was inserted.
    pub xmin: SnapshotId,
    /// Snapshot in which the row was deleted, if any.
    pub xmax: Option<SnapshotId>,
}

impl RowVersion {
    /// A row that has always existed and was never deleted.
    pub const ALWAYS_VISIBLE: RowVersion = RowVersion {
        xmin: SnapshotId::INITIAL,
        xmax: None,
    };

    /// Creates version metadata for a row inserted at `xmin`.
    pub fn inserted_at(xmin: SnapshotId) -> Self {
        Self { xmin, xmax: None }
    }

    /// Returns whether the row is visible to a reader running at `snapshot`.
    ///
    /// A row is visible if it was inserted at or before the reader's snapshot and not
    /// deleted at or before it.
    #[inline]
    pub fn visible_at(&self, snapshot: SnapshotId) -> bool {
        self.xmin <= snapshot && self.xmax.is_none_or(|xmax| xmax > snapshot)
    }
}

impl Default for RowVersion {
    fn default() -> Self {
        RowVersion::ALWAYS_VISIBLE
    }
}

/// Hands out snapshot identifiers and tracks the latest committed snapshot.
#[derive(Debug, Default)]
pub struct SnapshotManager {
    current: AtomicU64,
}

impl SnapshotManager {
    /// Creates a manager whose current snapshot is [`SnapshotId::INITIAL`].
    pub fn new() -> Self {
        Self {
            current: AtomicU64::new(0),
        }
    }

    /// Returns the latest committed snapshot (what a newly admitted read-only query
    /// should run against).
    pub fn current(&self) -> SnapshotId {
        SnapshotId(self.current.load(Ordering::Acquire))
    }

    /// Commits a new snapshot (e.g. after an update batch) and returns its id.
    pub fn commit(&self) -> SnapshotId {
        SnapshotId(self.current.fetch_add(1, Ordering::AcqRel) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_visible_is_visible_everywhere() {
        let v = RowVersion::ALWAYS_VISIBLE;
        assert!(v.visible_at(SnapshotId(0)));
        assert!(v.visible_at(SnapshotId(1_000_000)));
    }

    #[test]
    fn insertion_visibility() {
        let v = RowVersion::inserted_at(SnapshotId(5));
        assert!(!v.visible_at(SnapshotId(4)));
        assert!(v.visible_at(SnapshotId(5)));
        assert!(v.visible_at(SnapshotId(6)));
    }

    #[test]
    fn deletion_visibility() {
        let v = RowVersion {
            xmin: SnapshotId(2),
            xmax: Some(SnapshotId(7)),
        };
        assert!(!v.visible_at(SnapshotId(1)), "not yet inserted");
        assert!(v.visible_at(SnapshotId(2)));
        assert!(v.visible_at(SnapshotId(6)));
        assert!(!v.visible_at(SnapshotId(7)), "deleted in snapshot 7");
        assert!(!v.visible_at(SnapshotId(100)));
    }

    #[test]
    fn manager_commit_is_monotonic() {
        let m = SnapshotManager::new();
        assert_eq!(m.current(), SnapshotId(0));
        let s1 = m.commit();
        let s2 = m.commit();
        assert!(s1 < s2);
        assert_eq!(m.current(), s2);
    }

    #[test]
    fn manager_is_thread_safe() {
        use std::sync::Arc;
        let m = Arc::new(SnapshotManager::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        m.commit();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.current(), SnapshotId(800));
    }

    #[test]
    fn default_row_version_is_always_visible() {
        assert_eq!(RowVersion::default(), RowVersion::ALWAYS_VISIBLE);
    }
}
