//! In-memory paged row store.

use parking_lot::RwLock;

use cjoin_common::Result;

use crate::row::{Row, RowId};
use crate::schema::Schema;
use crate::snapshot::{RowVersion, SnapshotId};
use crate::value::Value;

/// Default number of rows per logical page.
///
/// With SSB `lineorder` rows of roughly 100 bytes this corresponds to the usual
/// 8 KiB heap page, so page-count-based I/O accounting matches what a row store
/// would do.
pub const DEFAULT_ROWS_PER_PAGE: usize = 80;

#[derive(Debug)]
struct StoredRow {
    row: Row,
    version: RowVersion,
}

#[derive(Debug, Default)]
struct TableInner {
    rows: Vec<StoredRow>,
}

/// An append-only, multi-versioned, in-memory table.
///
/// * Reads never block reads; appends (used by the §3.5 update workloads) take a
///   short write lock.
/// * Rows are identified by their insertion position ([`RowId`]), which is the order
///   every scan uses — the stability CJOIN's wrap-around detection requires.
#[derive(Debug)]
pub struct Table {
    schema: Schema,
    rows_per_page: usize,
    inner: RwLock<TableInner>,
}

impl Table {
    /// Creates an empty table with the default page size.
    pub fn new(schema: Schema) -> Self {
        Self::with_rows_per_page(schema, DEFAULT_ROWS_PER_PAGE)
    }

    /// Creates an empty table with an explicit page size (rows per page).
    pub fn with_rows_per_page(schema: Schema, rows_per_page: usize) -> Self {
        assert!(rows_per_page > 0, "rows_per_page must be positive");
        Self {
            schema,
            rows_per_page,
            inner: RwLock::new(TableInner::default()),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The table's name (from its schema).
    pub fn name(&self) -> &str {
        &self.schema.table
    }

    /// Rows per logical page.
    pub fn rows_per_page(&self) -> usize {
        self.rows_per_page
    }

    /// Number of rows currently stored (all versions).
    pub fn len(&self) -> usize {
        self.inner.read().rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of logical pages currently occupied.
    pub fn num_pages(&self) -> u64 {
        (self.len() as u64).div_ceil(self.rows_per_page as u64)
    }

    /// Appends a row visible from `xmin` onwards, validating it against the schema.
    ///
    /// # Errors
    /// Returns a type-mismatch error if the row does not match the schema.
    pub fn insert(&self, values: Vec<Value>, xmin: SnapshotId) -> Result<RowId> {
        self.schema.validate_row(&values)?;
        let mut inner = self.inner.write();
        let id = RowId(inner.rows.len() as u64);
        inner.rows.push(StoredRow {
            row: Row::new(values),
            version: RowVersion::inserted_at(xmin),
        });
        Ok(id)
    }

    /// Appends a batch of pre-validated rows (used by the SSB generator, which
    /// guarantees schema conformance and loads hundreds of thousands of rows).
    pub fn insert_batch_unchecked<I>(&self, rows: I, xmin: SnapshotId)
    where
        I: IntoIterator<Item = Row>,
    {
        let mut inner = self.inner.write();
        for row in rows {
            inner.rows.push(StoredRow {
                row,
                version: RowVersion::inserted_at(xmin),
            });
        }
    }

    /// Marks a row as deleted as of snapshot `xmax`. Returns `false` if the row does
    /// not exist or was already deleted.
    pub fn delete(&self, id: RowId, xmax: SnapshotId) -> bool {
        let mut inner = self.inner.write();
        match inner.rows.get_mut(id.index()) {
            Some(stored) if stored.version.xmax.is_none() => {
                stored.version.xmax = Some(xmax);
                true
            }
            _ => false,
        }
    }

    /// Returns the row with the given id (regardless of visibility).
    pub fn row(&self, id: RowId) -> Option<Row> {
        self.inner
            .read()
            .rows
            .get(id.index())
            .map(|s| s.row.clone())
    }

    /// Returns the row and its version metadata.
    pub fn row_with_version(&self, id: RowId) -> Option<(Row, RowVersion)> {
        self.inner
            .read()
            .rows
            .get(id.index())
            .map(|s| (s.row.clone(), s.version))
    }

    /// Copies up to `max_rows` rows starting at position `start` into `out`,
    /// returning the number of rows copied. Rows of every version are returned;
    /// visibility filtering is the caller's concern (the CJOIN Preprocessor treats
    /// snapshot membership as a virtual predicate, §3.5).
    pub fn read_range(
        &self,
        start: u64,
        max_rows: usize,
        out: &mut Vec<(RowId, Row, RowVersion)>,
    ) -> usize {
        let inner = self.inner.read();
        let start = start as usize;
        if start >= inner.rows.len() {
            return 0;
        }
        let end = (start + max_rows).min(inner.rows.len());
        out.reserve(end - start);
        for (offset, stored) in inner.rows[start..end].iter().enumerate() {
            out.push((
                RowId((start + offset) as u64),
                stored.row.clone(),
                stored.version,
            ));
        }
        end - start
    }

    /// Visits every row visible at `snapshot` without materialising a copy.
    ///
    /// Holds the read lock for the duration of the visit; intended for dimension
    /// tables (small) and test oracles, not for the fact-table hot path.
    pub fn for_each_visible<F: FnMut(RowId, &Row)>(&self, snapshot: SnapshotId, mut f: F) {
        let inner = self.inner.read();
        for (i, stored) in inner.rows.iter().enumerate() {
            if stored.version.visible_at(snapshot) {
                f(RowId(i as u64), &stored.row);
            }
        }
    }

    /// Collects the rows visible at `snapshot` that satisfy `pred`.
    ///
    /// This is the access path used when a new CJOIN query is admitted: Algorithm 1
    /// evaluates `σ_cnj(Dj)` over each referenced dimension table and loads the
    /// matches into the dimension hash table.
    pub fn select<F: Fn(&Row) -> bool>(&self, snapshot: SnapshotId, pred: F) -> Vec<(RowId, Row)> {
        let mut result = Vec::new();
        self.for_each_visible(snapshot, |id, row| {
            if pred(row) {
                result.push((id, row.clone()));
            }
        });
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn test_table() -> Table {
        let schema = Schema::new("dim", vec![Column::int("d_key"), Column::str("d_name")]);
        Table::with_rows_per_page(schema, 4)
    }

    #[test]
    fn insert_and_read_back() {
        let t = test_table();
        let id0 = t
            .insert(vec![Value::int(1), Value::str("a")], SnapshotId::INITIAL)
            .unwrap();
        let id1 = t
            .insert(vec![Value::int(2), Value::str("b")], SnapshotId::INITIAL)
            .unwrap();
        assert_eq!(id0, RowId(0));
        assert_eq!(id1, RowId(1));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.row(id1).unwrap().int(0), 2);
        assert!(t.row(RowId(5)).is_none());
    }

    #[test]
    fn insert_validates_schema() {
        let t = test_table();
        assert!(t
            .insert(
                vec![Value::str("wrong"), Value::str("a")],
                SnapshotId::INITIAL
            )
            .is_err());
        assert!(t.insert(vec![Value::int(1)], SnapshotId::INITIAL).is_err());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn page_accounting() {
        let t = test_table();
        assert_eq!(t.num_pages(), 0);
        for i in 0..9 {
            t.insert(vec![Value::int(i), Value::str("x")], SnapshotId::INITIAL)
                .unwrap();
        }
        // 9 rows at 4 rows/page -> 3 pages.
        assert_eq!(t.num_pages(), 3);
        assert_eq!(t.rows_per_page(), 4);
    }

    #[test]
    fn read_range_honours_bounds() {
        let t = test_table();
        for i in 0..10 {
            t.insert(vec![Value::int(i), Value::str("x")], SnapshotId::INITIAL)
                .unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(t.read_range(8, 5, &mut out), 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, RowId(8));
        assert_eq!(out[1].1.int(0), 9);
        out.clear();
        assert_eq!(t.read_range(100, 5, &mut out), 0);
    }

    #[test]
    fn delete_and_visibility() {
        let t = test_table();
        let id = t
            .insert(vec![Value::int(1), Value::str("a")], SnapshotId(1))
            .unwrap();
        assert!(t.delete(id, SnapshotId(3)));
        assert!(!t.delete(id, SnapshotId(4)), "double delete rejected");
        assert!(!t.delete(RowId(10), SnapshotId(4)), "unknown row rejected");

        let (_, version) = t.row_with_version(id).unwrap();
        assert!(!version.visible_at(SnapshotId(0)), "not yet inserted");
        assert!(version.visible_at(SnapshotId(2)));
        assert!(!version.visible_at(SnapshotId(3)), "deleted");
    }

    #[test]
    fn select_applies_snapshot_and_predicate() {
        let t = test_table();
        t.insert(vec![Value::int(1), Value::str("keep")], SnapshotId(0))
            .unwrap();
        t.insert(vec![Value::int(2), Value::str("drop")], SnapshotId(0))
            .unwrap();
        t.insert(vec![Value::int(3), Value::str("keep")], SnapshotId(5))
            .unwrap();

        let visible_now = t.select(SnapshotId(0), |r| r.get(1).as_str().unwrap() == "keep");
        assert_eq!(visible_now.len(), 1);
        assert_eq!(visible_now[0].1.int(0), 1);

        let visible_later = t.select(SnapshotId(5), |r| r.get(1).as_str().unwrap() == "keep");
        assert_eq!(visible_later.len(), 2);
    }

    #[test]
    fn for_each_visible_skips_deleted() {
        let t = test_table();
        let id = t
            .insert(vec![Value::int(1), Value::str("a")], SnapshotId(0))
            .unwrap();
        t.insert(vec![Value::int(2), Value::str("b")], SnapshotId(0))
            .unwrap();
        t.delete(id, SnapshotId(1));
        let mut seen = Vec::new();
        t.for_each_visible(SnapshotId(2), |_, r| seen.push(r.int(0)));
        assert_eq!(seen, vec![2]);
    }

    #[test]
    fn insert_batch_unchecked_bulk_loads() {
        let t = test_table();
        t.insert_batch_unchecked(
            (0..100).map(|i| Row::new(vec![Value::int(i), Value::str("bulk")])),
            SnapshotId::INITIAL,
        );
        assert_eq!(t.len(), 100);
        assert_eq!(t.row(RowId(99)).unwrap().int(0), 99);
    }

    #[test]
    #[should_panic(expected = "rows_per_page")]
    fn zero_rows_per_page_panics() {
        let schema = Schema::new("t", vec![Column::int("a")]);
        let _ = Table::with_rows_per_page(schema, 0);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        use std::sync::Arc;
        let t = Arc::new(test_table());
        for i in 0..100 {
            t.insert(vec![Value::int(i), Value::str("x")], SnapshotId::INITIAL)
                .unwrap();
        }
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    for _ in 0..50 {
                        out.clear();
                        t.read_range(0, 100, &mut out);
                        assert!(out.len() >= 100);
                    }
                })
            })
            .collect();
        let writer = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for i in 100..200 {
                    t.insert(vec![Value::int(i), Value::str("y")], SnapshotId(1))
                        .unwrap();
                }
            })
        };
        for r in readers {
            r.join().unwrap();
        }
        writer.join().unwrap();
        assert_eq!(t.len(), 200);
    }
}
