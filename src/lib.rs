//! # cjoin-repro — CJOIN, reproduced in Rust
//!
//! A reproduction of **"A Scalable, Predictable Join Operator for Highly Concurrent
//! Data Warehouses"** (Candea, Polyzotis, Vingralek — VLDB 2009): the CJOIN operator,
//! the Star Schema Benchmark substrate it is evaluated on, a conventional
//! query-at-a-time baseline, and the experiment harness that regenerates every table
//! and figure of the paper's evaluation.
//!
//! This crate is a thin façade: it re-exports the workspace crates so that examples,
//! integration tests and downstream users can depend on a single crate.
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`common`] | `cjoin-common` | query bit-vectors, fast hashing, ids, errors |
//! | [`storage`] | `cjoin-storage` | row store, continuous scan, snapshots, partitions, I/O model |
//! | [`query`] | `cjoin-query` | star-query model, predicates, aggregates, reference oracle |
//! | [`ssb`] | `cjoin-ssb` | Star Schema Benchmark generator, templates, workloads |
//! | [`cjoin`] | `cjoin-core` | the CJOIN operator and engine |
//! | [`baseline`] | `cjoin-baseline` | query-at-a-time hash-join baseline |
//! | [`galaxy`] | `cjoin-galaxy` | fact-to-fact join queries over two CJOIN pipelines (§5) |
//! | [`server`] | `cjoin-server` | TCP front door: wire protocol, multi-tenant admission |
//! | [`client`] | `cjoin-client` | `RemoteEngine`: a `JoinEngine` over the wire |
//! | [`bench`] | `cjoin-bench` | experiment harness (figures 4–8, tables 1–3, ablations) |
//!
//! See `README.md` for a quickstart, the workspace layout, and how to reproduce
//! the paper's evaluation with the `experiments` binary.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Shared utilities: query bit-vectors, fast hashing, query ids, errors.
pub mod common {
    pub use cjoin_common::*;
}

/// Row-store substrate: tables, continuous scans, snapshots, partitions, I/O model.
pub mod storage {
    pub use cjoin_storage::*;
}

/// Star-query model: predicates, aggregates, results, reference evaluator.
pub mod query {
    pub use cjoin_query::*;
}

/// Star Schema Benchmark: data generator, query templates, workload generator.
pub mod ssb {
    pub use cjoin_ssb::*;
}

/// The CJOIN operator: shared always-on pipeline for concurrent star queries.
pub mod cjoin {
    pub use cjoin_core::*;
}

/// Conventional query-at-a-time baseline engine ("System X" / PostgreSQL stand-ins).
pub mod baseline {
    pub use cjoin_baseline::*;
}

/// Galaxy-schema (fact-to-fact join) queries evaluated as star sub-plans over CJOIN
/// operators (§5 "Galaxy Schemata").
pub mod galaxy {
    pub use cjoin_galaxy::*;
}

/// TCP front door: length-prefixed wire protocol, multi-tenant admission with
/// queue-or-shed backpressure, deadline-aware ETA quotes.
pub mod server {
    pub use cjoin_server::*;
}

/// Thin TCP client: `RemoteEngine` implements `JoinEngine` over the wire, so
/// harness code drives a served engine unchanged.
pub mod client {
    pub use cjoin_client::*;
}

/// Experiment harness reproducing the paper's evaluation.
pub mod bench {
    pub use cjoin_bench::*;
}

// Convenience re-exports of the most commonly used types.
pub use cjoin_baseline::{BaselineConfig, BaselineEngine};
pub use cjoin_client::RemoteEngine;
pub use cjoin_common::{Error, Result};
pub use cjoin_core::{CjoinConfig, CjoinEngine, QueryHandle};
pub use cjoin_galaxy::{GalaxyEngine, GalaxyQuery};
pub use cjoin_query::{
    AggFunc, AggregateSpec, ColumnRef, EngineStats, JoinEngine, Predicate, QueryResult,
    QueryTicket, StarQuery,
};
pub use cjoin_server::{CjoinServer, ServerConfig};
pub use cjoin_ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};
pub use cjoin_storage::{Catalog, SnapshotId};
