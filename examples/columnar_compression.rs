//! Column stores and compressed tables (§5): build a columnar, compressed replica of
//! the SSB fact table and show how a projected continuous scan moves only the bytes
//! the current query mix actually needs.
//!
//! ```text
//! cargo run --release --example columnar_compression
//! ```

use std::sync::Arc;

use cjoin_repro::ssb::{SsbConfig, SsbDataSet};
use cjoin_repro::storage::{
    ColumnarContinuousScan, ColumnarTable, CompressionPolicy, ScanBatch, ScanVolume,
};

fn main() -> cjoin_repro::Result<()> {
    // ------------------------------------------------------------------
    // 1. Generate an SSB instance and take its lineorder fact table.
    // ------------------------------------------------------------------
    let data = SsbDataSet::generate(SsbConfig::new(0.01, 42));
    let catalog = data.catalog();
    let lineorder = catalog.fact_table()?;
    println!(
        "lineorder: {} rows, {} columns\n",
        lineorder.len(),
        lineorder.schema().arity()
    );

    // ------------------------------------------------------------------
    // 2. Build columnar replicas under both compression policies.
    // ------------------------------------------------------------------
    let plain = Arc::new(ColumnarTable::from_table(
        &lineorder,
        CompressionPolicy::Plain,
    )?);
    let adaptive = Arc::new(ColumnarTable::from_table(
        &lineorder,
        CompressionPolicy::Adaptive,
    )?);

    println!("per-column footprint (bytes), row-store vs. columnar:");
    println!(
        "{:<18} {:>12} {:>12} {:>12}",
        "column", "row-store", "dict/plain", "dict+RLE"
    );
    for (idx, column) in lineorder.schema().columns().iter().enumerate() {
        println!(
            "{:<18} {:>12} {:>12} {:>12}",
            column.name,
            plain.column_plain_bytes(idx),
            plain.column_encoded_bytes(idx),
            adaptive.column_encoded_bytes(idx),
        );
    }
    println!(
        "\ntotal: {} bytes row-store, {} bytes columnar (x{:.1}), {} bytes compressed (x{:.1})\n",
        plain.total_plain_bytes(),
        plain.total_encoded_bytes(),
        plain.compression_ratio(),
        adaptive.total_encoded_bytes(),
        adaptive.compression_ratio(),
    );

    // ------------------------------------------------------------------
    // 3. Compare one full pass of the continuous scan: all columns vs. only the
    //    columns a typical query mix touches (date, discount, quantity, revenue).
    // ------------------------------------------------------------------
    let rows = adaptive.len();
    let run_pass = |scan: &mut ColumnarContinuousScan| {
        let mut batch = ScanBatch::default();
        let mut seen = 0usize;
        while seen < rows {
            scan.next_batch(&mut batch);
            seen += batch.len();
        }
    };

    let full_volume = Arc::new(ScanVolume::new());
    let mut full_scan = ColumnarContinuousScan::new(Arc::clone(&adaptive))
        .with_batch_rows(4096)
        .with_volume(Arc::clone(&full_volume));
    run_pass(&mut full_scan);

    let projection =
        adaptive.projection_of(&["lo_orderdate", "lo_discount", "lo_quantity", "lo_revenue"])?;
    let narrow_volume = Arc::new(ScanVolume::new());
    let mut narrow_scan =
        ColumnarContinuousScan::with_projection(Arc::clone(&adaptive), projection)
            .with_batch_rows(4096)
            .with_volume(Arc::clone(&narrow_volume));
    run_pass(&mut narrow_scan);

    println!("one continuous-scan pass over {} rows:", rows);
    println!(
        "  all {} columns:        {:>12} bytes touched",
        adaptive.schema().arity(),
        full_volume.bytes_scanned()
    );
    println!(
        "  4 projected columns:   {:>12} bytes touched ({:.1}% of the full scan)",
        narrow_volume.bytes_scanned(),
        100.0 * narrow_volume.bytes_scanned() as f64 / full_volume.bytes_scanned().max(1) as f64
    );
    println!(
        "\nThe CJOIN continuous scan over a column store therefore moves only the columns\n\
         referenced by the in-flight query mix, exactly as §5 describes."
    );
    Ok(())
}
