//! Mixed queries and updates under snapshot isolation (§3.5).
//!
//! The warehouse keeps loading new `lineorder` rows while analysts run star queries.
//! Each query is tagged with the snapshot it reads; the CJOIN Preprocessor evaluates
//! snapshot visibility as a virtual fact-table predicate, so queries pinned to an old
//! snapshot keep returning consistent answers while newer queries see the fresh data
//! — all inside the same shared pipeline.
//!
//! ```text
//! cargo run --release --example realtime_updates
//! ```

use std::sync::Arc;

use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::query::{AggFunc, AggregateSpec, ColumnRef, Predicate, StarQuery};
use cjoin_repro::ssb::{schema::join_columns, SsbConfig, SsbDataSet};
use cjoin_repro::storage::{Row, Value};

fn count_asia_revenue(name: &str, snapshot: Option<cjoin_repro::SnapshotId>) -> StarQuery {
    let (c_key, c_fk) = join_columns("customer").unwrap();
    let mut builder = StarQuery::builder(name)
        .join_dimension("customer", c_fk, c_key, Predicate::eq("c_region", "ASIA"))
        .aggregate(AggregateSpec::count_star())
        .aggregate(AggregateSpec::over(
            AggFunc::Sum,
            ColumnRef::fact("lo_revenue"),
        ));
    if let Some(snapshot) = snapshot {
        builder = builder.snapshot(snapshot);
    }
    builder.build()
}

fn main() -> cjoin_repro::Result<()> {
    let data = SsbDataSet::generate(SsbConfig::new(0.005, 5));
    let catalog = data.catalog();
    let engine = CjoinEngine::start(Arc::clone(&catalog), CjoinConfig::default())?;

    // A long-running report pinned to the current snapshot.
    let initial_snapshot = catalog.snapshots().current();
    let before = engine.submit(count_asia_revenue(
        "report_before_load",
        Some(initial_snapshot),
    ))?;

    // Meanwhile, the nightly load commits a new batch of fact rows (an update
    // transaction): 5 000 extra lineorder rows for customer 1 become visible only to
    // later snapshots.
    let fact = catalog.fact_table()?;
    let load_snapshot = catalog.snapshots().commit();
    let template = fact.row(cjoin_repro::storage::RowId(0)).expect("row 0");
    let new_rows = (0..5_000).map(|i| {
        let mut values: Vec<Value> = template.values().to_vec();
        values[2] = Value::int(1); // lo_custkey
        values[12] = Value::int(1_000 + i); // lo_revenue
        Row::new(values)
    });
    fact.insert_batch_unchecked(new_rows, load_snapshot);
    println!("committed a load of 5000 rows at snapshot {load_snapshot:?}\n");

    // A fresh ad-hoc query sees the newly loaded data; the pinned report does not.
    let after = engine.submit(count_asia_revenue("report_after_load", Some(load_snapshot)))?;

    let before_result = before.wait()?;
    let after_result = after.wait()?;
    println!("pinned to snapshot {initial_snapshot:?} (before the load):");
    print!("{before_result}");
    println!("\nreading snapshot {load_snapshot:?} (after the load):");
    print!("{after_result}");

    let stats = engine.stats();
    println!("\nboth queries shared the same pipeline:");
    println!("  scan passes: {}", stats.scan_passes);
    println!("  queries completed: {}", stats.queries_completed);

    engine.shutdown();
    Ok(())
}
