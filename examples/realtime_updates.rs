//! Durable near-real-time ingestion under snapshot isolation (§2.1, §3.5).
//!
//! The full semi-stream scenario: a durable fact feed appends `lineorder`
//! batches through the write-ahead log while a dimension update stream mutates
//! `customer` rows — and a long-running report pinned to its admission
//! snapshot keeps returning consistent answers through all of it. Every batch
//! is logged, group-committed and only then made visible atomically; the
//! example finishes by "crashing" (dropping the engine), recovering a fresh
//! warehouse from the WAL and showing the recovered answer is identical.
//!
//! ```text
//! cargo run --release --example realtime_updates
//! ```

use std::sync::Arc;

use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::query::{AggFunc, AggregateSpec, ColumnRef, Predicate, StarQuery};
use cjoin_repro::ssb::{schema::join_columns, SsbConfig, SsbDataSet};
use cjoin_repro::storage::Value;

fn asia_revenue(name: &str, snapshot: Option<cjoin_repro::SnapshotId>) -> StarQuery {
    let (c_key, c_fk) = join_columns("customer").unwrap();
    let mut builder = StarQuery::builder(name)
        .join_dimension("customer", c_fk, c_key, Predicate::eq("c_region", "ASIA"))
        .aggregate(AggregateSpec::count_star())
        .aggregate(AggregateSpec::over(
            AggFunc::Sum,
            ColumnRef::fact("lo_revenue"),
        ));
    if let Some(snapshot) = snapshot {
        builder = builder.snapshot(snapshot);
    }
    builder.build()
}

fn main() -> cjoin_repro::Result<()> {
    let ssb_config = SsbConfig::new(0.005, 5);
    let data = SsbDataSet::generate(ssb_config.clone());
    let catalog = data.catalog();

    let mut wal = std::env::temp_dir();
    wal.push(format!("cjoin-realtime-updates-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    let config = CjoinConfig::default().with_wal(&wal);
    let engine = CjoinEngine::start(Arc::clone(&catalog), config)?;

    // A long-running report pinned to the pre-ingest snapshot.
    let initial_snapshot = catalog.snapshots().current();
    let pinned = engine.submit(asia_revenue("report_before_feed", Some(initial_snapshot)))?;

    // Pick the feed's protagonists from the data: an ASIA customer whose new
    // orders the fresh report must count, and a non-ASIA customer about to be
    // moved into the region by the dimension stream.
    let customer = catalog.table("customer")?;
    let region = customer.schema().column_index("c_region")?;
    let asia_key = customer
        .select(initial_snapshot, |row| {
            row.get(region).as_str() == Ok("ASIA")
        })
        .first()
        .expect("an ASIA customer")
        .1
        .int(0);
    let (_, moved_row) = customer
        .select(initial_snapshot, |row| {
            row.get(region).as_str() != Ok("ASIA")
        })
        .swap_remove(0);
    let mut moved = moved_row.values().to_vec();
    let moved_key = moved[0].as_int()?;

    // The durable fact feed: three batches of new lineorder rows for the ASIA
    // customer, each logged to the WAL and group-committed. The receipt
    // arrives only once the batch is durable *and* atomically visible.
    let fact = catalog.fact_table()?;
    let template: Vec<Value> = fact
        .row(cjoin_repro::storage::RowId(0))
        .expect("row 0")
        .values()
        .to_vec();
    let custkey = fact.schema().column_index("lo_custkey")?;
    let revenue = fact.schema().column_index("lo_revenue")?;
    for batch in 0..3i64 {
        let mut session = engine.ingest_session();
        for i in 0..1_000i64 {
            let mut values = template.clone();
            values[custkey] = Value::int(asia_key);
            values[revenue] = Value::int(1_000 + batch * 1_000 + i);
            session.append_fact(values);
        }
        let receipt = session.commit()?;
        println!(
            "fact feed: committed batch {batch} as epoch {} ({} records, wal at {} bytes)",
            receipt.epoch, receipt.records, receipt.wal_bytes
        );
    }

    // The dimension update stream: a customer moves to ASIA. The upsert
    // versions the dimension row — the pinned report keeps joining the old
    // version, fresh queries join the new one (and start counting that
    // customer's existing orders).
    moved[region] = Value::str("ASIA");
    let mut session = engine.ingest_session();
    session.upsert_dimension("customer", 0, moved);
    let receipt = session.commit()?;
    println!(
        "dimension stream: customer {moved_key} -> ASIA committed as epoch {}\n",
        receipt.epoch
    );

    // A fresh ad-hoc query sees the feed and the moved customer; the pinned
    // report sees neither.
    let feed_snapshot = catalog.snapshots().current();
    let fresh = engine.submit(asia_revenue("report_after_feed", None))?;
    let pinned_result = pinned.wait()?;
    let fresh_result = fresh.wait()?;
    println!("pinned to snapshot {initial_snapshot:?} (before the feed):");
    print!("{pinned_result}");
    println!("\nreading snapshot {feed_snapshot:?} (after the feed):");
    print!("{fresh_result}");

    let stats = engine.stats();
    println!("\ningest stats (durable path):");
    println!("  records appended: {}", stats.ingest.records_appended);
    println!("  batch commits:    {}", stats.ingest.commits);
    println!("  fsync time:       {} ns", stats.ingest.sync_ns);
    engine.shutdown();
    drop(engine);

    // Crash-recovery: a fresh warehouse (same generator seed, none of the
    // ingested rows) replays the WAL at startup and answers identically.
    let recovered_data = SsbDataSet::generate(ssb_config);
    let recovered_catalog = recovered_data.catalog();
    let recovered_engine = CjoinEngine::start(
        Arc::clone(&recovered_catalog),
        CjoinConfig::default().with_wal(&wal),
    )?;
    let recovered_stats = recovered_engine.stats();
    println!("\nrecovered a fresh warehouse from the WAL:");
    println!(
        "  replay truncations: {}",
        recovered_stats.ingest.recovery_truncations
    );
    let recovered = recovered_engine
        .submit(asia_revenue("report_recovered", None))?
        .wait()?;
    println!(
        "  recovered answer matches pre-crash: {}",
        recovered.approx_eq(&fresh_result)
    );
    print!("{recovered}");

    recovered_engine.shutdown();
    let _ = std::fs::remove_file(&wal);
    Ok(())
}
