//! Fact-table partitioning (§5): date-restricted queries terminate early.
//!
//! The SSB `lineorder` table is naturally range-partitioned by order date (one
//! partition per calendar year). With partition pruning enabled, a query whose fact
//! predicate restricts `lo_orderdate` is tagged with the partitions it needs and its
//! end-of-query control tuple is emitted as soon as the continuous scan has covered
//! those partitions — the query no longer waits for a full wrap-around of the scan.
//!
//! ```text
//! cargo run --release --example partition_pruning
//! ```

use std::sync::Arc;

use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::query::{AggFunc, AggregateSpec, ColumnRef, Predicate, StarQuery};
use cjoin_repro::ssb::{schema::join_columns, SsbConfig, SsbDataSet};

fn revenue_in_1994(name: &str) -> StarQuery {
    let (d_key, d_fk) = join_columns("date").unwrap();
    StarQuery::builder(name)
        // The fact predicate is what partition pruning analyses...
        .fact_predicate(Predicate::between("lo_orderdate", 19940101, 19941231))
        // ...while the date join provides the grouping attribute.
        .join_dimension(
            "date",
            d_fk,
            d_key,
            Predicate::between("d_year", 1994, 1994),
        )
        .group_by(ColumnRef::dim("date", "d_yearmonthnum"))
        .aggregate(AggregateSpec::over(
            AggFunc::Sum,
            ColumnRef::fact("lo_revenue"),
        ))
        .build()
}

fn run(
    with_pruning: bool,
    catalog: &Arc<cjoin_repro::Catalog>,
) -> cjoin_repro::Result<(std::time::Duration, u64)> {
    let config = CjoinConfig {
        partition_pruning: with_pruning,
        ..CjoinConfig::default()
    };
    let engine = CjoinEngine::start(Arc::clone(catalog), config)?;
    let handle = engine.submit(revenue_in_1994(if with_pruning {
        "revenue_1994_pruned"
    } else {
        "revenue_1994_full_scan"
    }))?;
    let (result, elapsed) = handle.wait_with_time()?;
    let scanned = engine.stats().tuples_scanned;
    engine.shutdown();
    println!(
        "  {} result groups, {} fact tuples scanned, {:?} response time",
        result.num_rows(),
        scanned,
        elapsed
    );
    Ok((elapsed, scanned))
}

fn main() -> cjoin_repro::Result<()> {
    // A warehouse that is physically clustered by order date, as range-partitioned
    // fact tables are in practice.
    let data = SsbDataSet::generate(SsbConfig::new(0.01, 13).with_clustering());
    let catalog = data.catalog();
    let scheme = catalog
        .fact_partitioning()
        .expect("SSB declares yearly partitioning");
    println!(
        "lineorder: {} rows in {} yearly partitions\n",
        catalog.fact_table()?.len(),
        scheme.num_partitions()
    );

    println!("query restricted to order year 1994, WITHOUT partition pruning:");
    let (full_time, full_scanned) = run(false, &catalog)?;

    println!("\nsame query WITH partition pruning:");
    let (pruned_time, pruned_scanned) = run(true, &catalog)?;

    println!(
        "\npruning covered the query after ~{:.0}% of the tuples the full wrap-around needed \
         ({} vs {} tuples; {:?} vs {:?})",
        100.0 * pruned_scanned as f64 / full_scanned.max(1) as f64,
        pruned_scanned,
        full_scanned,
        pruned_time,
        full_time,
    );
    Ok(())
}
