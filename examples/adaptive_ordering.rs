//! Run-time filter ordering (§3.4) in action.
//!
//! The optimal order of CJOIN's Filters depends on the *current* query mix: the most
//! selective dimension should filter fact tuples first. This example registers a
//! skewed query mix — every query places a highly selective predicate on `part` but
//! barely filters `date` — and shows the pipeline manager reordering the filter chain
//! from the observed drop rates while queries are running.
//!
//! ```text
//! cargo run --release --example adaptive_ordering
//! ```

use std::sync::Arc;
use std::time::Duration;

use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::query::{AggFunc, AggregateSpec, ColumnRef, Predicate, StarQuery};
use cjoin_repro::ssb::{schema::join_columns, SsbConfig, SsbDataSet};

fn skewed_query(index: usize, num_parts: usize, date_keys: &[i64]) -> StarQuery {
    // Highly selective on part (one key), barely selective on date (80 % of days),
    // and unfiltered on supplier.
    let part_key = (index % num_parts + 1) as i64;
    let date_hi = date_keys[(date_keys.len() * 4 / 5).min(date_keys.len() - 1)];
    let (d_key, d_fk) = join_columns("date").unwrap();
    let (p_key, p_fk) = join_columns("part").unwrap();
    let (s_key, s_fk) = join_columns("supplier").unwrap();
    StarQuery::builder(format!("skewed#{index}"))
        .join_dimension(
            "date",
            d_fk,
            d_key,
            Predicate::between("d_datekey", date_keys[0], date_hi),
        )
        .join_dimension("part", p_fk, p_key, Predicate::eq("p_partkey", part_key))
        .join_dimension("supplier", s_fk, s_key, Predicate::True)
        .group_by(ColumnRef::dim("date", "d_year"))
        .aggregate(AggregateSpec::over(
            AggFunc::Sum,
            ColumnRef::fact("lo_revenue"),
        ))
        .build()
}

fn main() -> cjoin_repro::Result<()> {
    let data = SsbDataSet::generate(SsbConfig::new(0.05, 17));
    let catalog = data.catalog();

    // React quickly so the effect is visible within a short run.
    let config = CjoinConfig {
        reorder_interval_ms: 20,
        ..CjoinConfig::default()
    };
    let engine = CjoinEngine::start(Arc::clone(&catalog), config)?;

    // Register a wave of skewed queries and observe the initial (admission) order.
    let wave: Vec<_> = (0..16)
        .map(|i| engine.submit(skewed_query(i, data.num_parts(), data.date_keys())))
        .collect::<cjoin_repro::Result<_>>()?;
    let admission_order = engine.filter_order();
    println!("filter order right after admission: {admission_order:?}");

    // Watch the order while the queries are still in flight; capture the per-filter
    // statistics mid-run, before completed queries are garbage-collected.
    let mut optimised_order = admission_order.clone();
    let mut mid_run_stats = engine.stats();
    for _ in 0..40 {
        std::thread::sleep(Duration::from_millis(10));
        if engine.active_queries() == 0 {
            break;
        }
        mid_run_stats = engine.stats();
        let current = engine.filter_order();
        if current != optimised_order && !current.is_empty() {
            optimised_order = current;
        }
    }
    println!("filter order after run-time optimisation: {optimised_order:?}");

    for handle in wave {
        let _ = handle.wait()?;
    }

    println!("\nper-filter statistics observed mid-run:");
    for f in &mid_run_stats.filters {
        println!(
            "  {:<10} entries={:<6} probes={:<8} drop rate={:.1}%",
            f.dimension,
            f.entries,
            f.probes,
            f.drop_rate() * 100.0
        );
    }
    println!(
        "\nfilter reorders applied by the pipeline manager: {}",
        engine.stats().filter_reorders
    );
    println!("(the most selective dimension — part, one key per query — should now sit first)");

    engine.shutdown();
    Ok(())
}
