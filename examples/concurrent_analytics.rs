//! The paper's motivating scenario: many analysts firing ad-hoc star queries at the
//! same warehouse at once ("workload fear", §1).
//!
//! Generates a laptop-scale Star Schema Benchmark instance, then runs the same
//! 64-query ad-hoc workload three ways — through the shared CJOIN pipeline, through
//! the independent-scan query-at-a-time baseline ("System X"), and through the
//! synchronized-scan baseline (PostgreSQL-like) — and compares throughput and
//! response-time behaviour.
//!
//! ```text
//! cargo run --release --example concurrent_analytics
//! ```

use std::sync::Arc;

use cjoin_repro::baseline::{BaselineConfig, BaselineEngine};
use cjoin_repro::bench::{run_closed_loop, JoinEngine};
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};

const CONCURRENCY: usize = 64;
const TOTAL_QUERIES: usize = 128;

fn main() -> cjoin_repro::Result<()> {
    // A ~60k-row lineorder instance (SSB scale factor 0.01).
    let data = SsbDataSet::generate(SsbConfig::new(0.01, 7));
    let catalog = data.catalog();
    println!(
        "SSB instance: {} lineorder rows, {} customers, {} suppliers, {} parts\n",
        catalog.fact_table()?.len(),
        data.num_customers(),
        data.num_suppliers(),
        data.num_parts()
    );

    // An ad-hoc workload: 128 queries drawn from the SSB templates, each selecting
    // ~1% of the dimensions it touches.
    let workload = Workload::generate(&data, WorkloadConfig::new(TOTAL_QUERIES, 0.01, 99));

    // --- CJOIN: one always-on shared plan -----------------------------------
    let cjoin = CjoinEngine::start(Arc::clone(&catalog), CjoinConfig::default())?;
    let cjoin_report = run_closed_loop(&cjoin, workload.queries(), CONCURRENCY)?;
    let stats = cjoin.stats();
    cjoin.shutdown();

    // --- Query-at-a-time baselines -------------------------------------------
    let system_x = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::system_x());
    let system_x_report = run_closed_loop(&system_x, workload.queries(), CONCURRENCY)?;

    let postgres = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::postgres_like());
    let postgres_report = run_closed_loop(&postgres, workload.queries(), CONCURRENCY)?;

    // --- Report ---------------------------------------------------------------
    println!(
        "{:<28} {:>14} {:>16} {:>16}",
        "engine", "throughput", "mean response", "wall time"
    );
    for (name, report) in [
        (JoinEngine::name(&cjoin), &cjoin_report),
        (JoinEngine::name(&system_x), &system_x_report),
        (JoinEngine::name(&postgres), &postgres_report),
    ] {
        println!(
            "{:<28} {:>10.0} q/h {:>13.1} ms {:>13.1} ms",
            name,
            report.throughput_qph(),
            report.mean_response().as_secs_f64() * 1e3,
            report.wall_time.as_secs_f64() * 1e3,
        );
    }

    println!("\nwhat sharing bought (CJOIN internals):");
    println!("  scan passes over the fact table: {}", stats.scan_passes);
    println!(
        "  vs. {} full scans the query-at-a-time engines performed ({} queries each scanning once)",
        TOTAL_QUERIES * 2,
        TOTAL_QUERIES
    );
    println!(
        "  fact tuples scanned once, filtered for all queries: {}",
        stats.tuples_scanned
    );
    println!(
        "  (tuple, query) routings at the distributor:          {}",
        stats.routings
    );
    println!(
        "  filter order chosen at run time:                     {:?}",
        stats
            .filters
            .iter()
            .map(|f| format!("{} ({:.0}% drop)", f.dimension, f.drop_rate() * 100.0))
            .collect::<Vec<_>>()
    );
    Ok(())
}
