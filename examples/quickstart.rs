//! Quickstart: build a tiny star schema by hand, start the always-on CJOIN pipeline,
//! and run a few concurrent star queries against it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::query::{AggFunc, AggregateSpec, ColumnRef, Predicate, StarQuery};
use cjoin_repro::storage::{Catalog, Column, Schema, SnapshotId, Table, Value};

fn main() -> cjoin_repro::Result<()> {
    // ------------------------------------------------------------------
    // 1. Build a miniature warehouse: sales fact table + two dimensions.
    // ------------------------------------------------------------------
    let catalog = Arc::new(Catalog::new());

    let region = Table::new(Schema::new(
        "region",
        vec![Column::int("r_key"), Column::str("r_name")],
    ));
    for (k, name) in [(1, "EUROPE"), (2, "ASIA"), (3, "AMERICA")] {
        region.insert(vec![Value::int(k), Value::str(name)], SnapshotId::INITIAL)?;
    }

    let product = Table::new(Schema::new(
        "product",
        vec![Column::int("p_key"), Column::str("p_category")],
    ));
    for (k, cat) in [
        (1, "widgets"),
        (2, "gadgets"),
        (3, "gizmos"),
        (4, "widgets"),
    ] {
        product.insert(vec![Value::int(k), Value::str(cat)], SnapshotId::INITIAL)?;
    }

    let sales = Table::new(Schema::new(
        "sales",
        vec![
            Column::int("s_regionkey"),
            Column::int("s_productkey"),
            Column::int("s_amount"),
        ],
    ));
    for i in 0..10_000i64 {
        sales.insert(
            vec![
                Value::int(i % 3 + 1),
                Value::int(i % 4 + 1),
                Value::int(10 + i % 90),
            ],
            SnapshotId::INITIAL,
        )?;
    }

    catalog.add_table(Arc::new(region));
    catalog.add_table(Arc::new(product));
    catalog.add_fact_table(Arc::new(sales));

    // ------------------------------------------------------------------
    // 2. Start the always-on CJOIN pipeline.
    // ------------------------------------------------------------------
    let engine = CjoinEngine::start(Arc::clone(&catalog), CjoinConfig::default())?;
    println!(
        "CJOIN pipeline started over {} fact rows\n",
        catalog.fact_table()?.len()
    );

    // ------------------------------------------------------------------
    // 3. Register several star queries; they all share one fact-table scan.
    // ------------------------------------------------------------------
    let revenue_by_region = StarQuery::builder("revenue_by_region")
        .join_dimension("region", "s_regionkey", "r_key", Predicate::True)
        .group_by(ColumnRef::dim("region", "r_name"))
        .aggregate(AggregateSpec::over(
            AggFunc::Sum,
            ColumnRef::fact("s_amount"),
        ))
        .aggregate(AggregateSpec::count_star())
        .build();

    let widget_sales_in_europe = StarQuery::builder("widget_sales_in_europe")
        .join_dimension(
            "region",
            "s_regionkey",
            "r_key",
            Predicate::eq("r_name", "EUROPE"),
        )
        .join_dimension(
            "product",
            "s_productkey",
            "p_key",
            Predicate::eq("p_category", "widgets"),
        )
        .aggregate(AggregateSpec::over(
            AggFunc::Sum,
            ColumnRef::fact("s_amount"),
        ))
        .aggregate(AggregateSpec::over(
            AggFunc::Avg,
            ColumnRef::fact("s_amount"),
        ))
        .build();

    let sales_by_category = StarQuery::builder("sales_by_category")
        .join_dimension("product", "s_productkey", "p_key", Predicate::True)
        .group_by(ColumnRef::dim("product", "p_category"))
        .aggregate(AggregateSpec::count_star())
        .build();

    // Submit all three at once: one shared plan evaluates them together.
    let handles: Vec<_> = [revenue_by_region, widget_sales_in_europe, sales_by_category]
        .into_iter()
        .map(|q| engine.submit(q))
        .collect::<cjoin_repro::Result<_>>()?;

    for handle in handles {
        let name = handle.name().to_string();
        let submission = handle.submission_time();
        let (result, response) = handle.wait_with_time()?;
        println!("=== {name} (admitted in {submission:?}, answered in {response:?}) ===");
        print!("{result}");
        println!();
    }

    // ------------------------------------------------------------------
    // 4. Inspect what the shared pipeline did.
    // ------------------------------------------------------------------
    let stats = engine.stats();
    println!("pipeline statistics:");
    println!("  fact tuples scanned:   {}", stats.tuples_scanned);
    println!("  scan passes completed: {}", stats.scan_passes);
    println!("  tuples to distributor: {}", stats.tuples_distributed);
    println!("  filter order:          {:?}", engine.filter_order());

    engine.shutdown();
    Ok(())
}
