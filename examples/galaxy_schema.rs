//! Galaxy schema (§5 "Galaxy Schemata"): two fact tables — `orders` and `shipments` —
//! share conformed dimensions and are joined on the customer key. The query is
//! decomposed into two star sub-queries, each registered with the CJOIN operator of
//! its fact table, and the star results are piped into a fact-to-fact join operator.
//!
//! ```text
//! cargo run --release --example galaxy_schema
//! ```

use std::sync::Arc;

use cjoin_repro::cjoin::CjoinConfig;
use cjoin_repro::galaxy::{self, GalaxyAggregateSpec, GalaxyEngine, GalaxyQuery, Side, SideSpec};
use cjoin_repro::query::{AggFunc, AggregateSpec, ColumnRef, Predicate, StarQuery};
use cjoin_repro::storage::{Catalog, Column, Row, Schema, SnapshotId, Table, Value};

fn main() -> cjoin_repro::Result<()> {
    // ------------------------------------------------------------------
    // 1. Build a small galaxy: two fact tables sharing a customer dimension.
    // ------------------------------------------------------------------
    let catalog = Arc::new(Catalog::new());

    let customer = Table::new(Schema::new(
        "customer",
        vec![
            Column::int("c_custkey"),
            Column::str("c_region"),
            Column::str("c_segment"),
        ],
    ));
    for k in 0..200i64 {
        let region = ["ASIA", "EUROPE", "AMERICA"][(k % 3) as usize];
        let segment = ["consumer", "corporate"][(k % 2) as usize];
        customer.insert(
            vec![Value::int(k), Value::str(region), Value::str(segment)],
            SnapshotId::INITIAL,
        )?;
    }
    catalog.add_table(Arc::new(customer));

    // Fact table 1: orders placed by customers.
    let orders = Table::new(Schema::new(
        "orders",
        vec![
            Column::int("o_custkey"),
            Column::int("o_orderdate"),
            Column::int("o_amount"),
        ],
    ));
    orders.insert_batch_unchecked(
        (0..50_000i64).map(|i| {
            Row::new(vec![
                Value::int(i % 200),
                Value::int(19940101 + i % 365),
                Value::int(20 + i % 500),
            ])
        }),
        SnapshotId::INITIAL,
    );
    catalog.add_table(Arc::new(orders));

    // Fact table 2: shipments delivered to customers.
    let shipments = Table::new(Schema::new(
        "shipments",
        vec![
            Column::int("sh_custkey"),
            Column::int("sh_weight"),
            Column::int("sh_delay_days"),
        ],
    ));
    shipments.insert_batch_unchecked(
        (0..30_000i64).map(|i| {
            Row::new(vec![
                Value::int(i % 150),
                Value::int(1 + i % 40),
                Value::int(i % 9),
            ])
        }),
        SnapshotId::INITIAL,
    );
    catalog.add_table(Arc::new(shipments));

    // ------------------------------------------------------------------
    // 2. Start one always-on CJOIN pipeline per fact table.
    // ------------------------------------------------------------------
    let engine = GalaxyEngine::start(
        Arc::clone(&catalog),
        "orders",
        "shipments",
        CjoinConfig::default().with_worker_threads(2),
    )?;
    println!(
        "galaxy engine started: {} orders rows, {} shipments rows\n",
        catalog.table("orders")?.len(),
        catalog.table("shipments")?.len()
    );

    // ------------------------------------------------------------------
    // 3. A fact-to-fact join query: order volume vs. shipment delays per region,
    //    restricted to Asian consumer customers on the order side.
    // ------------------------------------------------------------------
    let galaxy_query = GalaxyQuery::builder("orders_vs_shipments_by_region")
        .side_a(
            SideSpec::new("orders", "o_custkey")
                .fact_predicate(Predicate::between("o_orderdate", 19940101, 19940199))
                .join_dimension(
                    "customer",
                    "o_custkey",
                    "c_custkey",
                    Predicate::eq("c_segment", "consumer"),
                ),
        )
        .side_b(SideSpec::new("shipments", "sh_custkey"))
        .group_by(Side::A, ColumnRef::dim("customer", "c_region"))
        .aggregate(GalaxyAggregateSpec::count_star())
        .aggregate(GalaxyAggregateSpec::over(
            AggFunc::Sum,
            Side::A,
            ColumnRef::fact("o_amount"),
        ))
        .aggregate(GalaxyAggregateSpec::over(
            AggFunc::Avg,
            Side::B,
            ColumnRef::fact("sh_delay_days"),
        ))
        .aggregate(GalaxyAggregateSpec::over(
            AggFunc::Max,
            Side::B,
            ColumnRef::fact("sh_weight"),
        ))
        .build();

    // A plain star query over the orders fact table, submitted alongside: it shares
    // side A's pipeline with the galaxy sub-query.
    let star_query = StarQuery::builder("order_volume_by_segment")
        .join_dimension("customer", "o_custkey", "c_custkey", Predicate::True)
        .group_by(ColumnRef::dim("customer", "c_segment"))
        .aggregate(AggregateSpec::over(
            AggFunc::Sum,
            ColumnRef::fact("o_amount"),
        ))
        .aggregate(AggregateSpec::count_star())
        .build();

    let galaxy_handle = engine.submit(galaxy_query.clone())?;
    let star_handle = engine.engine(Side::A).submit(star_query)?;

    // ------------------------------------------------------------------
    // 4. Collect the results and cross-check the galaxy result with the oracle.
    // ------------------------------------------------------------------
    let expected = galaxy::reference::evaluate(&catalog, &galaxy_query, SnapshotId::INITIAL)?;
    let galaxy_result = galaxy_handle.wait()?;
    println!("=== orders_vs_shipments_by_region ===");
    print!("{galaxy_result}");
    println!(
        "matches the nested-join reference oracle: {}\n",
        galaxy_result.approx_eq(&expected)
    );

    let star_result = star_handle.wait()?;
    println!("=== order_volume_by_segment (plain star query on side A) ===");
    print!("{star_result}");
    println!();

    // ------------------------------------------------------------------
    // 5. Show what each side's shared pipeline did.
    // ------------------------------------------------------------------
    for side in [Side::A, Side::B] {
        let stats = engine.engine(side).stats();
        println!(
            "side {} ({}): scanned {} tuples, admitted {} queries, completed {}",
            side.label(),
            engine.fact_table(side),
            stats.tuples_scanned,
            stats.queries_admitted,
            stats.queries_completed
        );
    }

    engine.shutdown();
    Ok(())
}
