//! Figure 6 — predictability: response time of the paper's reference template (Q4.2)
//! as the level of concurrency grows. The benchmark measures the wall time of a
//! Q4.2-only closed-loop run; the per-query mean and standard deviation are reported
//! by the `experiments fig6` binary.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cjoin_repro::baseline::{BaselineConfig, BaselineEngine};
use cjoin_repro::bench::run_closed_loop;
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    let data = SsbDataSet::generate(SsbConfig::new(0.002, 61));
    let catalog = data.catalog();

    let mut group = c.benchmark_group("fig6_predictability_q42");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    for n in [1usize, 16, 64] {
        let workload = Workload::generate(
            &data,
            WorkloadConfig::new(n, 0.01, 61).with_template("Q4.2"),
        );
        group.bench_with_input(BenchmarkId::new("cjoin", n), &n, |b, &n| {
            b.iter(|| {
                let engine = CjoinEngine::start(
                    Arc::clone(&catalog),
                    CjoinConfig::default()
                        .with_worker_threads(4)
                        .with_max_concurrency(n.max(4)),
                )
                .unwrap();
                let report = run_closed_loop(&engine, workload.queries(), n).unwrap();
                engine.shutdown();
                report.mean_response_of("Q4.2")
            });
        });
        group.bench_with_input(BenchmarkId::new("system_x", n), &n, |b, &n| {
            b.iter(|| {
                let engine = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::system_x());
                run_closed_loop(&engine, workload.queries(), n)
                    .unwrap()
                    .mean_response_of("Q4.2")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
