//! Ablation — scan parallelism (the `scan_workers` knob): the continuous-scan
//! front-end as the classic single Preprocessor thread versus 2 or 4 segment
//! scan workers behind the admission coordinator, at both a classic and a
//! 4-shard aggregation stage. Each sample drives a fig5-style closed-loop
//! workload through a full `CjoinEngine`, so the measurement includes admission
//! coordination, segment-boundary stalls and the end-of-query drain barrier, not
//! just the raw segment cursors. The oracle-backed equivalence of all
//! `scan_workers` settings is asserted by `tests/scan_parallelism.rs` and
//! `tests/engine_equivalence.rs`; this bench only measures.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use cjoin_repro::bench::experiments::ExperimentParams;
use cjoin_repro::bench::hotpath::end_to_end_scan_workers;

fn bench(c: &mut Criterion) {
    let params = ExperimentParams::quick();
    let concurrency = 8;

    let mut group = c.benchmark_group("abl_scan_parallelism");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));

    for shards in [1usize, 4] {
        for scan_workers in [1usize, 2, 4] {
            group.bench_function(format!("scan_{scan_workers}_shards_{shards}"), |b| {
                b.iter(|| {
                    end_to_end_scan_workers(&params, concurrency, scan_workers, shards).unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
