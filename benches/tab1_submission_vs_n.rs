//! Table 1 — query submission (admission) overhead vs. the number of concurrent
//! queries. Benchmarks the admission path alone: Algorithm 1 up to the insertion of
//! the query-start control tuple, with a varying number of queries already registered.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    let data = SsbDataSet::generate(SsbConfig::new(0.002, 71));
    let catalog = data.catalog();

    let mut group = c.benchmark_group("tab1_submission_vs_n");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    for already_registered in [0usize, 16, 64] {
        let background = Workload::generate(
            &data,
            WorkloadConfig::new(already_registered.max(1), 0.01, 71),
        );
        let probe = Workload::generate(
            &data,
            WorkloadConfig::new(32, 0.01, 72).with_template("Q4.2"),
        );
        group.bench_with_input(
            BenchmarkId::new("admission", already_registered),
            &already_registered,
            |b, &already_registered| {
                // Keep `already_registered` long-lived queries in the pipeline and
                // measure the admission latency of additional Q4.2 queries.
                let engine = CjoinEngine::start(
                    Arc::clone(&catalog),
                    CjoinConfig::default()
                        .with_worker_threads(2)
                        .with_max_concurrency(already_registered + 64),
                )
                .unwrap();
                let _background: Vec<_> = background
                    .queries()
                    .iter()
                    .take(already_registered)
                    .map(|q| engine.submit(q.clone()).unwrap())
                    .collect();
                let mut next = 0usize;
                b.iter(|| {
                    let query = &probe.queries()[next % probe.len()];
                    next += 1;
                    let handle = engine.submit(query.clone()).unwrap();
                    let submission = handle.submission_time();
                    // Wait so the pipeline does not accumulate unbounded queries.
                    let _ = handle.wait().unwrap();
                    submission
                });
                engine.shutdown();
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
