//! Ablation — run-time filter ordering (§3.4): adaptive ordering vs. the admission
//! (arrival) order, on a workload whose selectivities are skewed so that the arrival
//! order is maximally wrong (the unselective date filter is admitted first, the
//! highly selective part filter last).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use cjoin_repro::bench::run_closed_loop;
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::query::{AggregateSpec, Predicate};
use cjoin_repro::ssb::{schema::join_columns, SsbConfig, SsbDataSet};

use cjoin_repro::{AggFunc, ColumnRef, StarQuery};

const CONCURRENCY: usize = 12;

fn skewed_queries() -> Vec<StarQuery> {
    let (d_key, d_fk) = join_columns("date").unwrap();
    let (p_key, p_fk) = join_columns("part").unwrap();
    let (s_key, s_fk) = join_columns("supplier").unwrap();
    (0..CONCURRENCY)
        .map(|i| {
            StarQuery::builder(format!("skew#{i}"))
                // Unselective date predicate, admitted as the first filter.
                .join_dimension("date", d_fk, d_key, Predicate::True)
                // Unselective supplier predicate.
                .join_dimension("supplier", s_fk, s_key, Predicate::True)
                // Extremely selective part predicate, admitted last.
                .join_dimension(
                    "part",
                    p_fk,
                    p_key,
                    Predicate::eq("p_partkey", (i + 1) as i64),
                )
                .aggregate(AggregateSpec::over(
                    AggFunc::Sum,
                    ColumnRef::fact("lo_revenue"),
                ))
                .build()
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let data = SsbDataSet::generate(SsbConfig::new(0.004, 112));
    let catalog = data.catalog();
    let queries = skewed_queries();

    let mut group = c.benchmark_group("abl_filter_ordering");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    for (label, adaptive) in [("adaptive", true), ("arrival_order", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = CjoinConfig {
                    adaptive_filter_ordering: adaptive,
                    reorder_interval_ms: 5,
                    ..CjoinConfig::default()
                        .with_worker_threads(4)
                        .with_max_concurrency(32)
                };
                let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
                let report = run_closed_loop(&engine, &queries, CONCURRENCY).unwrap();
                engine.shutdown();
                report.timings.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
