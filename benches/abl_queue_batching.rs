//! Ablation — tuple batching and the pooled batch allocator (§4): the pipeline hands
//! tuples between threads in batches to amortise queue synchronisation, and recycles
//! batch allocations through a pool. This benchmark varies the batch size and toggles
//! the pool.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cjoin_repro::bench::run_closed_loop;
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};

const CONCURRENCY: usize = 16;

fn bench(c: &mut Criterion) {
    let data = SsbDataSet::generate(SsbConfig::new(0.002, 113));
    let catalog = data.catalog();
    let workload = Workload::generate(&data, WorkloadConfig::new(CONCURRENCY, 0.02, 113));

    let mut group = c.benchmark_group("abl_queue_batching");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    for batch_size in [32usize, 256, 2048] {
        group.bench_with_input(
            BenchmarkId::new("batch_size", batch_size),
            &batch_size,
            |b, &batch_size| {
                b.iter(|| {
                    let config = CjoinConfig::default()
                        .with_worker_threads(4)
                        .with_max_concurrency(32)
                        .with_batch_size(batch_size);
                    let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
                    let report = run_closed_loop(&engine, workload.queries(), CONCURRENCY).unwrap();
                    engine.shutdown();
                    report.timings.len()
                });
            },
        );
    }

    for (label, use_pool) in [("pool_enabled", true), ("pool_disabled", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = CjoinConfig {
                    use_batch_pool: use_pool,
                    ..CjoinConfig::default()
                        .with_worker_threads(4)
                        .with_max_concurrency(32)
                };
                let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
                let report = run_closed_loop(&engine, workload.queries(), CONCURRENCY).unwrap();
                engine.shutdown();
                report.timings.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
