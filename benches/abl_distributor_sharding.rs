//! Ablation — Distributor sharding (the `distributor_shards` knob): the final
//! aggregation stage as a single Distributor thread versus a router plus 2 or 4
//! parallel aggregation shards behind an end-of-query merge barrier. Each sample
//! drives a fig5-style closed-loop workload through a full `CjoinEngine`, so the
//! measurement includes the routing and merge overhead, not just the shard
//! workers. The oracle-backed equivalence of all shard counts is asserted by
//! `tests/distributor_sharding.rs`; this bench only measures.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use cjoin_repro::bench::experiments::ExperimentParams;
use cjoin_repro::bench::hotpath::end_to_end_sharding;

fn bench(c: &mut Criterion) {
    let params = ExperimentParams::quick();
    let concurrency = 8;

    let mut group = c.benchmark_group("abl_distributor_sharding");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));

    for shards in [1usize, 2, 4] {
        group.bench_function(format!("shards_{shards}"), |b| {
            b.iter(|| end_to_end_sharding(&params, concurrency, shards).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
