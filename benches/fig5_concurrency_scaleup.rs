//! Figure 5 — throughput as the number of concurrent queries grows, for CJOIN and the
//! two query-at-a-time baselines. Each measured point is one closed-loop run of an
//! `n`-query workload at concurrency `n`; throughput is `n / wall-time`.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cjoin_repro::baseline::{BaselineConfig, BaselineEngine};
use cjoin_repro::bench::run_closed_loop;
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    let data = SsbDataSet::generate(SsbConfig::new(0.002, 51));
    let catalog = data.catalog();

    let mut group = c.benchmark_group("fig5_concurrency_scaleup");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    for n in [1usize, 16, 64] {
        let workload = Workload::generate(&data, WorkloadConfig::new(n, 0.01, 51));
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("cjoin", n), &n, |b, &n| {
            b.iter(|| {
                let engine = CjoinEngine::start(
                    Arc::clone(&catalog),
                    CjoinConfig::default()
                        .with_worker_threads(4)
                        .with_max_concurrency(n.max(4)),
                )
                .unwrap();
                let report = run_closed_loop(&engine, workload.queries(), n).unwrap();
                engine.shutdown();
                report.timings.len()
            });
        });

        group.bench_with_input(BenchmarkId::new("system_x", n), &n, |b, &n| {
            b.iter(|| {
                let engine = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::system_x());
                run_closed_loop(&engine, workload.queries(), n)
                    .unwrap()
                    .timings
                    .len()
            });
        });

        group.bench_with_input(BenchmarkId::new("postgresql", n), &n, |b, &n| {
            b.iter(|| {
                let engine =
                    BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::postgres_like());
                run_closed_loop(&engine, workload.queries(), n)
                    .unwrap()
                    .timings
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
