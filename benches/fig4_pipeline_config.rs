//! Figure 4 — horizontal vs. vertical pipeline configuration.
//!
//! Benchmarks one closed-loop workload run through the CJOIN pipeline for each stage
//! layout and thread count, at a laptop-scale parameter point. The full sweep
//! (the paper's 1–5 thread series) is produced by
//! `cargo run --release -p cjoin-bench --bin experiments -- fig4`.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cjoin_repro::bench::run_closed_loop;
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine, StageLayout};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    let data = SsbDataSet::generate(SsbConfig::new(0.002, 41));
    let catalog = data.catalog();
    let workload = Workload::generate(&data, WorkloadConfig::new(16, 0.02, 41));

    let mut group = c.benchmark_group("fig4_pipeline_config");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    for threads in [1usize, 2, 4] {
        for (label, layout) in [
            ("horizontal", StageLayout::Horizontal),
            ("vertical", StageLayout::Vertical),
        ] {
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter(|| {
                    let config = CjoinConfig::default()
                        .with_worker_threads(threads)
                        .with_max_concurrency(32)
                        .with_stage_layout(layout.clone());
                    let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
                    let report = run_closed_loop(&engine, workload.queries(), 16).unwrap();
                    engine.shutdown();
                    report.timings.len()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
