//! Table 3 — query submission overhead vs. data scale factor: dimension tables grow
//! (sub-linearly) with the scale factor, so admission-time predicate evaluation and
//! hash-table loading grow with them while the fixed costs stay constant.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tab3_submission_vs_sf");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    for scale_factor in [0.001f64, 0.002, 0.004] {
        let data = SsbDataSet::generate(SsbConfig::new(scale_factor, 97));
        let catalog = data.catalog();
        let workload = Workload::generate(
            &data,
            WorkloadConfig::new(64, 0.01, 97).with_template("Q4.2"),
        );
        group.bench_with_input(
            BenchmarkId::new("admission", format!("sf{scale_factor}")),
            &scale_factor,
            |b, _| {
                let engine = CjoinEngine::start(
                    Arc::clone(&catalog),
                    CjoinConfig::default()
                        .with_worker_threads(2)
                        .with_max_concurrency(256),
                )
                .unwrap();
                let mut next = 0usize;
                b.iter(|| {
                    let query = &workload.queries()[next % workload.len()];
                    next += 1;
                    let handle = engine.submit(query.clone()).unwrap();
                    let submission = handle.submission_time();
                    let _ = handle.wait().unwrap();
                    submission
                });
                engine.shutdown();
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
