//! Figure 7 — throughput as the workload's predicate selectivity grows (each query
//! selects a larger fraction of every dimension it references, so the shared
//! dimension hash tables and the per-query baseline hash tables all grow).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cjoin_repro::baseline::{BaselineConfig, BaselineEngine};
use cjoin_repro::bench::run_closed_loop;
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};

const CONCURRENCY: usize = 16;

fn bench(c: &mut Criterion) {
    let data = SsbDataSet::generate(SsbConfig::new(0.002, 81));
    let catalog = data.catalog();

    let mut group = c.benchmark_group("fig7_selectivity");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    for (label, selectivity) in [("0.1%", 0.001), ("1%", 0.01), ("10%", 0.10)] {
        let workload = Workload::generate(&data, WorkloadConfig::new(CONCURRENCY, selectivity, 81));
        group.bench_with_input(BenchmarkId::new("cjoin", label), &selectivity, |b, _| {
            b.iter(|| {
                let engine = CjoinEngine::start(
                    Arc::clone(&catalog),
                    CjoinConfig::default()
                        .with_worker_threads(4)
                        .with_max_concurrency(32),
                )
                .unwrap();
                let report = run_closed_loop(&engine, workload.queries(), CONCURRENCY).unwrap();
                engine.shutdown();
                report.timings.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("system_x", label), &selectivity, |b, _| {
            b.iter(|| {
                let engine = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::system_x());
                run_closed_loop(&engine, workload.queries(), CONCURRENCY)
                    .unwrap()
                    .timings
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
