//! Figure 8 — influence of the data scale factor: one closed-loop workload run per
//! scale factor for CJOIN and the independent-scan baseline. The paper reports
//! *normalized* throughput (throughput × sf), which the `experiments fig8` binary
//! prints; here the raw wall time per workload is measured.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cjoin_repro::baseline::{BaselineConfig, BaselineEngine};
use cjoin_repro::bench::run_closed_loop;
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};

const CONCURRENCY: usize = 16;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_data_scale");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    for scale_factor in [0.001f64, 0.002, 0.004] {
        let data = SsbDataSet::generate(SsbConfig::new(scale_factor, 95));
        let catalog = data.catalog();
        let workload = Workload::generate(&data, WorkloadConfig::new(CONCURRENCY, 0.01, 95));

        group.bench_with_input(
            BenchmarkId::new("cjoin", format!("sf{scale_factor}")),
            &scale_factor,
            |b, _| {
                b.iter(|| {
                    let engine = CjoinEngine::start(
                        Arc::clone(&catalog),
                        CjoinConfig::default()
                            .with_worker_threads(4)
                            .with_max_concurrency(32),
                    )
                    .unwrap();
                    let report = run_closed_loop(&engine, workload.queries(), CONCURRENCY).unwrap();
                    engine.shutdown();
                    report.timings.len()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("system_x", format!("sf{scale_factor}")),
            &scale_factor,
            |b, _| {
                b.iter(|| {
                    let engine =
                        BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::system_x());
                    run_closed_loop(&engine, workload.queries(), CONCURRENCY)
                        .unwrap()
                        .timings
                        .len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
