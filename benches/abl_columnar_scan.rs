//! Ablation — §5 "Column Stores" / "Compressed Tables": one pass of the continuous
//! fact-table scan over (a) the row store, (b) a columnar replica materialising every
//! column, and (c) a columnar replica materialising only the four columns a typical
//! SSB query mix touches. The projected scan should move a small fraction of the
//! bytes and finish fastest; the experiment harness reports the byte volumes in
//! the experiments binary (`io` subcommand).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use cjoin_repro::ssb::{SsbConfig, SsbDataSet};
use cjoin_repro::storage::{
    ColumnarContinuousScan, ColumnarTable, CompressionPolicy, ContinuousScan, ScanBatch,
};

fn bench(c: &mut Criterion) {
    let data = SsbDataSet::generate(SsbConfig::new(0.005, 7));
    let lineorder = data.catalog().fact_table().unwrap();
    let rows = lineorder.len();
    let columnar =
        Arc::new(ColumnarTable::from_table(&lineorder, CompressionPolicy::Adaptive).unwrap());
    let projection = columnar
        .projection_of(&["lo_orderdate", "lo_discount", "lo_quantity", "lo_revenue"])
        .unwrap();

    let mut group = c.benchmark_group("abl_columnar_scan");
    group.sample_size(10);

    group.bench_function("row_store_all_columns", |b| {
        b.iter(|| {
            let mut scan = ContinuousScan::new(Arc::clone(&lineorder)).with_batch_rows(4096);
            let mut batch = ScanBatch::default();
            let mut seen = 0usize;
            while seen < rows {
                scan.next_batch(&mut batch);
                seen += batch.len();
            }
            seen
        });
    });

    group.bench_function("columnar_all_columns", |b| {
        b.iter(|| {
            let mut scan = ColumnarContinuousScan::new(Arc::clone(&columnar)).with_batch_rows(4096);
            let mut batch = ScanBatch::default();
            let mut seen = 0usize;
            while seen < rows {
                scan.next_batch(&mut batch);
                seen += batch.len();
            }
            seen
        });
    });

    group.bench_function("columnar_projected_4_columns", |b| {
        b.iter(|| {
            let mut scan =
                ColumnarContinuousScan::with_projection(Arc::clone(&columnar), projection.clone())
                    .with_batch_rows(4096);
            let mut batch = ScanBatch::default();
            let mut seen = 0usize;
            while seen < rows {
                scan.next_batch(&mut batch);
                seen += batch.len();
            }
            seen
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
