//! Ablation — §5 "Column Stores" / "Compressed Tables": one pass of the continuous
//! fact-table scan over (a) the row store, (b) a columnar replica materialising every
//! column, and (c) a columnar replica materialising only the four columns a typical
//! SSB query mix touches. The projected scan should move a small fraction of the
//! bytes and finish fastest; the experiment harness reports the byte volumes in
//! the experiments binary (`io` subcommand).
//!
//! A second group runs the scan *in the pipeline*: a running [`CjoinEngine`]
//! answers the same clustered date-range query with `columnar_scan` off (row
//! store) and on (encoded predicates + zone-map skipping + late
//! materialization), so the measured gap includes the full §3.3 admission and
//! aggregation protocol rather than the bare storage iterator.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet};
use cjoin_repro::storage::{
    ColumnarContinuousScan, ColumnarTable, CompressionPolicy, ContinuousScan, ScanBatch,
};
use cjoin_repro::{AggFunc, AggregateSpec, ColumnRef, Predicate, StarQuery};

fn bench(c: &mut Criterion) {
    let data = SsbDataSet::generate(SsbConfig::new(0.005, 7));
    let lineorder = data.catalog().fact_table().unwrap();
    let rows = lineorder.len();
    let columnar =
        Arc::new(ColumnarTable::from_table(&lineorder, CompressionPolicy::Adaptive).unwrap());
    let projection = columnar
        .projection_of(&["lo_orderdate", "lo_discount", "lo_quantity", "lo_revenue"])
        .unwrap();

    let mut group = c.benchmark_group("abl_columnar_scan");
    group.sample_size(10);

    group.bench_function("row_store_all_columns", |b| {
        b.iter(|| {
            let mut scan = ContinuousScan::new(Arc::clone(&lineorder)).with_batch_rows(4096);
            let mut batch = ScanBatch::default();
            let mut seen = 0usize;
            while seen < rows {
                scan.next_batch(&mut batch);
                seen += batch.len();
            }
            seen
        });
    });

    group.bench_function("columnar_all_columns", |b| {
        b.iter(|| {
            let mut scan = ColumnarContinuousScan::new(Arc::clone(&columnar)).with_batch_rows(4096);
            let mut batch = ScanBatch::default();
            let mut seen = 0usize;
            while seen < rows {
                scan.next_batch(&mut batch);
                seen += batch.len();
            }
            seen
        });
    });

    group.bench_function("columnar_projected_4_columns", |b| {
        b.iter(|| {
            let mut scan =
                ColumnarContinuousScan::with_projection(Arc::clone(&columnar), projection.clone())
                    .with_batch_rows(4096);
            let mut batch = ScanBatch::default();
            let mut seen = 0usize;
            while seen < rows {
                scan.next_batch(&mut batch);
                seen += batch.len();
            }
            seen
        });
    });

    group.finish();

    let clustered = SsbDataSet::generate(SsbConfig {
        cluster_by_orderdate: true,
        ..SsbConfig::new(0.005, 7)
    });
    let mut pipeline = c.benchmark_group("abl_columnar_scan_pipeline");
    pipeline.sample_size(10);
    for columnar in [false, true] {
        let engine = CjoinEngine::start(
            clustered.catalog(),
            CjoinConfig::default()
                .with_worker_threads(2)
                .with_columnar_scan(columnar),
        )
        .unwrap();
        let name = if columnar {
            "pipeline_columnar_date_range"
        } else {
            "pipeline_row_store_date_range"
        };
        pipeline.bench_function(name, |b| {
            b.iter(|| {
                let query = StarQuery::builder("probe")
                    .fact_predicate(Predicate::between("lo_orderdate", 19_940_101, 19_941_231))
                    .aggregate(AggregateSpec::count_star())
                    .aggregate(AggregateSpec::over(
                        AggFunc::Sum,
                        ColumnRef::fact("lo_revenue"),
                    ))
                    .build();
                engine.execute(query).unwrap()
            });
        });
        engine.shutdown();
    }
    pipeline.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
