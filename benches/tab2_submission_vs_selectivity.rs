//! Table 2 — query submission overhead vs. predicate selectivity: higher selectivity
//! means more dimension tuples must be evaluated and loaded into the shared dimension
//! hash tables during admission (Algorithm 1 lines 11–16).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    let data = SsbDataSet::generate(SsbConfig::new(0.002, 91));
    let catalog = data.catalog();

    let mut group = c.benchmark_group("tab2_submission_vs_selectivity");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    for (label, selectivity) in [("0.1%", 0.001), ("1%", 0.01), ("10%", 0.10)] {
        let workload = Workload::generate(
            &data,
            WorkloadConfig::new(64, selectivity, 91).with_template("Q4.2"),
        );
        group.bench_with_input(
            BenchmarkId::new("admission", label),
            &selectivity,
            |b, _| {
                let engine = CjoinEngine::start(
                    Arc::clone(&catalog),
                    CjoinConfig::default()
                        .with_worker_threads(2)
                        .with_max_concurrency(256),
                )
                .unwrap();
                let mut next = 0usize;
                b.iter(|| {
                    let query = &workload.queries()[next % workload.len()];
                    next += 1;
                    let handle = engine.submit(query.clone()).unwrap();
                    let submission = handle.submission_time();
                    let _ = handle.wait().unwrap();
                    submission
                });
                engine.shutdown();
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
