//! Ablation — the early-skip optimisation (§3.2.2): skipping the dimension hash-table
//! probe when `bτ AND ¬bDj == 0`. The benefit shows on workloads where many queries
//! ignore some dimensions, so the workload mixes 3-dimension and 4-dimension
//! templates.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use cjoin_repro::bench::run_closed_loop;
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};

const CONCURRENCY: usize = 16;

fn bench(c: &mut Criterion) {
    let data = SsbDataSet::generate(SsbConfig::new(0.002, 111));
    let catalog = data.catalog();
    // The default template mix contains both flight-2/3 queries (3 dimensions) and
    // flight-4 queries (4 dimensions), so dimension coverage differs across queries.
    let workload = Workload::generate(&data, WorkloadConfig::new(CONCURRENCY, 0.02, 111));

    let mut group = c.benchmark_group("abl_early_skip");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    for (label, early_skip) in [("enabled", true), ("disabled", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = CjoinConfig {
                    early_skip,
                    ..CjoinConfig::default()
                        .with_worker_threads(4)
                        .with_max_concurrency(32)
                };
                let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
                let report = run_closed_loop(&engine, workload.queries(), CONCURRENCY).unwrap();
                engine.shutdown();
                report.timings.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
