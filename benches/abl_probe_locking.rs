//! Ablation — probe locking granularity (the `batched_probing` knob): the batched
//! filter hot path takes each dimension's read lock once per (batch, filter),
//! borrows entries without `Arc` clones, and flushes statistics from batch-local
//! counters, versus the per-tuple baseline (lock + `Arc` clone + up to four atomic
//! increments per tuple per filter). A fig5-style population of concurrent queries
//! backs the dimension hash tables; both paths are first checked to produce
//! identical survivors.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use cjoin_repro::bench::hotpath::{ProbeAblationParams, ProbeHarness};

fn bench(c: &mut Criterion) {
    let harness = ProbeHarness::build(&ProbeAblationParams::fig5_style());
    assert!(
        harness.paths_agree(),
        "hot paths diverge — fix correctness before measuring"
    );

    let mut group = c.benchmark_group("abl_probe_locking");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));

    for (label, batched) in [("batched", true), ("per_tuple", false)] {
        let mut batch = harness.working_batch();
        group.bench_function(label, |b| {
            b.iter(|| harness.run_pass(&mut batch, batched));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
