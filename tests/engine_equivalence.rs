//! Parameterized `JoinEngine` equivalence: the same star-query workload is run
//! through every engine implementation exclusively via `&dyn JoinEngine`, and
//! each engine's `QueryResult`s must be identical to the reference evaluator's.
//!
//! This is the contract the shared trait exists to enforce: engines differ in
//! *how* they evaluate (shared always-on pipeline vs. per-query plans), never in
//! *what* they answer. Adding a new engine to the workspace means adding one
//! constructor to `engines_under_test` — the assertions don't change.

use std::sync::Arc;

use cjoin_repro::baseline::{BaselineConfig, BaselineEngine};
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine, StageLayout};
use cjoin_repro::galaxy::{GalaxyEngine, Side};
use cjoin_repro::query::{reference, JoinEngine, Predicate};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};
use cjoin_repro::storage::{Catalog, Column, Row, Schema, Table, Value};
use cjoin_repro::{AggFunc, AggregateSpec, ColumnRef, SnapshotId, StarQuery};

fn cjoin_config() -> CjoinConfig {
    CjoinConfig::default()
        .with_worker_threads(2)
        .with_max_concurrency(32)
        .with_batch_size(256)
}

/// Constructs every engine under test over the same catalog, boxed behind the
/// shared trait. CJOIN appears once per point of the `scan_workers` ×
/// `distributor_shards` × `StageLayout` matrix (both hot-path layouts, classic
/// and sharded scan front-end, single and sharded aggregation), plus one
/// per-tuple-probing + fully-sharded configuration so the equivalence contract
/// covers both filter implementations against the sharded front- and back-end,
/// plus the compressed columnar front-end (`columnar_scan`) against the classic
/// and sharded scan layouts — the bit-identical-results contract of the
/// storage-layout knob.
fn engines_under_test(catalog: &Arc<Catalog>) -> Vec<Box<dyn JoinEngine>> {
    let mut engines: Vec<Box<dyn JoinEngine>> = vec![
        Box::new(BaselineEngine::new(
            Arc::clone(catalog),
            BaselineConfig::default(),
        )),
        Box::new(BaselineEngine::new(
            Arc::clone(catalog),
            BaselineConfig::postgres_like(),
        )),
    ];
    for layout in [StageLayout::Horizontal, StageLayout::Vertical] {
        for shards in [1usize, 4] {
            for scan_workers in [1usize, 2, 4] {
                engines.push(Box::new(
                    CjoinEngine::start(
                        Arc::clone(catalog),
                        cjoin_config()
                            .with_stage_layout(layout.clone())
                            .with_distributor_shards(shards)
                            .with_scan_workers(scan_workers),
                    )
                    .unwrap(),
                ));
            }
        }
    }
    engines.push(Box::new(
        CjoinEngine::start(
            Arc::clone(catalog),
            cjoin_config()
                .with_batched_probing(false)
                .with_distributor_shards(4)
                .with_scan_workers(4),
        )
        .unwrap(),
    ));
    for scan_workers in [1usize, 4] {
        engines.push(Box::new(
            CjoinEngine::start(
                Arc::clone(catalog),
                cjoin_config()
                    .with_columnar_scan(true)
                    .with_scan_workers(scan_workers),
            )
            .unwrap(),
        ));
    }
    // The elastic scheduler: all parallelism knobs left at their defaults so
    // the scheduler governs every axis, sizes them from the host at start and
    // may resize them mid-workload — results must stay oracle-identical.
    engines.push(Box::new(
        CjoinEngine::start(
            Arc::clone(catalog),
            CjoinConfig {
                max_concurrency: 32,
                batch_size: 256,
                ..CjoinConfig::default()
            },
        )
        .unwrap(),
    ));
    engines
}

#[test]
fn every_engine_matches_the_reference_on_the_same_workload() {
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.001, 71));
    let catalog = data.catalog();
    let workload = Workload::generate(&data, WorkloadConfig::new(10, 0.05, 72));

    for engine in engines_under_test(&catalog) {
        let mut completed = 0u64;
        for query in workload.queries() {
            let expected = reference::evaluate(&catalog, query, SnapshotId::INITIAL).unwrap();
            let result = engine.execute(query).unwrap();
            assert!(
                result.approx_eq(&expected),
                "[{}] {}: {:?}",
                engine.name(),
                query.name,
                result.diff(&expected)
            );
            completed += 1;
        }
        let stats = engine.stats();
        assert_eq!(
            stats.queries_completed,
            completed,
            "[{}] completion counter tracks the workload",
            engine.name()
        );
        assert!(
            stats.queries_submitted >= stats.queries_completed,
            "[{}]",
            engine.name()
        );
        assert!(stats.fact_tuples_scanned > 0, "[{}]", engine.name());
        engine.shutdown();
    }
}

#[test]
fn engines_agree_under_concurrent_submission_through_tickets() {
    // The submit/wait split of the trait: queue everything first, collect later.
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.001, 73));
    let catalog = data.catalog();
    let workload = Workload::generate(&data, WorkloadConfig::new(8, 0.05, 74));

    for engine in engines_under_test(&catalog) {
        let tickets: Vec<_> = workload
            .queries()
            .iter()
            .map(|q| engine.submit(q.clone()).unwrap())
            .collect();
        for (query, ticket) in workload.queries().iter().zip(tickets) {
            let expected = reference::evaluate(&catalog, query, SnapshotId::INITIAL).unwrap();
            let result = ticket.wait().unwrap();
            assert!(
                result.approx_eq(&expected),
                "[{}] {}: {:?}",
                engine.name(),
                query.name,
                result.diff(&expected)
            );
        }
        engine.shutdown();
    }
}

#[test]
fn submitting_after_shutdown_fails_cleanly_for_pipeline_engines() {
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.0005, 75));
    let catalog = data.catalog();
    let engine: Box<dyn JoinEngine> =
        Box::new(CjoinEngine::start(Arc::clone(&catalog), cjoin_config()).unwrap());
    engine.shutdown();
    engine.shutdown(); // idempotent
    let late = StarQuery::builder("late")
        .aggregate(AggregateSpec::count_star())
        .build();
    assert!(engine.submit(late).is_err());
}

#[test]
fn galaxy_engine_routes_star_queries_through_the_trait() {
    // A two-fact-table catalog; the GalaxyEngine serves both stars and must route
    // a plain star query to the side whose fact table it binds against.
    let catalog = Catalog::new();
    let customer = Table::new(Schema::new(
        "customer",
        vec![Column::int("c_custkey"), Column::str("c_region")],
    ));
    for (k, region) in [(1, "ASIA"), (2, "EUROPE"), (3, "ASIA")] {
        customer
            .insert(vec![Value::int(k), Value::str(region)], SnapshotId::INITIAL)
            .unwrap();
    }
    catalog.add_table(Arc::new(customer));
    let orders = Table::new(Schema::new(
        "orders",
        vec![Column::int("o_custkey"), Column::int("o_amount")],
    ));
    orders.insert_batch_unchecked(
        (0..90).map(|i| Row::new(vec![Value::int(i % 3 + 1), Value::int(i)])),
        SnapshotId::INITIAL,
    );
    catalog.add_table(Arc::new(orders));
    let shipments = Table::new(Schema::new(
        "shipments",
        vec![Column::int("s_custkey"), Column::int("s_weight")],
    ));
    shipments.insert_batch_unchecked(
        (0..60).map(|i| Row::new(vec![Value::int(i % 3 + 1), Value::int(2 * i)])),
        SnapshotId::INITIAL,
    );
    catalog.add_table(Arc::new(shipments));
    let catalog = Arc::new(catalog);

    let galaxy =
        GalaxyEngine::start(Arc::clone(&catalog), "orders", "shipments", cjoin_config()).unwrap();
    let engine: &dyn JoinEngine = &galaxy;

    // One star per side; each must be answered by the pipeline serving its fact
    // table and agree with the reference over that side's catalog view.
    let orders_star = StarQuery::builder("asia_orders")
        .join_dimension(
            "customer",
            "o_custkey",
            "c_custkey",
            Predicate::eq("c_region", "ASIA"),
        )
        .aggregate(AggregateSpec::over(
            AggFunc::Sum,
            ColumnRef::fact("o_amount"),
        ))
        .aggregate(AggregateSpec::count_star())
        .build();
    let shipments_star = StarQuery::builder("europe_weight")
        .join_dimension(
            "customer",
            "s_custkey",
            "c_custkey",
            Predicate::eq("c_region", "EUROPE"),
        )
        .aggregate(AggregateSpec::over(
            AggFunc::Max,
            ColumnRef::fact("s_weight"),
        ))
        .build();

    let expected_orders = reference::evaluate(
        galaxy.engine(Side::A).catalog(),
        &orders_star,
        SnapshotId::INITIAL,
    )
    .unwrap();
    let expected_shipments = reference::evaluate(
        galaxy.engine(Side::B).catalog(),
        &shipments_star,
        SnapshotId::INITIAL,
    )
    .unwrap();

    let got_orders = engine.execute(&orders_star).unwrap();
    let got_shipments = engine.execute(&shipments_star).unwrap();
    assert!(
        got_orders.approx_eq(&expected_orders),
        "{:?}",
        got_orders.diff(&expected_orders)
    );
    assert!(
        got_shipments.approx_eq(&expected_shipments),
        "{:?}",
        got_shipments.diff(&expected_shipments)
    );
    let stats = engine.stats();
    assert_eq!(stats.queries_completed, 2);
    engine.shutdown();
}
