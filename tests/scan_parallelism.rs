//! Oracle-backed test matrix for the sharded scan front-end
//! (`CjoinConfig::scan_workers`).
//!
//! Three suites pin down the segmented Preprocessor:
//!
//! 1. **Exactly-one-pass under churn** — queries admitted mid-scan (while other
//!    queries keep every segment cursor busy at unrelated offsets) must see every
//!    fact row exactly once across segments: their COUNT(*)/SUM aggregates over
//!    the whole table equal the reference answer exactly. A duplicated segment
//!    row inflates the count, a missed one deflates it, so the aggregate *is* the
//!    exactly-once oracle.
//! 2. **Counter consistency** — per-worker `ScanWorkerCounters` must sum to the
//!    pipeline totals, and a deterministic sequential workload must distribute
//!    exactly the same tuples under 4 scan workers as under the classic single
//!    Preprocessor (the front-end only changes *who* scans, never *what* a query
//!    sees).
//! 3. **Lifecycle/quiesce** — concurrent admission waves across the scan-workers
//!    × distributor-shards grid leave no residue: admitted == completed, ids are
//!    recycled, `batches_in_flight` returns to zero, and every query observed all
//!    of its segment passes (`segments_completed == segments_total`).

use std::sync::Arc;
use std::time::Duration;

use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine, PipelineStats};
use cjoin_repro::query::reference;
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};
use cjoin_repro::storage::{Row, RowId};
use cjoin_repro::{AggFunc, AggregateSpec, ColumnRef, SnapshotId, StarQuery};

fn config(scan_workers: usize) -> CjoinConfig {
    CjoinConfig::default()
        .with_worker_threads(2)
        .with_max_concurrency(32)
        .with_batch_size(256)
        .with_scan_workers(scan_workers)
}

/// Waits until the manager finished Algorithm 2 for every query (ids recycled).
fn await_quiesce(engine: &CjoinEngine) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while engine.active_queries() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A full-table aggregate whose exact value detects any duplicated or missed
/// fact row: COUNT(*) plus SUM over a fact column.
fn full_table_probe(name: &str) -> StarQuery {
    StarQuery::builder(name)
        .aggregate(AggregateSpec::count_star())
        .aggregate(AggregateSpec::over(
            AggFunc::Sum,
            ColumnRef::fact("lo_revenue"),
        ))
        .build()
}

#[test]
fn mid_scan_admission_sees_every_fact_row_exactly_once_across_segments() {
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.001, 401));
    let catalog = data.catalog();
    let engine = CjoinEngine::start(Arc::clone(&catalog), config(4)).unwrap();

    // Keep every segment cursor busy at unrelated offsets: a rolling window of
    // background queries is always in flight while the probes are admitted.
    let background = Workload::generate(&data, WorkloadConfig::new(12, 0.05, 402));
    let mut in_flight = std::collections::VecDeque::new();
    let mut background_iter = background.queries().iter();
    for query in background_iter.by_ref().take(4) {
        in_flight.push_back(engine.submit(query.clone()).unwrap());
    }

    // Admit exactly-once probes mid-scan, interleaved with background churn.
    let mut probe_handles = Vec::new();
    let mut expected = Vec::new();
    for round in 0..6 {
        let probe = full_table_probe(&format!("probe{round}"));
        expected.push(reference::evaluate(&catalog, &probe, SnapshotId::INITIAL).unwrap());
        probe_handles.push(engine.submit(probe).unwrap());
        if let Some(handle) = in_flight.pop_front() {
            handle.wait().unwrap();
        }
        if let Some(query) = background_iter.next() {
            in_flight.push_back(engine.submit(query.clone()).unwrap());
        }
    }

    for (round, (handle, expected)) in probe_handles.into_iter().zip(expected).enumerate() {
        let progress = Arc::clone(handle.progress());
        assert_eq!(progress.segments_total(), 4);
        let result = handle.wait().unwrap();
        assert!(
            result.approx_eq(&expected),
            "probe {round} did not see every fact row exactly once: {:?}",
            result.diff(&expected)
        );
        assert_eq!(
            progress.segments_completed(),
            4,
            "probe {round} completed without all segment passes"
        );
        assert!(progress.is_completed());
    }
    for handle in in_flight {
        handle.wait().unwrap();
    }
    engine.shutdown();
}

/// Runs the same workload sequentially (one query in flight at a time, so the
/// distributed-tuple counts are deterministic) and returns the quiesced stats.
fn run_sequential(scan_workers: usize, seed: u64) -> PipelineStats {
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.001, 411));
    let catalog = data.catalog();
    let workload = Workload::generate(&data, WorkloadConfig::new(8, 0.05, seed));
    let engine = CjoinEngine::start(Arc::clone(&catalog), config(scan_workers)).unwrap();
    for query in workload.queries() {
        let expected = reference::evaluate(&catalog, query, SnapshotId::INITIAL).unwrap();
        let result = engine.execute(query.clone()).unwrap();
        assert!(result.approx_eq(&expected), "{}", query.name);
    }
    await_quiesce(&engine);
    let stats = engine.stats();
    engine.shutdown();
    stats
}

#[test]
fn per_worker_counters_sum_to_the_classic_totals() {
    let classic = run_sequential(1, 412);
    let sharded = run_sequential(4, 412);

    // Within each run the per-worker counters must sum to the pipeline totals.
    for stats in [&classic, &sharded] {
        assert_eq!(
            stats.scan_worker_tuples_scanned(),
            stats.tuples_scanned,
            "per-worker scanned-tuple counts sum to the total"
        );
        assert_eq!(
            stats.scan_worker_batches_sent(),
            stats.batches_sent,
            "per-worker batch counts sum to the total"
        );
        assert_eq!(
            stats.scan_worker_segment_passes(),
            stats.scan_passes,
            "per-worker pass counts sum to the total"
        );
    }
    assert_eq!(classic.scan_workers.len(), 1);
    assert_eq!(sharded.scan_workers.len(), 4);

    // Across runs the deterministic sequential workload distributes exactly the
    // same tuples regardless of how the scan is segmented — every query sees one
    // pass over the same table either way.
    assert_eq!(sharded.tuples_distributed, classic.tuples_distributed);
    assert_eq!(sharded.routings, classic.routings);
    assert_eq!(sharded.queries_completed, classic.queries_completed);
    // And the segmented front-end actually spread the scan: with page-aligned
    // segments over SSB data at least two workers must have produced tuples.
    let active_workers = sharded
        .scan_workers
        .iter()
        .filter(|w| w.tuples_scanned > 0)
        .count();
    assert!(
        active_workers >= 2,
        "scan sharding degenerated to one worker: {:?}",
        sharded.scan_workers
    );
}

#[test]
fn lifecycle_churn_across_the_scan_grid_quiesces_cleanly() {
    const WAVES: u64 = 2;
    const PER_WAVE: usize = 8;

    let data = SsbDataSet::generate(SsbConfig::for_tests(0.001, 421));
    let catalog = data.catalog();
    for (scan_workers, shards) in [(2usize, 1usize), (4, 4)] {
        // Small maxConc forces id recycling across waves; the warehouse grows
        // mid-wave so the open-ended last segment absorbs appended rows.
        let engine = CjoinEngine::start(
            Arc::clone(&catalog),
            config(scan_workers)
                .with_max_concurrency(16)
                .with_distributor_shards(shards),
        )
        .unwrap();
        let fact = catalog.fact_table().unwrap();
        let template_row = fact.row(RowId(0)).unwrap();

        for wave in 0..WAVES {
            let snapshot = catalog.snapshots().current();
            let workload =
                Workload::generate(&data, WorkloadConfig::new(PER_WAVE, 0.05, 423 + wave));
            let queries: Vec<_> = workload
                .queries()
                .iter()
                .map(|q| {
                    let mut q = q.clone();
                    q.snapshot = Some(snapshot);
                    q.name = format!("wave{wave}-{}", q.name);
                    q
                })
                .collect();

            let handles: Vec<_> = queries
                .iter()
                .map(|q| engine.submit(q.clone()).unwrap())
                .collect();
            let load_snapshot = catalog.snapshots().commit();
            fact.insert_batch_unchecked(
                (0..120).map(|_| Row::new(template_row.values().to_vec())),
                load_snapshot,
            );

            for (query, handle) in queries.iter().zip(handles) {
                let result = handle.wait().unwrap();
                let expected = reference::evaluate(&catalog, query, snapshot).unwrap();
                assert!(
                    result.approx_eq(&expected),
                    "[scan={scan_workers} shards={shards}] {} diverged under churn: {:?}",
                    query.name,
                    result.diff(&expected)
                );
            }
        }

        await_quiesce(&engine);
        let stats = engine.stats();
        let total = WAVES * PER_WAVE as u64;
        assert_eq!(stats.queries_admitted, total);
        assert_eq!(stats.queries_completed, total);
        assert_eq!(engine.active_queries(), 0, "all ids recycled post-churn");
        assert_eq!(
            stats.batches_in_flight, 0,
            "in-flight accounting returns to zero post-quiesce"
        );
        assert_eq!(stats.scan_worker_tuples_scanned(), stats.tuples_scanned);
        assert_eq!(stats.scan_worker_batches_sent(), stats.batches_sent);
        engine.shutdown();
    }
}
