//! Oracle-backed test matrix for the sharded Distributor
//! (`CjoinConfig::distributor_shards`).
//!
//! Three suites pin down the sharded aggregation stage:
//!
//! 1. **Oracle equivalence** — fixed-seed randomized SSB workloads run under
//!    shards ∈ {1, 2, 4} × both `batched_probing` settings must produce results
//!    identical to the single-threaded reference evaluator (`AggValue::approx_eq`
//!    under the hood of `QueryResult::approx_eq`, so AVG merge order cannot flake
//!    the suite).
//! 2. **Lifecycle churn** — queries are admitted and finalized mid-scan from
//!    concurrent clients while the shards drain. The two control-tuple invariants
//!    are observable as: every result matches the oracle (a tuple reaching a shard
//!    before its query-start would be silently dropped from the aggregate), and
//!    every shard emitted exactly one partial per completed query (a query-end
//!    finalizes only after *all* shards passed the merge barrier). Post-quiesce,
//!    the admitted/completed counters balance and the in-flight batch counter is
//!    back to zero.
//! 3. **Counter consistency** — for a deterministic (sequential) workload the
//!    per-shard `ShardCounters` must sum to the pipeline totals, and a 4-shard run
//!    must count exactly what the single-shard run counts.

use std::sync::Arc;
use std::time::Duration;

use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine, PipelineStats};
use cjoin_repro::query::reference;
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};
use cjoin_repro::storage::{Row, RowId};
use cjoin_repro::SnapshotId;

fn config(shards: usize) -> CjoinConfig {
    CjoinConfig::default()
        .with_worker_threads(2)
        .with_max_concurrency(32)
        .with_batch_size(256)
        .with_distributor_shards(shards)
}

#[test]
fn sharded_results_match_the_oracle_across_the_knob_matrix() {
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.001, 301));
    let catalog = data.catalog();
    let workload = Workload::generate(&data, WorkloadConfig::new(10, 0.05, 302));

    for shards in [1usize, 2, 4] {
        for batched_probing in [true, false] {
            for scan_workers in [1usize, 4] {
                let engine = CjoinEngine::start(
                    Arc::clone(&catalog),
                    config(shards)
                        .with_batched_probing(batched_probing)
                        .with_scan_workers(scan_workers),
                )
                .unwrap();
                for query in workload.queries() {
                    let expected =
                        reference::evaluate(&catalog, query, SnapshotId::INITIAL).unwrap();
                    let result = engine.execute(query.clone()).unwrap();
                    assert!(
                        result.approx_eq(&expected),
                        "[shards={shards} batched={batched_probing} scan={scan_workers}] {}: {:?}",
                        query.name,
                        result.diff(&expected)
                    );
                }
                let stats = engine.stats();
                assert_eq!(stats.distributor_shards.len(), shards);
                assert_eq!(stats.scan_workers.len(), scan_workers);
                assert_eq!(stats.queries_completed, 10);
                engine.shutdown();
            }
        }
    }
}

/// Waits until the manager finished Algorithm 2 for every query (ids recycled).
fn await_quiesce(engine: &CjoinEngine) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while engine.active_queries() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn lifecycle_churn_under_sharding_holds_control_invariants_and_quiesces() {
    const SHARDS: usize = 4;
    const WAVES: u64 = 3;
    const PER_WAVE: usize = 10;

    let data = SsbDataSet::generate(SsbConfig::for_tests(0.001, 311));
    let catalog = data.catalog();
    // Small maxConc forces id recycling across waves; shards keep draining while
    // queries are admitted and finalized mid-scan.
    let engine = CjoinEngine::start(
        Arc::clone(&catalog),
        config(SHARDS).with_max_concurrency(16),
    )
    .unwrap();
    let fact = catalog.fact_table().unwrap();
    let template_row = fact.row(RowId(0)).unwrap();

    for wave in 0..WAVES {
        let snapshot = catalog.snapshots().current();
        let workload = Workload::generate(&data, WorkloadConfig::new(PER_WAVE, 0.05, 313 + wave));
        let queries: Vec<_> = workload
            .queries()
            .iter()
            .map(|q| {
                let mut q = q.clone();
                q.snapshot = Some(snapshot);
                q.name = format!("wave{wave}-{}", q.name);
                q
            })
            .collect();

        // Concurrent admission: all handles in flight at once, then the warehouse
        // grows while the wave drains through the shards.
        let handles: Vec<_> = queries
            .iter()
            .map(|q| engine.submit(q.clone()).unwrap())
            .collect();
        let load_snapshot = catalog.snapshots().commit();
        fact.insert_batch_unchecked(
            (0..150).map(|_| Row::new(template_row.values().to_vec())),
            load_snapshot,
        );

        for (query, handle) in queries.iter().zip(handles) {
            let result = handle.wait().unwrap();
            let expected = reference::evaluate(&catalog, query, snapshot).unwrap();
            assert!(
                result.approx_eq(&expected),
                "{} diverged under sharded churn: {:?}",
                query.name,
                result.diff(&expected)
            );
        }
    }

    await_quiesce(&engine);
    let stats = engine.stats();
    let total = WAVES * PER_WAVE as u64;
    assert_eq!(stats.queries_admitted, total);
    assert_eq!(stats.queries_completed, total);
    assert_eq!(engine.active_queries(), 0, "all ids recycled post-churn");
    assert_eq!(
        stats.batches_in_flight, 0,
        "in-flight accounting returns to zero post-quiesce"
    );
    // The end-barrier invariant in numbers: a query only completed because every
    // shard flushed exactly one partial for it — and the start-broadcast invariant:
    // a shard can only emit a partial for a query whose start tuple it saw.
    for shard in &stats.distributor_shards {
        assert_eq!(
            shard.partials_emitted, total,
            "shard {} missed a merge barrier",
            shard.shard
        );
    }
    assert_eq!(stats.shard_tuples_distributed(), stats.tuples_distributed);
    assert_eq!(stats.shard_routings(), stats.routings);
    engine.shutdown();
}

/// Runs the same workload sequentially (one query in flight at a time, so the
/// distributed-tuple counts are deterministic) and returns the quiesced stats.
fn run_sequential(shards: usize, seed: u64) -> PipelineStats {
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.001, 321));
    let catalog = data.catalog();
    let workload = Workload::generate(&data, WorkloadConfig::new(8, 0.05, seed));
    let engine = CjoinEngine::start(Arc::clone(&catalog), config(shards)).unwrap();
    for query in workload.queries() {
        let expected = reference::evaluate(&catalog, query, SnapshotId::INITIAL).unwrap();
        let result = engine.execute(query.clone()).unwrap();
        assert!(result.approx_eq(&expected), "{}", query.name);
    }
    await_quiesce(&engine);
    let stats = engine.stats();
    engine.shutdown();
    stats
}

#[test]
fn per_shard_counters_sum_to_the_single_shard_totals() {
    let single = run_sequential(1, 322);
    let sharded = run_sequential(4, 322);

    // Within each run the per-shard counters must sum to the pipeline totals.
    for stats in [&single, &sharded] {
        assert_eq!(
            stats.shard_tuples_distributed(),
            stats.tuples_distributed,
            "per-shard tuple counts sum to the total"
        );
        assert_eq!(
            stats.shard_routings(),
            stats.routings,
            "per-shard routing counts sum to the total"
        );
    }
    assert_eq!(single.distributor_shards.len(), 1);
    assert_eq!(sharded.distributor_shards.len(), 4);

    // Across runs the deterministic sequential workload distributes exactly the
    // same tuples regardless of sharding — the stats refactor must not change
    // what is counted, only where.
    assert_eq!(sharded.tuples_distributed, single.tuples_distributed);
    assert_eq!(sharded.routings, single.routings);
    assert_eq!(sharded.queries_completed, single.queries_completed);
    // And the sharded run actually spread work: with 8 queries over SSB data at
    // least two shards must have seen tuples.
    let active_shards = sharded
        .distributor_shards
        .iter()
        .filter(|s| s.tuples_distributed > 0)
        .count();
    assert!(
        active_shards >= 2,
        "sharding degenerated to one worker: {:?}",
        sharded.distributor_shards
    );
}
