//! Loopback client↔server equivalence: the engine-equivalence oracle, run
//! through the full socket path — `RemoteEngine` → TCP → `cjoin-server` →
//! engine — must be bit-identical to the reference evaluator *and* to the same
//! engine driven in-process.
//!
//! Because `RemoteEngine` implements `JoinEngine`, the assertions are the same
//! ones `tests/engine_equivalence.rs` makes; only the transport differs. A
//! reduced engine matrix keeps the suite fast while still covering both
//! baselines, both CJOIN stage layouts, the sharded front-/back-end, per-tuple
//! probing, and the columnar scan.

use std::sync::Arc;

use cjoin_repro::baseline::{BaselineConfig, BaselineEngine};
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine, StageLayout};
use cjoin_repro::client::RemoteEngine;
use cjoin_repro::query::{reference, JoinEngine};
use cjoin_repro::server::{CjoinServer, ServerConfig};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};
use cjoin_repro::storage::Catalog;
use cjoin_repro::SnapshotId;

fn cjoin_config() -> CjoinConfig {
    CjoinConfig::default()
        .with_worker_threads(2)
        .with_max_concurrency(32)
        .with_batch_size(256)
}

/// A reduced slice of the engine-equivalence matrix: every *kind* of engine
/// and hot-path layout, without the full cartesian sweep.
fn engines_under_test(catalog: &Arc<Catalog>) -> Vec<Box<dyn JoinEngine>> {
    vec![
        Box::new(BaselineEngine::new(
            Arc::clone(catalog),
            BaselineConfig::default(),
        )),
        Box::new(BaselineEngine::new(
            Arc::clone(catalog),
            BaselineConfig::postgres_like(),
        )),
        Box::new(CjoinEngine::start(Arc::clone(catalog), cjoin_config()).unwrap()),
        Box::new(
            CjoinEngine::start(
                Arc::clone(catalog),
                cjoin_config()
                    .with_stage_layout(StageLayout::Horizontal)
                    .with_distributor_shards(4)
                    .with_scan_workers(2),
            )
            .unwrap(),
        ),
        Box::new(
            CjoinEngine::start(
                Arc::clone(catalog),
                cjoin_config()
                    .with_stage_layout(StageLayout::Vertical)
                    .with_distributor_shards(4)
                    .with_scan_workers(4),
            )
            .unwrap(),
        ),
        Box::new(
            CjoinEngine::start(
                Arc::clone(catalog),
                cjoin_config()
                    .with_batched_probing(false)
                    .with_distributor_shards(4)
                    .with_scan_workers(4),
            )
            .unwrap(),
        ),
        Box::new(
            CjoinEngine::start(
                Arc::clone(catalog),
                cjoin_config().with_columnar_scan(true).with_scan_workers(4),
            )
            .unwrap(),
        ),
    ]
}

/// Puts an engine behind its own ephemeral-port server and returns both the
/// server and a second handle to the engine for the in-process comparison run.
fn serve(engine: Box<dyn JoinEngine>) -> (CjoinServer, Arc<dyn JoinEngine>) {
    let engine: Arc<dyn JoinEngine> = Arc::from(engine);
    let server = CjoinServer::start(
        Arc::clone(&engine),
        // High cap: the oracle drives one tenant hard and admission policy is
        // tested elsewhere; here only result fidelity is under test.
        ServerConfig::default().with_tenant_inflight_cap(64),
    )
    .unwrap();
    (server, engine)
}

#[test]
fn served_results_are_bit_identical_to_reference_and_in_process() {
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.001, 71));
    let catalog = data.catalog();
    let workload = Workload::generate(&data, WorkloadConfig::new(8, 0.05, 72));

    for engine in engines_under_test(&catalog) {
        let name = engine.name().to_string();
        let (server, local) = serve(engine);
        let client = RemoteEngine::connect(server.local_addr())
            .unwrap()
            .with_tenant("oracle")
            .with_name(format!("served-{name}"));

        for query in workload.queries() {
            let expected = reference::evaluate(&catalog, query, SnapshotId::INITIAL).unwrap();
            let in_process = local.execute(query).unwrap();
            let served = client.execute(query).unwrap();
            assert!(
                served.approx_eq(&expected),
                "[served-{name}] {} vs reference: {:?}",
                query.name,
                served.diff(&expected)
            );
            assert!(
                served.approx_eq(&in_process),
                "[served-{name}] {} vs in-process: {:?}",
                query.name,
                served.diff(&in_process)
            );
        }

        // The server's per-tenant ledger saw every served query and nothing
        // is left in flight.
        let stats = server.stats();
        let tenant = stats
            .tenants
            .iter()
            .find(|t| t.tenant == "oracle")
            .expect("oracle tenant recorded");
        let n = workload.queries().len() as u64;
        assert_eq!(tenant.admitted, n, "[served-{name}]");
        assert_eq!(tenant.completed, n, "[served-{name}]");
        assert_eq!(tenant.in_flight, 0, "[served-{name}]");
        assert_eq!(
            tenant.shed_at_cap + tenant.shed_deadline,
            0,
            "[served-{name}]"
        );

        server.shutdown();
        // Fully stopped: fresh connections are refused (or cut before answer).
        assert!(RemoteEngine::connect(server.local_addr()).is_err());
    }
}

#[test]
fn served_tickets_interleave_like_in_process_tickets() {
    // The submit/wait split over the wire: queue everything first through
    // connection-scoped tickets, collect later, results must still match.
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.001, 73));
    let catalog = data.catalog();
    let workload = Workload::generate(&data, WorkloadConfig::new(6, 0.05, 74));

    for engine in engines_under_test(&catalog) {
        let name = engine.name().to_string();
        let (server, _local) = serve(engine);
        let client = RemoteEngine::connect(server.local_addr())
            .unwrap()
            .with_tenant("interleave");

        let tickets: Vec<_> = workload
            .queries()
            .iter()
            .map(|q| client.submit(q.clone()).unwrap())
            .collect();
        for (query, ticket) in workload.queries().iter().zip(tickets) {
            let expected = reference::evaluate(&catalog, query, SnapshotId::INITIAL).unwrap();
            let result = ticket.wait().unwrap();
            assert!(
                result.approx_eq(&expected),
                "[served-{name}] {}: {:?}",
                query.name,
                result.diff(&expected)
            );
        }
        server.shutdown();
    }
}
