//! Deterministic fault-injection matrix for the pipeline supervisor.
//!
//! Every test here attacks the same invariant from a different angle: **no
//! client ticket ever hangs**. A panic in any pipeline role must resolve every
//! affected in-flight query with a typed [`QueryError::StageFailed`] (or let it
//! complete correctly if the role died after the query's answer was sealed),
//! the engine must degrade the failed axis and keep serving fresh queries, and
//! quiescing afterwards must leave no batch accounting residue.
//!
//! The matrix crosses every [`FaultSite`] with the parallelism axes that change
//! which threads exist ({scan_workers 1,4} x {distributor_shards 1,4} x
//! {columnar on,off}). Sites that do not exist under a given configuration
//! (e.g. `ShardRouter` with a single distributor shard) simply never fire; the
//! queries then must resolve `Ok` and match the oracle, which the harness
//! asserts rather than skips.

use std::time::{Duration, Instant};

use std::sync::Arc;

use cjoin_repro::cjoin::fault::{FaultPlan, FaultSite};
use cjoin_repro::cjoin::{Axis, CjoinConfig, CjoinEngine, QueryHandle, ResizeReason};
use cjoin_repro::query::{reference, QueryError, QueryOutcome, QueryResult};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};
use cjoin_repro::{SnapshotId, StarQuery};

/// Generous bound on how long a ticket may take to resolve. The point is not
/// latency: it is that resolution is *bounded* even when the role serving the
/// query died. A hang shows up as a test failure here instead of a CI timeout.
const RESOLVE_TIMEOUT: Duration = Duration::from_secs(60);

/// Polls a ticket to resolution without ever blocking unboundedly.
fn wait_bounded(handle: &QueryHandle, what: &str) -> QueryOutcome {
    let start = Instant::now();
    loop {
        if let Some(outcome) = handle.try_result() {
            return outcome;
        }
        assert!(
            start.elapsed() < RESOLVE_TIMEOUT,
            "{what}: ticket did not resolve within {RESOLVE_TIMEOUT:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Waits (bounded) until the pipeline's batch accounting drains to zero.
fn assert_quiesces(engine: &CjoinEngine, what: &str) {
    let start = Instant::now();
    loop {
        let stats = engine.stats();
        if stats.batches_in_flight == 0 {
            return;
        }
        assert!(
            start.elapsed() < RESOLVE_TIMEOUT,
            "{what}: batches_in_flight stuck at {} after {RESOLVE_TIMEOUT:?}",
            stats.batches_in_flight
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Submits a query, retrying while the supervisor is mid-restart (a submit in
/// that window is refused with a typed error, never hung). Bounded like every
/// other wait in this file.
fn submit_with_retry(engine: &CjoinEngine, query: &StarQuery, what: &str) -> QueryHandle {
    let start = Instant::now();
    loop {
        match engine.submit(query.clone()) {
            Ok(handle) => return handle,
            Err(err) => assert!(
                start.elapsed() < RESOLVE_TIMEOUT,
                "{what}: submit kept failing: {err}"
            ),
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn test_data() -> SsbDataSet {
    SsbDataSet::generate(SsbConfig::for_tests(0.001, 701))
}

fn test_queries(data: &SsbDataSet, seed: u64) -> Vec<StarQuery> {
    Workload::generate(data, WorkloadConfig::new(4, 0.05, seed))
        .queries()
        .to_vec()
}

fn assert_matches_oracle(result: &QueryResult, expected: &QueryResult, what: &str) {
    assert!(
        result.approx_eq(expected),
        "{what}: result diverged from oracle: {:?}",
        result.diff(expected)
    );
}

/// The tentpole matrix: a one-shot panic at every fault site, across the
/// parallelism configurations that change which threads exist. For every cell:
/// all in-flight tickets resolve in bounded time, `Ok` results match the
/// oracle, the engine serves a fresh correct query afterwards, and the pipeline
/// quiesces with `batches_in_flight == 0`.
#[test]
fn panic_at_every_site_never_hangs_a_ticket_and_engine_recovers() {
    let data = test_data();
    let catalog = data.catalog();
    let queries = test_queries(&data, 11);
    let expected: Vec<_> = queries
        .iter()
        .map(|q| reference::evaluate(&catalog, q, SnapshotId::INITIAL).unwrap())
        .collect();
    let fresh_query = test_queries(&data, 12).remove(0);
    let fresh_expected = reference::evaluate(&catalog, &fresh_query, SnapshotId::INITIAL).unwrap();

    let mut seed = 0u64;
    for site in FaultSite::ALL {
        for scan_workers in [1usize, 4] {
            for distributor_shards in [1usize, 4] {
                for columnar in [false, true] {
                    seed += 1;
                    let what = format!(
                        "site={site:?} scan_workers={scan_workers} \
                         shards={distributor_shards} columnar={columnar}"
                    );
                    // `panic_at_event(site, 3)` lets the role survive engine
                    // start and the first few batches, so the panic lands while
                    // queries are genuinely in flight rather than during spawn.
                    let plan = FaultPlan::seeded(seed).panic_at_event(site, 3).build();
                    let config = CjoinConfig::default()
                        .with_worker_threads(2)
                        .with_max_concurrency(16)
                        .with_batch_size(128)
                        .with_scan_workers(scan_workers)
                        .with_distributor_shards(distributor_shards)
                        .with_columnar_scan(columnar)
                        .with_fault_plan(plan);
                    let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();

                    // A submit that lands in the restart window is refused
                    // with a typed error — that is the contract (never a
                    // hang), so the harness counts it as a failed admission.
                    let mut failed = 0usize;
                    let mut handles = Vec::new();
                    for (i, q) in queries.iter().enumerate() {
                        match engine.submit(q.clone()) {
                            Ok(handle) => handles.push((i, handle)),
                            Err(_) => failed += 1,
                        }
                    }

                    for (i, handle) in &handles {
                        let i = *i;
                        match wait_bounded(handle, &what) {
                            Ok(result) => {
                                assert_matches_oracle(&result, &expected[i], &what);
                            }
                            Err(QueryError::StageFailed { role, detail }) => {
                                assert!(
                                    !role.is_empty() && !detail.is_empty(),
                                    "{what}: empty failure diagnostics"
                                );
                                failed += 1;
                            }
                            Err(other) => panic!("{what}: unexpected error {other}"),
                        }
                    }

                    // If any query was failed, the supervisor must record the
                    // role death and restart the pipeline. Tickets resolve
                    // *before* the respawn completes, so poll bounded.
                    if failed > 0 {
                        let start = Instant::now();
                        loop {
                            let stats = engine.stats();
                            if stats.role_failures >= 1 && stats.pipeline_restarts >= 1 {
                                break;
                            }
                            assert!(
                                start.elapsed() < RESOLVE_TIMEOUT,
                                "{what}: {failed} failed tickets but no recorded \
                                 role failure + restart"
                            );
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }

                    // The engine must stay serviceable after the fault: a fresh
                    // query on the (possibly degraded) pipeline is still exact.
                    // If the one-shot fault only reaches its trigger event now
                    // (e.g. the merger's per-query merge counter), this very
                    // query absorbs it — the fault latch guarantees the retry
                    // runs on a clean pipeline.
                    let fresh_start = Instant::now();
                    let fresh = loop {
                        let outcome = wait_bounded(
                            &submit_with_retry(&engine, &fresh_query, &what),
                            &format!("{what} (post-failure query)"),
                        );
                        match outcome {
                            Ok(result) => break result,
                            Err(QueryError::StageFailed { .. }) => assert!(
                                fresh_start.elapsed() < RESOLVE_TIMEOUT,
                                "{what}: post-failure query kept failing"
                            ),
                            Err(other) => {
                                panic!("{what}: post-failure query failed: {other}")
                            }
                        }
                    };
                    assert_matches_oracle(&fresh, &fresh_expected, &format!("{what} (fresh)"));

                    assert_quiesces(&engine, &what);
                    engine.shutdown();
                }
            }
        }
    }
}

/// Regression for the pre-supervision hang: a ticket whose filter Stage dies
/// mid-query must resolve with `Err(StageFailed)` in bounded time instead of
/// blocking `wait()` forever on a result channel nobody will ever write to.
#[test]
fn dead_stage_resolves_ticket_with_stage_failed_in_bounded_time() {
    let data = test_data();
    let catalog = data.catalog();
    let query = test_queries(&data, 21).remove(0);

    // Slow the scan slightly so the query is reliably still in flight when the
    // Stage worker panics, then kill the Stage on its first processed batch.
    let plan = FaultPlan::seeded(7)
        .delay(FaultSite::ScanWorker, 500)
        .panic_at_event(FaultSite::StageWorker, 2)
        .build();
    let config = CjoinConfig::default()
        .with_worker_threads(2)
        .with_max_concurrency(8)
        .with_batch_size(128)
        .with_fault_plan(plan);
    let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();

    let start = Instant::now();
    let outcome = wait_bounded(&engine.submit(query).unwrap(), "dead-stage ticket");
    let elapsed = start.elapsed();
    match outcome {
        Err(QueryError::StageFailed { .. }) => {}
        other => panic!("expected StageFailed, got {other:?}"),
    }
    assert!(
        elapsed < RESOLVE_TIMEOUT,
        "StageFailed took {elapsed:?} to surface"
    );

    // The degradation ladder must collapse the Stage axis. The ticket is
    // resolved *before* the supervisor finishes the restart (so clients never
    // wait on the respawn), hence the bounded poll here.
    let start = Instant::now();
    while engine.degradations().is_empty() {
        assert!(
            start.elapsed() < RESOLVE_TIMEOUT,
            "stage death never recorded a degradation step"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // The engine must still answer queries on the degraded layout.
    let probe = test_queries(&data, 22).remove(0);
    let expected = reference::evaluate(&catalog, &probe, SnapshotId::INITIAL).unwrap();
    let result = wait_bounded(
        &submit_with_retry(&engine, &probe, "post-degradation probe"),
        "post-degradation probe",
    )
    .unwrap();
    assert_matches_oracle(&result, &expected, "post-degradation probe");
    engine.shutdown();
}

/// A query with an impossible deadline is reaped mid-scan with
/// `DeadlineExceeded`, while a concurrent unconstrained query sharing the same
/// scan pass stays bit-identical to the reference answer: cancellation releases
/// the victim's partial state without perturbing its neighbours.
#[test]
fn deadline_reap_leaves_concurrent_query_untouched() {
    let data = test_data();
    let catalog = data.catalog();
    let mut queries = test_queries(&data, 31);
    let mut victim = queries.remove(0);
    victim.deadline = Some(Duration::from_millis(30));
    let survivor = queries.remove(0);
    let expected = reference::evaluate(&catalog, &survivor, SnapshotId::INITIAL).unwrap();

    // Per-batch scan delay stretches the pass well past the victim's deadline
    // while keeping total runtime bounded for the survivor.
    let plan = FaultPlan::seeded(3)
        .delay(FaultSite::ScanWorker, 2_000)
        .build();
    let config = CjoinConfig::default()
        .with_worker_threads(2)
        .with_max_concurrency(8)
        .with_batch_size(256)
        .with_fault_plan(plan);
    let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();

    let victim_handle = engine.submit(victim).unwrap();
    let survivor_handle = engine.submit(survivor).unwrap();

    match wait_bounded(&victim_handle, "deadline victim") {
        Err(QueryError::DeadlineExceeded { deadline }) => {
            assert_eq!(deadline, Duration::from_millis(30));
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let result = wait_bounded(&survivor_handle, "deadline survivor").unwrap();
    assert_matches_oracle(&result, &expected, "survivor next to reaped query");
    engine.shutdown();
}

/// A corrupted columnar row group is detected by its checksum on first decode,
/// quarantined, and served from the row store instead: the scan result stays
/// oracle-exact and the quarantine is visible in the stats.
#[test]
fn corrupt_row_group_is_quarantined_and_answers_stay_exact() {
    let data = test_data();
    let catalog = data.catalog();
    let queries = test_queries(&data, 41);
    let expected: Vec<_> = queries
        .iter()
        .map(|q| reference::evaluate(&catalog, q, SnapshotId::INITIAL).unwrap())
        .collect();

    let plan = FaultPlan::seeded(5).corrupt_row_group(0).build();
    let config = CjoinConfig::default()
        .with_worker_threads(2)
        .with_max_concurrency(8)
        .with_batch_size(256)
        .with_columnar_scan(true)
        .with_fault_plan(plan);
    let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();

    for (i, query) in queries.iter().enumerate() {
        let result = wait_bounded(
            &engine.submit(query.clone()).unwrap(),
            "corrupt-group query",
        )
        .unwrap();
        assert_matches_oracle(&result, &expected[i], "corrupt-group query");
    }

    let stats = engine.stats();
    let columnar = stats.columnar.expect("columnar stats present");
    assert!(
        columnar.groups_quarantined >= 1,
        "corrupted group was never quarantined"
    );
    engine.shutdown();
}

/// Supervision composed with the elastic scheduler: a Stage panic forces the
/// supervisor to downscale the stage axis (the degradation is committed to the
/// scheduler so respawns keep the degraded shape), after which a scheduler
/// upscale via `request_resize` re-grows the axis — and the engine must serve
/// an oracle-exact query on the re-grown pipeline.
#[test]
fn scheduler_upscale_after_panic_downscale_serves_exact_answers() {
    let data = test_data();
    let catalog = data.catalog();
    let doomed = test_queries(&data, 51).remove(0);

    // Governed config: every parallelism knob is left at its default so the
    // scheduler owns the widths; the fault plan kills a Stage worker on its
    // second processed batch while the scan is slowed enough to keep the
    // query in flight.
    let plan = FaultPlan::seeded(11)
        .delay(FaultSite::ScanWorker, 500)
        .panic_at_event(FaultSite::StageWorker, 2)
        .build();
    let config = CjoinConfig {
        max_concurrency: 8,
        batch_size: 128,
        ..CjoinConfig::default()
    }
    .with_fault_plan(plan);
    let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
    assert!(engine.scheduler_stats().governed.iter().all(|&g| g));

    // The doomed query resolves with StageFailed (or completes, if the panic
    // landed after its answer was sealed) — bounded either way.
    match wait_bounded(&engine.submit(doomed).unwrap(), "doomed ticket") {
        Ok(_) | Err(QueryError::StageFailed { .. }) => {}
        other => panic!("expected Ok or StageFailed, got {other:?}"),
    }
    let start = Instant::now();
    while engine.degradations().is_empty() {
        assert!(
            start.elapsed() < RESOLVE_TIMEOUT,
            "stage death never recorded a degradation step"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // The supervisor's downscale collapsed the stage axis to one worker; an
    // explicit scheduler upscale now re-grows it past the degraded width.
    let start = Instant::now();
    loop {
        match engine.request_resize(Axis::StageWorkers, 2) {
            Ok(()) => break,
            // A submit/resize during the supervisor's restart window is
            // refused with a typed error, never hung — retry, bounded.
            Err(err) => assert!(
                start.elapsed() < RESOLVE_TIMEOUT,
                "upscale kept failing: {err}"
            ),
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = engine.scheduler_stats();
    assert_eq!(stats.stage_workers, 2, "upscale took effect");
    assert!(
        stats
            .resizes
            .iter()
            .any(|e| e.axis == Axis::StageWorkers && e.reason == ResizeReason::Forced && e.to == 2),
        "forced upscale recorded: {:?}",
        stats.resizes
    );

    // The re-grown pipeline serves fresh queries oracle-exactly. The fault
    // plan's one-shot panic already fired, so these run clean.
    let probe = test_queries(&data, 52).remove(0);
    let expected = reference::evaluate(&catalog, &probe, SnapshotId::INITIAL).unwrap();
    let result = wait_bounded(
        &submit_with_retry(&engine, &probe, "post-upscale probe"),
        "post-upscale probe",
    )
    .unwrap();
    assert_matches_oracle(&result, &expected, "post-upscale probe");
    assert_quiesces(&engine, "post-upscale quiesce");
    engine.shutdown();
}
