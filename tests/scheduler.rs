//! Elastic stage-scheduler integration tests.
//!
//! The invariant under attack: **a mid-flight resize never drops or duplicates
//! a tuple in any query's answer**. A resize drains the current pipeline
//! incarnation at a quiescent point and re-installs every in-flight query on
//! the new one at its original snapshot, restarting its pass — by §3.3's wrap
//! protocol any complete pass over the snapshot yields the exact answer, so
//! COUNT/SUM aggregates must stay oracle-identical across forced upscales and
//! downscales, and the pipeline must quiesce to `batches_in_flight == 0`
//! afterwards.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cjoin_repro::cjoin::fault::{FaultPlan, FaultSite};
use cjoin_repro::cjoin::{Axis, CjoinConfig, CjoinEngine, QueryHandle, ResizeReason};
use cjoin_repro::query::{reference, JoinEngine, QueryOutcome};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};
use cjoin_repro::{SnapshotId, StarQuery};

const RESOLVE_TIMEOUT: Duration = Duration::from_secs(60);

fn wait_bounded(handle: &QueryHandle, what: &str) -> QueryOutcome {
    let start = Instant::now();
    loop {
        if let Some(outcome) = handle.try_result() {
            return outcome;
        }
        assert!(
            start.elapsed() < RESOLVE_TIMEOUT,
            "{what}: ticket did not resolve within {RESOLVE_TIMEOUT:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn assert_quiesces(engine: &CjoinEngine, what: &str) {
    let start = Instant::now();
    loop {
        let stats = engine.stats();
        if stats.batches_in_flight == 0 {
            return;
        }
        assert!(
            start.elapsed() < RESOLVE_TIMEOUT,
            "{what}: batches_in_flight stuck at {} after {RESOLVE_TIMEOUT:?}",
            stats.batches_in_flight
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn test_data() -> SsbDataSet {
    SsbDataSet::generate(SsbConfig::for_tests(0.001, 901))
}

fn test_queries(data: &SsbDataSet, count: usize, seed: u64) -> Vec<StarQuery> {
    Workload::generate(data, WorkloadConfig::new(count, 0.05, seed))
        .queries()
        .to_vec()
}

/// Forced upscale and downscale on every axis while queries are in flight:
/// every answer stays oracle-exact, every resize is recorded, and the pipeline
/// quiesces afterwards.
#[test]
fn mid_flight_resizes_never_drop_or_duplicate_tuples() {
    let data = test_data();
    let catalog = data.catalog();
    let queries = test_queries(&data, 4, 91);
    let expected: Vec<_> = queries
        .iter()
        .map(|q| reference::evaluate(&catalog, q, SnapshotId::INITIAL).unwrap())
        .collect();

    // Slow the scan so the queries are reliably still mid-pass when the
    // resizes land; all axes left at their defaults so the scheduler governs
    // them (max_concurrency/batch_size are not axes).
    let config = CjoinConfig {
        max_concurrency: 16,
        batch_size: 128,
        ..CjoinConfig::default()
    }
    .with_fault_plan(
        FaultPlan::seeded(17)
            .delay(FaultSite::ScanWorker, 1_000)
            .build(),
    );
    let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
    let baseline = engine.scheduler_stats();
    assert!(baseline.governed.iter().all(|&g| g), "all axes governed");
    let stage0 = baseline.stage_workers;

    let handles: Vec<_> = queries
        .iter()
        .map(|q| engine.submit(q.clone()).unwrap())
        .collect();

    // Forced upscale on every axis mid-flight (scan and shards start at the
    // classic width 1 whatever the host; the stage axis grows one past its
    // startup size), then back down again.
    engine.request_resize(Axis::ScanWorkers, 2).unwrap();
    engine
        .request_resize(Axis::StageWorkers, stage0 + 1)
        .unwrap();
    engine.request_resize(Axis::DistributorShards, 2).unwrap();
    engine.request_resize(Axis::DistributorShards, 1).unwrap();
    engine.request_resize(Axis::StageWorkers, stage0).unwrap();
    engine.request_resize(Axis::ScanWorkers, 1).unwrap();

    for ((query, handle), expected) in queries.iter().zip(&handles).zip(&expected) {
        let result = wait_bounded(handle, &query.name).unwrap();
        assert!(
            result.approx_eq(expected),
            "{} diverged from oracle across resizes: {:?}",
            query.name,
            result.diff(expected)
        );
    }
    assert_quiesces(&engine, "post-resize quiesce");

    // Every forced resize is observable: six events with reason Forced, and
    // the final widths are back at the classic shape.
    let stats = engine.stats();
    let forced: Vec<_> = stats
        .scheduler
        .resizes
        .iter()
        .filter(|e| e.reason == ResizeReason::Forced)
        .collect();
    assert_eq!(
        forced.len(),
        6,
        "all six forced resizes recorded: {forced:?}"
    );
    assert_eq!(
        (
            stats.scheduler.scan_workers,
            stats.scheduler.stage_workers,
            stats.scheduler.distributor_shards
        ),
        (1, stage0, 1)
    );
    engine.shutdown();
}

/// Startup sizing derives from the host: the scan and aggregation axes start
/// at the classic width 1, the stage axis at `min(cores - 2, default)` but
/// never below 1 — on a 1-core host the whole pipeline collapses to the
/// paper's classic single-threaded shape.
#[test]
fn startup_sizing_collapses_to_classic_shape_when_cores_are_scarce() {
    let data = test_data();
    let catalog = data.catalog();
    let engine = CjoinEngine::start(
        Arc::clone(&catalog),
        CjoinConfig {
            max_concurrency: 16,
            ..CjoinConfig::default()
        },
    )
    .unwrap();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let stats = engine.scheduler_stats();
    assert!(stats.auto_tune);
    assert_eq!(stats.available_parallelism, cores);
    assert_eq!(stats.scan_workers, 1);
    assert_eq!(stats.distributor_shards, 1);
    let expected_stage = cores
        .saturating_sub(2)
        .clamp(1, CjoinConfig::default().worker_threads);
    assert_eq!(stats.stage_workers, expected_stage);
    if cores == 1 {
        assert_eq!(
            (
                stats.scan_workers,
                stats.stage_workers,
                stats.distributor_shards
            ),
            (1, 1, 1),
            "1-core host runs the classic single-threaded shape"
        );
    }
    // The spawned pipeline actually has the scheduler's shape.
    let plan = engine.stage_plan();
    assert_eq!(plan.total_threads(), expected_stage);

    // The summary is visible through the engine-independent trait (and hence
    // the server stats RPC, which forwards it verbatim).
    let summary = (&engine as &dyn JoinEngine).scheduler_summary().unwrap();
    assert!(summary.auto_tune);
    assert_eq!(summary.available_parallelism, cores as u64);
    assert_eq!(summary.stage_workers, expected_stage as u64);
    engine.shutdown();
}

/// Explicitly configured knobs are fixed overrides: the scheduler governs
/// nothing, records nothing, and the pipeline spawns bit-identically to the
/// pre-scheduler engine.
#[test]
fn pinned_knobs_behave_bit_identically() {
    let data = test_data();
    let catalog = data.catalog();
    let queries = test_queries(&data, 2, 92);
    let engine = CjoinEngine::start(
        Arc::clone(&catalog),
        CjoinConfig::default()
            .with_worker_threads(2)
            .with_scan_workers(2)
            .with_distributor_shards(2)
            .with_max_concurrency(16),
    )
    .unwrap();

    let stats = engine.scheduler_stats();
    assert!(stats.governed.iter().all(|&g| !g), "nothing governed");
    assert!(stats.resizes.is_empty(), "no startup resize on pinned axes");
    assert_eq!(
        (
            stats.scan_workers,
            stats.stage_workers,
            stats.distributor_shards
        ),
        (2, 2, 2)
    );
    let plan = engine.stage_plan();
    assert_eq!(plan.scan_workers, 2);
    assert_eq!(plan.distributor_shards, 2);

    // A forced resize still works on pinned axes — an explicit request
    // outranks the builder pin — and answers stay exact afterwards.
    engine.request_resize(Axis::DistributorShards, 1).unwrap();
    assert_eq!(engine.scheduler_stats().distributor_shards, 1);
    for query in &queries {
        let expected = reference::evaluate(&catalog, query, SnapshotId::INITIAL).unwrap();
        let result = wait_bounded(&engine.submit(query.clone()).unwrap(), &query.name).unwrap();
        assert!(
            result.approx_eq(&expected),
            "{} diverged after pinned-axis resize: {:?}",
            query.name,
            result.diff(&expected)
        );
    }
    assert_quiesces(&engine, "pinned-axis quiesce");
    engine.shutdown();
}

/// Invalid resize requests are refused with typed errors and leave the
/// pipeline untouched.
#[test]
fn invalid_resize_requests_are_refused() {
    let data = test_data();
    let catalog = data.catalog();
    let engine = CjoinEngine::start(
        Arc::clone(&catalog),
        CjoinConfig {
            max_concurrency: 8,
            ..CjoinConfig::default()
        },
    )
    .unwrap();
    assert!(engine.request_resize(Axis::ScanWorkers, 0).is_err());
    assert!(engine.request_resize(Axis::ScanWorkers, 65).is_err());
    assert!(engine.request_resize(Axis::DistributorShards, 257).is_err());
    let queries = test_queries(&data, 1, 93);
    let expected = reference::evaluate(&catalog, &queries[0], SnapshotId::INITIAL).unwrap();
    let result = engine.execute(queries[0].clone()).unwrap();
    assert!(result.approx_eq(&expected), "{:?}", result.diff(&expected));
    engine.shutdown();
}
