//! Property-based tests (proptest) over the core invariants:
//!
//! * For arbitrary small star-schema universes and arbitrary star queries, the CJOIN
//!   pipeline, the query-at-a-time baseline and the reference evaluator agree — the
//!   filtering invariant of §3.2.2 made executable.
//! * Query bit-vector algebra obeys the set laws the Filters rely on.
//! * Aggregate state merging is equivalent to single-pass accumulation.

use std::sync::Arc;

use proptest::prelude::*;

use cjoin_repro::baseline::{BaselineConfig, BaselineEngine};
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::common::QuerySet;
use cjoin_repro::query::{reference, AggValue, AggregateSpec, GroupedAggregator, Predicate};
use cjoin_repro::storage::{Catalog, Column, Row, Schema, Table, Value};
use cjoin_repro::{AggFunc, ColumnRef, SnapshotId, StarQuery};

// ---------------------------------------------------------------------------
// Random star-schema universes and queries
// ---------------------------------------------------------------------------

/// A generated warehouse: 2 dimensions ("alpha", "beta") and a fact table whose rows
/// reference them by key, plus a measure column.
#[derive(Debug, Clone)]
struct Universe {
    alpha_names: Vec<String>,
    beta_sizes: Vec<i64>,
    fact: Vec<(i64, i64, i64)>, // (alpha_key, beta_key, amount); keys may dangle
}

fn universe_strategy() -> impl Strategy<Value = Universe> {
    let alpha = prop::collection::vec("[a-d]{1,3}", 1..6);
    let beta = prop::collection::vec(1i64..50, 1..5);
    (alpha, beta).prop_flat_map(|(alpha_names, beta_sizes)| {
        let a_max = alpha_names.len() as i64 + 1; // +1 allows dangling keys
        let b_max = beta_sizes.len() as i64 + 1;
        prop::collection::vec((1..=a_max, 1..=b_max, 0i64..1000), 1..120).prop_map(
            move |fact| Universe {
                alpha_names: alpha_names.clone(),
                beta_sizes: beta_sizes.clone(),
                fact,
            },
        )
    })
}

/// A generated query over the universe: optional predicates on either dimension,
/// optional fact predicate, group-by choice and a couple of aggregates.
#[derive(Debug, Clone)]
struct GeneratedQuery {
    alpha_pred_letter: Option<char>,
    beta_min_size: Option<i64>,
    fact_min_amount: Option<i64>,
    join_alpha: bool,
    join_beta: bool,
    group_by_alpha: bool,
}

fn query_strategy() -> impl Strategy<Value = GeneratedQuery> {
    (
        prop::option::of(prop::char::range('a', 'd')),
        prop::option::of(1i64..50),
        prop::option::of(0i64..1000),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(alpha_pred_letter, beta_min_size, fact_min_amount, join_alpha, join_beta, group_by_alpha)| {
                GeneratedQuery {
                    alpha_pred_letter,
                    beta_min_size,
                    fact_min_amount,
                    join_alpha,
                    join_beta,
                    group_by_alpha,
                }
            },
        )
}

fn build_catalog(universe: &Universe) -> Arc<Catalog> {
    let catalog = Catalog::new();
    let alpha = Table::new(Schema::new("alpha", vec![Column::int("a_key"), Column::str("a_name")]));
    for (i, name) in universe.alpha_names.iter().enumerate() {
        alpha
            .insert(vec![Value::int(i as i64 + 1), Value::str(name)], SnapshotId::INITIAL)
            .unwrap();
    }
    let beta = Table::new(Schema::new("beta", vec![Column::int("b_key"), Column::int("b_size")]));
    for (i, size) in universe.beta_sizes.iter().enumerate() {
        beta.insert(vec![Value::int(i as i64 + 1), Value::int(*size)], SnapshotId::INITIAL)
            .unwrap();
    }
    let fact = Table::with_rows_per_page(
        Schema::new(
            "facts",
            vec![Column::int("f_alpha"), Column::int("f_beta"), Column::int("f_amount")],
        ),
        16,
    );
    fact.insert_batch_unchecked(
        universe
            .fact
            .iter()
            .map(|(a, b, amount)| Row::new(vec![Value::int(*a), Value::int(*b), Value::int(*amount)])),
        SnapshotId::INITIAL,
    );
    catalog.add_table(Arc::new(alpha));
    catalog.add_table(Arc::new(beta));
    catalog.add_fact_table(Arc::new(fact));
    Arc::new(catalog)
}

fn build_query(spec: &GeneratedQuery, index: usize) -> StarQuery {
    let mut builder = StarQuery::builder(format!("prop#{index}"));
    if let Some(min) = spec.fact_min_amount {
        builder = builder.fact_predicate(Predicate::Compare {
            column: "f_amount".into(),
            op: cjoin_repro::query::CompareOp::Ge,
            value: Value::int(min),
        });
    }
    if spec.join_alpha {
        let pred = match spec.alpha_pred_letter {
            Some(letter) => Predicate::between("a_name", letter.to_string(), format!("{letter}zzz")),
            None => Predicate::True,
        };
        builder = builder.join_dimension("alpha", "f_alpha", "a_key", pred);
    }
    if spec.join_beta {
        let pred = match spec.beta_min_size {
            Some(min) => Predicate::Compare {
                column: "b_size".into(),
                op: cjoin_repro::query::CompareOp::Ge,
                value: Value::int(min),
            },
            None => Predicate::True,
        };
        builder = builder.join_dimension("beta", "f_beta", "b_key", pred);
    }
    if spec.group_by_alpha && spec.join_alpha {
        builder = builder.group_by(ColumnRef::dim("alpha", "a_name"));
    }
    builder
        .aggregate(AggregateSpec::count_star())
        .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("f_amount")))
        .aggregate(AggregateSpec::over(AggFunc::Min, ColumnRef::fact("f_amount")))
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// CJOIN and the baseline agree with the reference evaluator on arbitrary
    /// universes and concurrent query mixes.
    #[test]
    fn engines_agree_on_random_workloads(
        universe in universe_strategy(),
        specs in prop::collection::vec(query_strategy(), 1..5),
    ) {
        let catalog = build_catalog(&universe);
        let queries: Vec<StarQuery> = specs.iter().enumerate().map(|(i, s)| build_query(s, i)).collect();

        let baseline = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::default());
        let engine = CjoinEngine::start(
            Arc::clone(&catalog),
            CjoinConfig::default()
                .with_worker_threads(2)
                .with_max_concurrency(16)
                .with_batch_size(32),
        )
        .unwrap();

        // All queries run concurrently in the shared pipeline.
        let handles: Vec<_> = queries.iter().map(|q| engine.submit(q.clone()).unwrap()).collect();
        for (query, handle) in queries.iter().zip(handles) {
            let expected = reference::evaluate(&catalog, query, SnapshotId::INITIAL).unwrap();
            let (baseline_result, _) = baseline.execute(query).unwrap();
            let cjoin_result = handle.wait().unwrap();
            prop_assert!(
                baseline_result.approx_eq(&expected),
                "baseline diverged on {}: {:?}", query.name, baseline_result.diff(&expected)
            );
            prop_assert!(
                cjoin_result.approx_eq(&expected),
                "cjoin diverged on {}: {:?}", query.name, cjoin_result.diff(&expected)
            );
        }
        engine.shutdown();
    }

    /// Bit-vector AND/OR/subset behave like the corresponding set operations.
    #[test]
    fn query_set_obeys_set_algebra(
        capacity in 1usize..200,
        a_bits in prop::collection::vec(0usize..200, 0..32),
        b_bits in prop::collection::vec(0usize..200, 0..32),
    ) {
        let a_bits: Vec<usize> = a_bits.into_iter().filter(|&b| b < capacity).collect();
        let b_bits: Vec<usize> = b_bits.into_iter().filter(|&b| b < capacity).collect();
        let a = QuerySet::from_bits(capacity, a_bits.iter().copied());
        let b = QuerySet::from_bits(capacity, b_bits.iter().copied());

        use std::collections::BTreeSet;
        let sa: BTreeSet<usize> = a_bits.iter().copied().collect();
        let sb: BTreeSet<usize> = b_bits.iter().copied().collect();

        let mut and = a.clone();
        and.and_assign(&b);
        prop_assert_eq!(and.iter().collect::<Vec<_>>(),
            sa.intersection(&sb).copied().collect::<Vec<_>>());

        let mut or = a.clone();
        or.or_assign(&b);
        prop_assert_eq!(or.iter().collect::<Vec<_>>(),
            sa.union(&sb).copied().collect::<Vec<_>>());

        let mut and_not = a.clone();
        and_not.and_not_assign(&b);
        prop_assert_eq!(and_not.iter().collect::<Vec<_>>(),
            sa.difference(&sb).copied().collect::<Vec<_>>());

        prop_assert_eq!(a.is_subset_of(&b), sa.is_subset(&sb));
        prop_assert_eq!(a.intersects(&b), !sa.is_disjoint(&sb));
        prop_assert_eq!(a.count(), sa.len());
        prop_assert_eq!(a.is_empty(), sa.is_empty());
    }

    /// Merging partial aggregation states is equivalent to accumulating everything in
    /// one pass (the property that would let the Distributor be parallelised).
    #[test]
    fn aggregate_merge_matches_single_pass(
        values in prop::collection::vec((0i64..5, -1000i64..1000), 1..80),
        split in 0usize..80,
    ) {
        // Group by fact column 0; aggregate COUNT / SUM / MIN / MAX / AVG over column 1.
        let query = cjoin_repro::query::star::tests_support::simple_bound_query(
            vec![0],
            vec![AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg],
        );
        let split = split.min(values.len());

        let mut single = GroupedAggregator::new(&query);
        for (group, amount) in &values {
            single.accumulate(&Row::new(vec![Value::int(*group), Value::int(*amount)]), &[]);
        }

        let mut left = GroupedAggregator::new(&query);
        let mut right = GroupedAggregator::new(&query);
        for (group, amount) in &values[..split] {
            left.accumulate(&Row::new(vec![Value::int(*group), Value::int(*amount)]), &[]);
        }
        for (group, amount) in &values[split..] {
            right.accumulate(&Row::new(vec![Value::int(*group), Value::int(*amount)]), &[]);
        }
        left.merge(right);

        let a = single.finalize();
        let b = left.finalize();
        prop_assert!(a.approx_eq(&b), "merged aggregation diverged: {:?}", a.diff(&b));
    }

    /// COUNT(*) through the full CJOIN pipeline equals the number of fact rows
    /// whatever the (dangling-key) fact content is, when no dimension is joined.
    #[test]
    fn unfiltered_count_equals_fact_cardinality(universe in universe_strategy()) {
        let catalog = build_catalog(&universe);
        let engine = CjoinEngine::start(
            Arc::clone(&catalog),
            CjoinConfig::default().with_worker_threads(1).with_max_concurrency(4).with_batch_size(16),
        ).unwrap();
        let query = StarQuery::builder("count_all")
            .aggregate(AggregateSpec::count_star())
            .build();
        let result = engine.execute(query).unwrap();
        let count = match result.rows().next().unwrap().1[0] {
            AggValue::Int(c) => c,
            ref other => panic!("unexpected {other:?}"),
        };
        prop_assert_eq!(count, universe.fact.len() as i128);
        engine.shutdown();
    }
}
