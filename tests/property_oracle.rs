//! Randomized property tests over the core invariants:
//!
//! * For arbitrary small star-schema universes and arbitrary star queries, the CJOIN
//!   pipeline, the query-at-a-time baseline and the reference evaluator agree — the
//!   filtering invariant of §3.2.2 made executable.
//! * Query bit-vector algebra obeys the set laws the Filters rely on.
//! * Aggregate state merging is equivalent to single-pass accumulation.
//!
//! Cases are generated from a fixed-seed [`StdRng`], so every run explores the same
//! (broad) input space deterministically; on failure the assertion message carries
//! the case index, which pins down the failing input exactly.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cjoin_repro::baseline::{BaselineConfig, BaselineEngine};
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::common::QuerySet;
use cjoin_repro::query::{reference, AggValue, AggregateSpec, GroupedAggregator, Predicate};
use cjoin_repro::storage::{Catalog, Column, Row, Schema, Table, Value};
use cjoin_repro::{AggFunc, ColumnRef, SnapshotId, StarQuery};

// ---------------------------------------------------------------------------
// Random star-schema universes and queries
// ---------------------------------------------------------------------------

/// A generated warehouse: 2 dimensions ("alpha", "beta") and a fact table whose rows
/// reference them by key, plus a measure column.
#[derive(Debug, Clone)]
struct Universe {
    alpha_names: Vec<String>,
    beta_sizes: Vec<i64>,
    fact: Vec<(i64, i64, i64)>, // (alpha_key, beta_key, amount); keys may dangle
}

/// A short random string over the letters a–d (the alpha-dimension name domain).
fn random_alpha_name(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1..=3usize);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..4u8)) as char)
        .collect()
}

fn random_universe(rng: &mut StdRng) -> Universe {
    let alpha_names: Vec<String> = (0..rng.gen_range(1..6usize))
        .map(|_| random_alpha_name(rng))
        .collect();
    let beta_sizes: Vec<i64> = (0..rng.gen_range(1..5usize))
        .map(|_| rng.gen_range(1i64..50))
        .collect();
    let a_max = alpha_names.len() as i64 + 1; // +1 allows dangling keys
    let b_max = beta_sizes.len() as i64 + 1;
    let fact = (0..rng.gen_range(1..120usize))
        .map(|_| {
            (
                rng.gen_range(1..=a_max),
                rng.gen_range(1..=b_max),
                rng.gen_range(0i64..1000),
            )
        })
        .collect();
    Universe {
        alpha_names,
        beta_sizes,
        fact,
    }
}

/// A generated query over the universe: optional predicates on either dimension,
/// optional fact predicate, group-by choice and a couple of aggregates.
#[derive(Debug, Clone)]
struct GeneratedQuery {
    alpha_pred_letter: Option<char>,
    beta_min_size: Option<i64>,
    fact_min_amount: Option<i64>,
    join_alpha: bool,
    join_beta: bool,
    group_by_alpha: bool,
}

fn random_query(rng: &mut StdRng) -> GeneratedQuery {
    GeneratedQuery {
        alpha_pred_letter: rng
            .gen_bool(0.5)
            .then(|| (b'a' + rng.gen_range(0..4u8)) as char),
        beta_min_size: rng.gen_bool(0.5).then(|| rng.gen_range(1i64..50)),
        fact_min_amount: rng.gen_bool(0.5).then(|| rng.gen_range(0i64..1000)),
        join_alpha: rng.gen_bool(0.5),
        join_beta: rng.gen_bool(0.5),
        group_by_alpha: rng.gen_bool(0.5),
    }
}

fn build_catalog(universe: &Universe) -> Arc<Catalog> {
    let catalog = Catalog::new();
    let alpha = Table::new(Schema::new(
        "alpha",
        vec![Column::int("a_key"), Column::str("a_name")],
    ));
    for (i, name) in universe.alpha_names.iter().enumerate() {
        alpha
            .insert(
                vec![Value::int(i as i64 + 1), Value::str(name)],
                SnapshotId::INITIAL,
            )
            .unwrap();
    }
    let beta = Table::new(Schema::new(
        "beta",
        vec![Column::int("b_key"), Column::int("b_size")],
    ));
    for (i, size) in universe.beta_sizes.iter().enumerate() {
        beta.insert(
            vec![Value::int(i as i64 + 1), Value::int(*size)],
            SnapshotId::INITIAL,
        )
        .unwrap();
    }
    let fact = Table::with_rows_per_page(
        Schema::new(
            "facts",
            vec![
                Column::int("f_alpha"),
                Column::int("f_beta"),
                Column::int("f_amount"),
            ],
        ),
        16,
    );
    fact.insert_batch_unchecked(
        universe.fact.iter().map(|(a, b, amount)| {
            Row::new(vec![Value::int(*a), Value::int(*b), Value::int(*amount)])
        }),
        SnapshotId::INITIAL,
    );
    catalog.add_table(Arc::new(alpha));
    catalog.add_table(Arc::new(beta));
    catalog.add_fact_table(Arc::new(fact));
    Arc::new(catalog)
}

fn build_query(spec: &GeneratedQuery, index: usize) -> StarQuery {
    let mut builder = StarQuery::builder(format!("prop#{index}"));
    if let Some(min) = spec.fact_min_amount {
        builder = builder.fact_predicate(Predicate::Compare {
            column: "f_amount".into(),
            op: cjoin_repro::query::CompareOp::Ge,
            value: Value::int(min),
        });
    }
    if spec.join_alpha {
        let pred = match spec.alpha_pred_letter {
            Some(letter) => {
                Predicate::between("a_name", letter.to_string(), format!("{letter}zzz"))
            }
            None => Predicate::True,
        };
        builder = builder.join_dimension("alpha", "f_alpha", "a_key", pred);
    }
    if spec.join_beta {
        let pred = match spec.beta_min_size {
            Some(min) => Predicate::Compare {
                column: "b_size".into(),
                op: cjoin_repro::query::CompareOp::Ge,
                value: Value::int(min),
            },
            None => Predicate::True,
        };
        builder = builder.join_dimension("beta", "f_beta", "b_key", pred);
    }
    if spec.group_by_alpha && spec.join_alpha {
        builder = builder.group_by(ColumnRef::dim("alpha", "a_name"));
    }
    builder
        .aggregate(AggregateSpec::count_star())
        .aggregate(AggregateSpec::over(
            AggFunc::Sum,
            ColumnRef::fact("f_amount"),
        ))
        .aggregate(AggregateSpec::over(
            AggFunc::Min,
            ColumnRef::fact("f_amount"),
        ))
        .build()
}

/// CJOIN and the baseline agree with the reference evaluator on arbitrary
/// universes and concurrent query mixes.
#[test]
fn engines_agree_on_random_workloads() {
    let mut rng = StdRng::seed_from_u64(0xC101);
    for case in 0..24 {
        let universe = random_universe(&mut rng);
        let num_queries = rng.gen_range(1..5usize);
        let catalog = build_catalog(&universe);
        let queries: Vec<StarQuery> = (0..num_queries)
            .map(|i| build_query(&random_query(&mut rng), i))
            .collect();

        let baseline = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::default());
        let engine = CjoinEngine::start(
            Arc::clone(&catalog),
            CjoinConfig::default()
                .with_worker_threads(2)
                .with_max_concurrency(16)
                .with_batch_size(32),
        )
        .unwrap();

        // All queries run concurrently in the shared pipeline.
        let handles: Vec<_> = queries
            .iter()
            .map(|q| engine.submit(q.clone()).unwrap())
            .collect();
        for (query, handle) in queries.iter().zip(handles) {
            let expected = reference::evaluate(&catalog, query, SnapshotId::INITIAL).unwrap();
            let (baseline_result, _) = baseline.execute(query).unwrap();
            let cjoin_result = handle.wait().unwrap();
            assert!(
                baseline_result.approx_eq(&expected),
                "case {case}: baseline diverged on {}: {:?}",
                query.name,
                baseline_result.diff(&expected)
            );
            assert!(
                cjoin_result.approx_eq(&expected),
                "case {case}: cjoin diverged on {}: {:?}",
                query.name,
                cjoin_result.diff(&expected)
            );
        }
        engine.shutdown();
    }
}

/// Bit-vector AND/OR/subset behave like the corresponding set operations.
#[test]
fn query_set_obeys_set_algebra() {
    let mut rng = StdRng::seed_from_u64(0xC102);
    for case in 0..256 {
        let capacity = rng.gen_range(1usize..200);
        let a_bits: Vec<usize> = (0..rng.gen_range(0..32usize))
            .map(|_| rng.gen_range(0usize..200))
            .filter(|&b| b < capacity)
            .collect();
        let b_bits: Vec<usize> = (0..rng.gen_range(0..32usize))
            .map(|_| rng.gen_range(0usize..200))
            .filter(|&b| b < capacity)
            .collect();
        let a = QuerySet::from_bits(capacity, a_bits.iter().copied());
        let b = QuerySet::from_bits(capacity, b_bits.iter().copied());

        use std::collections::BTreeSet;
        let sa: BTreeSet<usize> = a_bits.iter().copied().collect();
        let sb: BTreeSet<usize> = b_bits.iter().copied().collect();

        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(
            and.iter().collect::<Vec<_>>(),
            sa.intersection(&sb).copied().collect::<Vec<_>>(),
            "case {case}: intersection"
        );

        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(
            or.iter().collect::<Vec<_>>(),
            sa.union(&sb).copied().collect::<Vec<_>>(),
            "case {case}: union"
        );

        let mut and_not = a.clone();
        and_not.and_not_assign(&b);
        assert_eq!(
            and_not.iter().collect::<Vec<_>>(),
            sa.difference(&sb).copied().collect::<Vec<_>>(),
            "case {case}: difference"
        );

        assert_eq!(a.is_subset_of(&b), sa.is_subset(&sb), "case {case}: subset");
        assert_eq!(
            a.intersects(&b),
            !sa.is_disjoint(&sb),
            "case {case}: intersects"
        );
        assert_eq!(a.count(), sa.len(), "case {case}: count");
        assert_eq!(a.is_empty(), sa.is_empty(), "case {case}: is_empty");
    }
}

/// Merging partial aggregation states is equivalent to accumulating everything in
/// one pass (the property that would let the Distributor be parallelised).
#[test]
fn aggregate_merge_matches_single_pass() {
    let mut rng = StdRng::seed_from_u64(0xC103);
    for case in 0..256 {
        let values: Vec<(i64, i64)> = (0..rng.gen_range(1..80usize))
            .map(|_| (rng.gen_range(0i64..5), rng.gen_range(-1000i64..1000)))
            .collect();
        let split = rng.gen_range(0usize..80).min(values.len());

        // Group by fact column 0; aggregate COUNT / SUM / MIN / MAX / AVG over column 1.
        let query = cjoin_repro::query::star::tests_support::simple_bound_query(
            vec![0],
            vec![
                AggFunc::Count,
                AggFunc::Sum,
                AggFunc::Min,
                AggFunc::Max,
                AggFunc::Avg,
            ],
        );

        let mut single = GroupedAggregator::new(&query);
        for (group, amount) in &values {
            single.accumulate(
                &Row::new(vec![Value::int(*group), Value::int(*amount)]),
                &[],
            );
        }

        let mut left = GroupedAggregator::new(&query);
        let mut right = GroupedAggregator::new(&query);
        for (group, amount) in &values[..split] {
            left.accumulate(
                &Row::new(vec![Value::int(*group), Value::int(*amount)]),
                &[],
            );
        }
        for (group, amount) in &values[split..] {
            right.accumulate(
                &Row::new(vec![Value::int(*group), Value::int(*amount)]),
                &[],
            );
        }
        left.merge(right);

        let a = single.finalize();
        let b = left.finalize();
        assert!(
            a.approx_eq(&b),
            "case {case}: merged aggregation diverged: {:?}",
            a.diff(&b)
        );
    }
}

/// COUNT(*) through the full CJOIN pipeline equals the number of fact rows
/// whatever the (dangling-key) fact content is, when no dimension is joined.
#[test]
fn unfiltered_count_equals_fact_cardinality() {
    let mut rng = StdRng::seed_from_u64(0xC104);
    for case in 0..16 {
        let universe = random_universe(&mut rng);
        let catalog = build_catalog(&universe);
        let engine = CjoinEngine::start(
            Arc::clone(&catalog),
            CjoinConfig::default()
                .with_worker_threads(1)
                .with_max_concurrency(4)
                .with_batch_size(16),
        )
        .unwrap();
        let query = StarQuery::builder("count_all")
            .aggregate(AggregateSpec::count_star())
            .build();
        let result = engine.execute(query).unwrap();
        let count = match result.rows().next().unwrap().1[0] {
            AggValue::Int(c) => c,
            ref other => panic!("case {case}: unexpected {other:?}"),
        };
        assert_eq!(count, universe.fact.len() as i128, "case {case}");
        engine.shutdown();
    }
}
