//! Behavioural integration tests of the shared pipeline: work sharing, predictability,
//! run-time optimisation, partition pruning and mixed query/update workloads.

use std::sync::Arc;
use std::time::Duration;

use cjoin_repro::baseline::{BaselineConfig, BaselineEngine};
use cjoin_repro::bench::run_closed_loop;
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::query::{reference, AggregateSpec, Predicate};
use cjoin_repro::ssb::{schema::join_columns, SsbConfig, SsbDataSet, Workload, WorkloadConfig};
use cjoin_repro::storage::{Row, RowId};
use cjoin_repro::{AggFunc, ColumnRef, SnapshotId, StarQuery};

fn engine_config() -> CjoinConfig {
    CjoinConfig::default()
        .with_worker_threads(3)
        .with_max_concurrency(128)
        .with_batch_size(512)
}

#[test]
fn concurrent_queries_share_scan_passes() {
    // 16 concurrent queries must complete in far fewer passes than 16 independent
    // scans — the headline sharing claim.
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.002, 301));
    let catalog = data.catalog();
    let workload = Workload::generate(&data, WorkloadConfig::new(16, 0.02, 61));
    let engine = CjoinEngine::start(Arc::clone(&catalog), engine_config()).unwrap();

    let handles: Vec<_> = workload
        .queries()
        .iter()
        .map(|q| engine.submit(q.clone()).unwrap())
        .collect();
    for handle in handles {
        handle.wait().unwrap();
    }
    let stats = engine.stats();
    assert_eq!(stats.queries_completed, 16);
    // The data set is tiny, so the scan may complete a few extra passes while the 16
    // admissions trickle in; the point is that the pass count stays far below the 16
    // full scans a query-at-a-time engine would perform.
    assert!(
        stats.scan_passes <= 11,
        "16 concurrent queries shared the continuous scan, but it took {} passes",
        stats.scan_passes
    );
    assert!(stats.tuples_scanned < 12 * catalog.fact_table().unwrap().len() as u64);
    engine.shutdown();
}

#[test]
fn response_time_degrades_gracefully_with_concurrency() {
    // The predictability claim (Figure 6): going from 1 to 16 concurrent queries must
    // not blow response time up by anything near 16x. We allow a generous factor to
    // keep the test robust on loaded CI machines.
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.004, 302));
    let catalog = data.catalog();

    let measure = |n: usize| -> Duration {
        let workload = Workload::generate(
            &data,
            WorkloadConfig::new(n * 2, 0.01, 62).with_template("Q4.2"),
        );
        let engine = CjoinEngine::start(Arc::clone(&catalog), engine_config()).unwrap();
        let report = run_closed_loop(&engine, workload.queries(), n).unwrap();
        engine.shutdown();
        report.mean_response_of("Q4.2").unwrap()
    };

    let single = measure(1);
    let concurrent = measure(16);
    let factor = concurrent.as_secs_f64() / single.as_secs_f64().max(1e-9);
    assert!(
        factor < 8.0,
        "response time grew by {factor:.1}x from 1 to 16 concurrent queries \
         ({single:?} -> {concurrent:?}); CJOIN should degrade gracefully"
    );
}

#[test]
fn filter_order_adapts_to_the_query_mix() {
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.01, 303));
    let catalog = data.catalog();
    let config = CjoinConfig {
        reorder_interval_ms: 10,
        ..engine_config()
    };
    let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();

    // Queries that are extremely selective on part and unselective on date/supplier.
    let (d_key, d_fk) = join_columns("date").unwrap();
    let (p_key, p_fk) = join_columns("part").unwrap();
    let (s_key, s_fk) = join_columns("supplier").unwrap();
    let queries: Vec<StarQuery> = (0..12)
        .map(|i| {
            StarQuery::builder(format!("skew#{i}"))
                .join_dimension("date", d_fk, d_key, Predicate::True)
                .join_dimension(
                    "part",
                    p_fk,
                    p_key,
                    Predicate::eq("p_partkey", (i + 1) as i64),
                )
                .join_dimension("supplier", s_fk, s_key, Predicate::True)
                .aggregate(AggregateSpec::over(
                    AggFunc::Sum,
                    ColumnRef::fact("lo_revenue"),
                ))
                .build()
        })
        .collect();

    let handles: Vec<_> = queries
        .iter()
        .map(|q| engine.submit(q.clone()).unwrap())
        .collect();
    // Poll the order while the queries run.
    let mut part_promoted = false;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(5));
        let order = engine.filter_order();
        if order.first().map(String::as_str) == Some("part") {
            part_promoted = true;
            break;
        }
        if engine.active_queries() == 0 {
            break;
        }
    }
    for handle in handles {
        handle.wait().unwrap();
    }
    assert!(
        part_promoted || engine.stats().filter_reorders > 0,
        "the optimizer never promoted the highly selective part filter"
    );
    engine.shutdown();
}

#[test]
fn partition_pruning_reduces_scanned_tuples_and_matches_results() {
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.004, 304).with_clustering());
    let catalog = data.catalog();

    let (d_key, d_fk) = join_columns("date").unwrap();
    let query = StarQuery::builder("year_1995")
        .fact_predicate(Predicate::between("lo_orderdate", 19950101, 19951231))
        .join_dimension(
            "date",
            d_fk,
            d_key,
            Predicate::between("d_year", 1995, 1995),
        )
        .group_by(ColumnRef::dim("date", "d_monthnuminyear"))
        .aggregate(AggregateSpec::over(
            AggFunc::Sum,
            ColumnRef::fact("lo_revenue"),
        ))
        .aggregate(AggregateSpec::count_star())
        .build();
    let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();

    let run = |pruning: bool| {
        let config = CjoinConfig {
            partition_pruning: pruning,
            ..engine_config()
        };
        let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
        let result = engine.execute(query.clone()).unwrap();
        let scanned = engine.stats().tuples_scanned;
        engine.shutdown();
        (result, scanned)
    };
    let (full_result, full_scanned) = run(false);
    let (pruned_result, pruned_scanned) = run(true);

    assert!(full_result.approx_eq(&expected));
    assert!(
        pruned_result.approx_eq(&expected),
        "pruning changed the answer: {:?}",
        pruned_result.diff(&expected)
    );
    assert!(
        pruned_scanned < full_scanned,
        "pruning should terminate the query early ({pruned_scanned} vs {full_scanned} tuples)"
    );
}

#[test]
fn mixed_updates_and_queries_respect_snapshots() {
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.002, 305));
    let catalog = data.catalog();
    let engine = CjoinEngine::start(Arc::clone(&catalog), engine_config()).unwrap();
    let fact = catalog.fact_table().unwrap();

    let count_query = |name: &str, snapshot| {
        StarQuery::builder(name)
            .snapshot(snapshot)
            .aggregate(AggregateSpec::count_star())
            .build()
    };

    let base_rows = fact.len() as i128;
    let snap0 = catalog.snapshots().current();

    // Interleave three load batches with queries pinned to successive snapshots.
    let template = fact.row(RowId(0)).unwrap();
    let mut expected_counts = vec![base_rows];
    let mut snapshots = vec![snap0];
    for batch in 0..3 {
        let snapshot = catalog.snapshots().commit();
        let rows = (0..500).map(|_| Row::new(template.values().to_vec()));
        fact.insert_batch_unchecked(rows, snapshot);
        expected_counts.push(base_rows + 500 * (i128::from(batch) + 1));
        snapshots.push(snapshot);
    }

    // All four queries run concurrently in the shared pipeline, each seeing exactly
    // the data of its snapshot.
    let handles: Vec<_> = snapshots
        .iter()
        .enumerate()
        .map(|(i, &snapshot)| {
            engine
                .submit(count_query(&format!("count@{i}"), snapshot))
                .unwrap()
        })
        .collect();
    for (handle, expected) in handles.into_iter().zip(expected_counts) {
        let result = handle.wait().unwrap();
        let count = match result.rows().next().unwrap().1[0] {
            cjoin_repro::query::AggValue::Int(c) => c,
            ref other => panic!("expected integer count, got {other:?}"),
        };
        assert_eq!(count, expected);
    }
    engine.shutdown();
}

#[test]
fn stats_are_internally_consistent_after_a_workload() {
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.002, 306));
    let catalog = data.catalog();
    let workload = Workload::generate(&data, WorkloadConfig::new(12, 0.02, 63));
    let engine = CjoinEngine::start(Arc::clone(&catalog), engine_config()).unwrap();
    let report = run_closed_loop(&engine, workload.queries(), 6).unwrap();
    assert_eq!(report.timings.len(), 12);

    let stats = engine.stats();
    assert_eq!(stats.queries_admitted, 12);
    assert_eq!(stats.queries_completed, 12);
    assert!(stats.tuples_scanned > 0);
    assert!(stats.batches_sent > 0);
    assert!(stats.tuples_distributed <= stats.tuples_scanned);
    assert!(stats.survival_rate() <= 1.0);
    assert!(
        stats.control_barriers >= 12,
        "every completion takes a drain barrier"
    );
    // Every filter's drop count is bounded by its input count.
    for f in &stats.filters {
        assert!(f.tuples_dropped <= f.tuples_in, "{f:?}");
        assert!(f.probes + f.skips <= f.tuples_in, "{f:?}");
    }
    engine.shutdown();
}

#[test]
fn steady_state_scan_path_recycles_batches_and_tuples() {
    // Regression for the pooled-allocator claim (§4): after warm-up the scan path
    // must serve (nearly) every batch from the pool and (nearly) every in-flight
    // tuple from in-place recycling — zero per-tuple heap allocation at steady
    // state. A long multi-pass workload leaves warm-up noise far behind.
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.002, 308));
    let catalog = data.catalog();
    let workload = Workload::generate(&data, WorkloadConfig::new(24, 0.02, 65));
    let engine = CjoinEngine::start(Arc::clone(&catalog), engine_config()).unwrap();
    let report = run_closed_loop(&engine, workload.queries(), 8).unwrap();
    assert_eq!(report.timings.len(), 24);

    let stats = engine.stats();
    let takes = stats.pool_hits + stats.pool_misses;
    assert!(takes > 0, "the preprocessor took batches from the pool");
    assert!(
        stats.pool_hit_rate() > 0.8,
        "pool hit rate should be ~1 after warm-up, got {:.3} ({} hits / {} misses)",
        stats.pool_hit_rate(),
        stats.pool_hits,
        stats.pool_misses
    );
    let tuples = stats.tuples_allocated + stats.tuples_recycled;
    assert!(tuples > 0, "tuples flowed through the pipeline");
    assert!(
        stats.tuple_recycle_rate() > 0.8,
        "steady-state tuples must be recycled in place, got {:.3} ({} allocated / {} recycled)",
        stats.tuple_recycle_rate(),
        stats.tuples_allocated,
        stats.tuples_recycled
    );
    // Fresh tuple allocations are a warm-up phenomenon, bounded by what the pool's
    // batches can hold — not proportional to the tuples scanned.
    assert!(
        stats.tuples_allocated < stats.tuples_scanned / 2,
        "{} allocations for {} scanned tuples",
        stats.tuples_allocated,
        stats.tuples_scanned
    );
    engine.shutdown();
}

#[test]
fn baseline_contention_grows_with_concurrency_while_cjoin_stays_flat() {
    // Shape check behind Figure 5: total work of the baseline grows ~linearly with
    // the number of queries while CJOIN's scan work stays nearly constant.
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.002, 307));
    let catalog = data.catalog();

    let cjoin_tuples = |n: usize| {
        let workload = Workload::generate(&data, WorkloadConfig::new(n, 0.02, 64));
        let engine = CjoinEngine::start(Arc::clone(&catalog), engine_config()).unwrap();
        let _ = run_closed_loop(&engine, workload.queries(), n).unwrap();
        let scanned = engine.stats().tuples_scanned;
        engine.shutdown();
        scanned
    };
    let baseline_tuples = |n: usize| {
        let workload = Workload::generate(&data, WorkloadConfig::new(n, 0.02, 64));
        let engine = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::system_x());
        let _ = run_closed_loop(&engine, workload.queries(), n).unwrap();
        engine.io_stats().total_pages()
    };

    let cjoin_1 = cjoin_tuples(1).max(1);
    let cjoin_16 = cjoin_tuples(16);
    let baseline_1 = baseline_tuples(1).max(1);
    let baseline_16 = baseline_tuples(16);

    let cjoin_growth = cjoin_16 as f64 / cjoin_1 as f64;
    let baseline_growth = baseline_16 as f64 / baseline_1 as f64;
    assert!(
        baseline_growth > 12.0,
        "query-at-a-time I/O should grow ~linearly in n (grew {baseline_growth:.1}x)"
    );
    assert!(
        cjoin_growth < 6.0,
        "CJOIN scan volume should stay nearly flat in n (grew {cjoin_growth:.1}x)"
    );
}
