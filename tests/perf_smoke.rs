//! Perf-smoke lane (run with `cargo test -q -- --ignored`, wired into CI).
//!
//! Runs the `abl_probe_locking` and `abl_distributor_sharding` ablations on tiny
//! configurations and catches hot-path regressions *functionally*: both filter
//! implementations must produce identical survivors, the batched path must
//! actually recycle (no drops from a steady batch), its throughput must not
//! collapse relative to the per-tuple baseline, and every shard count must
//! complete the closed loop. Thresholds are deliberately loose — CI machines are
//! noisy; the committed `BENCH_PR2.json` / `BENCH_PR3.json` record the real
//! release-mode numbers.

use std::time::Duration;

use cjoin_repro::bench::experiments::ExperimentParams;
use cjoin_repro::bench::hotpath::{end_to_end_sharding, ProbeAblationParams, ProbeHarness};

#[test]
#[ignore = "perf-smoke lane; exercised by CI via `cargo test -q -- --ignored`"]
fn batched_probing_is_equivalent_and_not_slower_on_a_tiny_config() {
    let harness = ProbeHarness::build(&ProbeAblationParams::tiny());
    assert!(harness.steady_len() > 0);
    assert!(
        harness.paths_agree(),
        "batched and per-tuple hot paths must produce identical survivors"
    );

    let measure_for = Duration::from_millis(200);
    let batched = harness.measure(true, measure_for);
    let per_tuple = harness.measure(false, measure_for);
    assert!(batched > 0.0 && per_tuple > 0.0);
    let speedup = batched / per_tuple;
    eprintln!(
        "perf-smoke abl_probe_locking: batched {batched:.0} t/s, \
         per-tuple {per_tuple:.0} t/s, speedup {speedup:.2}x"
    );
    // Functional guard, not a benchmark: the batched path must never be a clear
    // regression. (Release runs show ~4-5x; 0.8 tolerates debug builds + CI noise.)
    assert!(
        speedup > 0.8,
        "batched hot path regressed to {speedup:.2}x of the per-tuple baseline"
    );
}

#[test]
#[ignore = "perf-smoke lane; exercised by CI via `cargo test -q -- --ignored`"]
fn distributor_sharding_completes_the_closed_loop_at_every_shard_count() {
    let params = ExperimentParams::quick();
    for shards in [1usize, 2, 4] {
        let report = end_to_end_sharding(&params, 4, shards).unwrap();
        eprintln!(
            "perf-smoke abl_distributor_sharding: shards={shards} \
             {:.0} q/h, p99 submission {:.3} ms",
            report.throughput_qph, report.p99_submission_ms
        );
        assert!(report.queries > 0, "shards={shards} completed no queries");
        assert!(
            report.throughput_qph > 0.0,
            "shards={shards} made no progress"
        );
    }
}
