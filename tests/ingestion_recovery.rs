//! Durability and crash-recovery oracle for near-real-time ingestion.
//!
//! The invariant under attack, from every angle this file can reach: **a
//! committed ingestion batch is atomic and durable, an uncommitted one is
//! invisible — before a crash, after a crash, and while queries are in
//! flight**. Concretely:
//!
//! * A batch becomes visible only after its WAL commit marker is durable, and
//!   then all at once (`commit_through` publishes the epoch after every row is
//!   in place).
//! * Restarting an engine on the surviving WAL yields answers bit-identical to
//!   an engine that never crashed: replay applies exactly the committed
//!   prefix.
//! * A torn write (simulated crash mid-append), a clean-but-uncommitted tail
//!   and a silent bit-flip each recover to the longest clean committed prefix,
//!   with the truncation visible in `IngestStats::recovery_truncations`.
//! * Under sustained ingest concurrent with query churn, across the
//!   parallelism matrix, no ticket hangs and every answer corresponds to a
//!   committed snapshot — never a partially applied batch.
//! * Columnar tail compaction (the pipeline swap that folds the row-store
//!   tail back into the replica) never changes an answer.

use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cjoin_repro::cjoin::fault::{FaultPlan, FaultSite};
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine, QueryHandle};
use cjoin_repro::query::{reference, AggValue, QueryOutcome, QueryResult};
use cjoin_repro::storage::{Column, Schema, SyncPolicy, Table, Value};
use cjoin_repro::{AggFunc, AggregateSpec, Catalog, ColumnRef, Predicate, SnapshotId, StarQuery};

/// Bound on every wait in this file: a hang is a test failure, not a CI
/// timeout.
const RESOLVE_TIMEOUT: Duration = Duration::from_secs(60);

fn wait_bounded(handle: &QueryHandle, what: &str) -> QueryOutcome {
    let start = Instant::now();
    loop {
        if let Some(outcome) = handle.try_result() {
            return outcome;
        }
        assert!(
            start.elapsed() < RESOLVE_TIMEOUT,
            "{what}: ticket did not resolve within {RESOLVE_TIMEOUT:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Submits with bounded retry: a submit refused during a compaction swap or
/// supervisor restart window is a typed error, never a hang.
fn submit_with_retry(engine: &CjoinEngine, query: &StarQuery, what: &str) -> QueryHandle {
    let start = Instant::now();
    loop {
        match engine.submit(query.clone()) {
            Ok(handle) => return handle,
            Err(err) => assert!(
                start.elapsed() < RESOLVE_TIMEOUT,
                "{what}: submit kept failing: {err}"
            ),
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn temp_wal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cjoin-ingest-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// A tiny deterministic warehouse: `color(k, name)` with red/green/blue, and
/// `sales(fk, amount)` with `n_facts` rows cycling over the three keys. Every
/// restart in this file seeds a *fresh* catalog from this function, so any
/// state divergence after recovery can only come from the WAL.
fn warehouse(n_facts: usize) -> Arc<Catalog> {
    let catalog = Catalog::new();
    let dim = Table::new(Schema::new(
        "color",
        vec![Column::int("k"), Column::str("name")],
    ));
    for (k, name) in [(1, "red"), (2, "green"), (3, "blue")] {
        dim.insert(vec![Value::int(k), Value::str(name)], SnapshotId::INITIAL)
            .unwrap();
    }
    let fact = Table::new(Schema::new(
        "sales",
        vec![Column::int("fk"), Column::int("amount")],
    ));
    for i in 0..n_facts {
        fact.insert(
            vec![Value::int((i % 3) as i64 + 1), Value::int(i as i64)],
            SnapshotId::INITIAL,
        )
        .unwrap();
    }
    catalog.add_table(Arc::new(dim));
    catalog.add_fact_table(Arc::new(fact));
    Arc::new(catalog)
}

/// SUM(amount) over facts joining the "red" dimension row — the probe every
/// test uses, because red facts only ever grow monotonically here, which makes
/// "this answer corresponds to a committed prefix" checkable as set
/// membership.
fn red_sum_query() -> StarQuery {
    StarQuery::builder("red_sum")
        .join_dimension("color", "fk", "k", Predicate::eq("name", "red"))
        .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("amount")))
        .build()
}

fn sum_of(result: &QueryResult) -> i128 {
    match result.rows().next() {
        Some((_, values)) => match values[0] {
            AggValue::Int(v) => v,
            ref other => panic!("expected Int aggregate, got {other:?}"),
        },
        None => 0,
    }
}

fn ask(engine: &CjoinEngine, what: &str) -> QueryResult {
    match wait_bounded(&submit_with_retry(engine, &red_sum_query(), what), what) {
        Ok(result) => result,
        Err(err) => panic!("{what}: query failed: {err}"),
    }
}

fn oracle(catalog: &Catalog, snapshot: SnapshotId) -> QueryResult {
    reference::evaluate(catalog, &red_sum_query(), snapshot).unwrap()
}

fn assert_same(result: &QueryResult, expected: &QueryResult, what: &str) {
    assert!(
        result.approx_eq(expected),
        "{what}: result diverged: {:?}",
        result.diff(expected)
    );
}

fn wal_config() -> CjoinConfig {
    CjoinConfig::default()
        .with_worker_threads(2)
        .with_max_concurrency(8)
        .with_batch_size(64)
}

/// The base contract: a mixed batch (fact appends, a dimension upsert, a
/// dimension delete) commits atomically, the counters record it, and a fresh
/// engine recovering the WAL onto a fresh seed catalog answers bit-identically
/// to the engine that wrote it.
#[test]
fn durable_batches_are_atomic_visible_and_survive_restart() {
    let path = temp_wal("atomic");
    let catalog = warehouse(90);
    let engine = CjoinEngine::start(Arc::clone(&catalog), wal_config().with_wal(&path)).unwrap();

    let before = ask(&engine, "pre-ingest");
    assert_same(
        &before,
        &oracle(&catalog, SnapshotId::INITIAL),
        "pre-ingest",
    );

    // One batch mixing every mutation kind: two fact rows (coalesced into one
    // WAL record), a new "red" dimension key, a fact row referencing it (a
    // separate record — it follows a dimension mutation), and a delete.
    let mut session = engine.ingest_session();
    session
        .append_fact(vec![Value::int(1), Value::int(1_000)])
        .append_fact(vec![Value::int(2), Value::int(5)]);
    session.upsert_dimension("color", 0, vec![Value::int(4), Value::str("red")]);
    session.append_fact(vec![Value::int(4), Value::int(7)]);
    session.delete_dimension("color", 0, 3);
    assert_eq!(session.len(), 4, "fact rows coalesce per contiguous run");
    let receipt = session.commit().unwrap();
    assert_eq!(receipt.records, 4);
    assert!(receipt.epoch > 0 && receipt.wal_bytes > 0);

    let after = ask(&engine, "post-ingest");
    let committed = catalog.snapshots().current();
    assert_same(&after, &oracle(&catalog, committed), "post-ingest");
    assert_eq!(
        sum_of(&after),
        sum_of(&before) + 1_000 + 7,
        "both new red facts (old key and upserted key) count exactly once"
    );

    let stats = engine.stats().ingest;
    assert_eq!(stats.records_appended, 4);
    assert_eq!(stats.commits, 1);
    assert_eq!(stats.recovery_truncations, 0);
    engine.shutdown();
    drop(engine);

    // Restart on a *fresh* seed catalog: everything beyond the seed must come
    // from WAL replay, and must match what the first engine answered.
    let recovered_catalog = warehouse(90);
    let recovered =
        CjoinEngine::start(Arc::clone(&recovered_catalog), wal_config().with_wal(&path)).unwrap();
    assert_eq!(recovered.stats().ingest.recovery_truncations, 0);
    let answer = ask(&recovered, "recovered");
    assert_same(&answer, &after, "recovered vs pre-crash");
    assert_same(
        &answer,
        &oracle(&recovered_catalog, recovered_catalog.snapshots().current()),
        "recovered vs oracle",
    );

    // The recovered log keeps accepting batches, with epochs strictly beyond
    // the replayed watermark (replayed epochs are never re-allocated).
    let mut session = recovered.ingest_session();
    session.append_fact(vec![Value::int(1), Value::int(50)]);
    let receipt2 = session.commit().unwrap();
    assert!(receipt2.epoch > receipt.epoch);
    assert_eq!(
        sum_of(&ask(&recovered, "post-recovery ingest")),
        sum_of(&after) + 50
    );
    recovered.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// A torn write — the injected crash mid-append — under every sync policy:
/// the batch is invisible on the surviving engine, and a restart recovers
/// exactly the batches committed before the tear, counting one truncation.
#[test]
fn torn_write_crash_recovers_committed_prefix_under_every_sync_policy() {
    for (i, policy) in [
        SyncPolicy::EveryRecord,
        SyncPolicy::OnCommit,
        SyncPolicy::Never,
    ]
    .into_iter()
    .enumerate()
    {
        let what = format!("policy={policy:?}");
        let path = temp_wal(&format!("torn-{i}"));
        let catalog = warehouse(30);
        // Batch 1 is one WAL record (append ordinal 1); the tear fires on
        // ordinal 2 — batch 2's first record.
        let plan = FaultPlan::seeded(1).torn_write_at(2).build();
        let config = wal_config()
            .with_wal(&path)
            .with_wal_sync(policy)
            .with_fault_plan(plan);
        let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();

        let mut session = engine.ingest_session();
        session
            .append_fact(vec![Value::int(1), Value::int(100)])
            .append_fact(vec![Value::int(1), Value::int(101)]);
        session.commit().unwrap();
        let committed = ask(&engine, &format!("{what} committed batch"));

        let crash = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut session = engine.ingest_session();
            session.append_fact(vec![Value::int(1), Value::int(999_999)]);
            session.commit()
        }));
        let message = match crash {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
            Ok(r) => panic!("{what}: torn write did not crash the commit: {r:?}"),
        };
        assert!(message.contains("torn"), "{what}: {message}");

        // The crashed batch never got a commit marker: invisible now...
        assert_same(
            &ask(&engine, &format!("{what} post-crash")),
            &committed,
            &format!("{what}: torn batch leaked into a live answer"),
        );
        engine.shutdown();
        drop(engine);

        // ...and invisible after recovery, which truncates the torn record.
        let recovered_catalog = warehouse(30);
        let recovered = CjoinEngine::start(
            Arc::clone(&recovered_catalog),
            wal_config().with_wal(&path).with_wal_sync(policy),
        )
        .unwrap();
        assert_eq!(
            recovered.stats().ingest.recovery_truncations,
            1,
            "{what}: torn tail not counted"
        );
        assert_same(
            &ask(&recovered, &format!("{what} recovered")),
            &committed,
            &format!("{what}: recovery diverged from the committed prefix"),
        );

        // The truncated log is clean again: ingestion resumes.
        let mut session = recovered.ingest_session();
        session.append_fact(vec![Value::int(1), Value::int(7)]);
        session.commit().unwrap();
        assert_eq!(
            sum_of(&ask(&recovered, &format!("{what} resumed"))),
            sum_of(&committed) + 7
        );
        recovered.shutdown();
        let _ = std::fs::remove_file(&path);
    }
}

/// Silent media corruption: a scheduled bit-flip lands inside the first
/// committed record. The live engine keeps answering from memory (the flip is
/// silent by design); recovery meets the checksum mismatch, truncates
/// everything from the flipped record on, and reports it.
#[test]
fn silent_byte_flip_truncates_at_replay_and_counts_a_recovery_truncation() {
    let path = temp_wal("bitflip");
    let catalog = warehouse(30);
    // Offset 20 is the first record's kind byte (12-byte header + 8-byte
    // epoch): inside the committed region, so replay truncates at offset 0.
    let plan = FaultPlan::seeded(2).flip_wal_byte(20).build();
    let config = wal_config().with_wal(&path).with_fault_plan(plan);
    let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();

    for amount in [300, 400] {
        let mut session = engine.ingest_session();
        session.append_fact(vec![Value::int(1), Value::int(amount)]);
        session.commit().unwrap();
    }
    // The corruption is silent: the live engine still sees both batches.
    let live = ask(&engine, "live after flip");
    assert_same(
        &live,
        &oracle(&catalog, catalog.snapshots().current()),
        "live",
    );
    engine.shutdown();
    drop(engine);

    let recovered_catalog = warehouse(30);
    let recovered =
        CjoinEngine::start(Arc::clone(&recovered_catalog), wal_config().with_wal(&path)).unwrap();
    assert_eq!(recovered.stats().ingest.recovery_truncations, 1);
    // Both batches sat at or beyond the defect: recovery is seed-only.
    assert_same(
        &ask(&recovered, "recovered after flip"),
        &oracle(&recovered_catalog, SnapshotId::INITIAL),
        "recovery must fall back to the clean (empty) committed prefix",
    );
    recovered.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// The crash-recovery oracle: kill the "process" at every commit boundary and
/// a dense sweep of mid-record offsets by truncating a copy of the WAL, then
/// recover a fresh engine on the cut and require its answer bit-identical to
/// a warehouse that ingested exactly the batches whose commit marker survived
/// the cut — no more, no less, never a partial batch.
#[test]
fn kill_at_every_offset_recovers_bit_identical_answers() {
    let path = temp_wal("sweep");
    let catalog = warehouse(12);
    let engine = CjoinEngine::start(
        Arc::clone(&catalog),
        wal_config()
            .with_wal(&path)
            .with_wal_sync(SyncPolicy::EveryRecord),
    )
    .unwrap();
    let batches: Vec<Vec<Value>> = (0..3)
        .map(|i| vec![Value::int(1), Value::int(1_000 * (i + 1))])
        .collect();
    let mut commit_ends = Vec::new();
    for row in &batches {
        let mut session = engine.ingest_session();
        session.append_fact(row.clone());
        commit_ends.push(session.commit().unwrap().wal_bytes);
    }
    engine.shutdown();
    drop(engine);

    let full = std::fs::read(&path).unwrap();
    assert_eq!(*commit_ends.last().unwrap(), full.len() as u64);
    // Every 5th byte, plus the exact commit boundaries and their neighbours
    // (the off-by-one cases that distinguish "marker durable" from "marker
    // torn").
    let mut cuts: Vec<u64> = (0..=full.len() as u64).step_by(5).collect();
    for &end in &commit_ends {
        cuts.extend([end.saturating_sub(1), end, end + 1]);
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts.retain(|&c| c <= full.len() as u64);

    let copy = temp_wal("sweep-cut");
    for cut in cuts {
        let what = format!("cut at byte {cut}");
        std::fs::write(&copy, &full[..cut as usize]).unwrap();
        let survived = commit_ends.iter().filter(|&&end| end <= cut).count();

        // The never-crashed reference: a warehouse holding exactly the
        // batches whose commit marker fits inside the cut.
        let shadow = warehouse(12);
        for row in &batches[..survived] {
            shadow
                .fact_table()
                .unwrap()
                .insert(row.clone(), SnapshotId::INITIAL)
                .unwrap();
        }
        let expected = oracle(&shadow, SnapshotId::INITIAL);

        let recovered_catalog = warehouse(12);
        let recovered =
            CjoinEngine::start(Arc::clone(&recovered_catalog), wal_config().with_wal(&copy))
                .unwrap();
        let answer = ask(&recovered, &what);
        assert_same(&answer, &expected, &what);
        assert_same(
            &answer,
            &oracle(&recovered_catalog, recovered_catalog.snapshots().current()),
            &format!("{what}: engine vs oracle on the recovered catalog"),
        );
        recovered.shutdown();
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&copy);
}

/// Sustained ingest concurrent with query churn, across the parallelism
/// matrix (scan workers x distributor shards x columnar, with tail compaction
/// armed on the columnar cells): no ticket hangs, and every answer equals a
/// committed prefix sum — a partially visible batch would produce a sum
/// outside the set.
#[test]
fn sustained_ingest_with_query_churn_never_hangs_and_stays_prefix_consistent() {
    const BATCHES: i64 = 25;
    for (scan_workers, shards, columnar) in
        [(1, 1, false), (2, 1, false), (1, 2, true), (2, 2, true)]
    {
        let what = format!("scan={scan_workers} shards={shards} columnar={columnar}");
        let path = temp_wal(&format!("churn-{scan_workers}-{shards}-{columnar}"));
        let catalog = warehouse(600);
        let mut config = CjoinConfig::default()
            .with_worker_threads(2)
            .with_max_concurrency(8)
            .with_batch_size(128)
            .with_scan_workers(scan_workers)
            .with_distributor_shards(shards)
            .with_columnar_scan(columnar)
            .with_wal(&path);
        if columnar {
            config = config.with_tail_compaction_rows(8);
        }
        let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();

        let seed_sum = sum_of(&oracle(&catalog, SnapshotId::INITIAL));
        // Every sum a query may legally observe. Each cumulative sum is
        // published *before* its commit, so the set always contains whatever
        // is visible; a non-prefix (partially applied) sum is caught.
        let valid_sums = Mutex::new(vec![seed_sum]);
        let done = AtomicBool::new(false);

        std::thread::scope(|scope| {
            let feeder = scope.spawn(|| {
                let mut cumulative = seed_sum;
                for b in 0..BATCHES {
                    let amount = 10_000 + b;
                    cumulative += i128::from(amount);
                    valid_sums.lock().unwrap().push(cumulative);
                    let mut session = engine.ingest_session();
                    session.append_fact(vec![Value::int(1), Value::int(amount)]);
                    if b % 5 == 0 {
                        // Dimension churn that never touches the red key set.
                        session.upsert_dimension(
                            "color",
                            0,
                            vec![Value::int(10 + b), Value::str("yellow")],
                        );
                    }
                    session.commit().unwrap();
                    std::thread::sleep(Duration::from_millis(1));
                }
                done.store(true, Ordering::Release);
            });

            let mut asked = 0usize;
            while !done.load(Ordering::Acquire) {
                let sum = sum_of(&ask(&engine, &what));
                assert!(
                    valid_sums.lock().unwrap().contains(&sum),
                    "{what}: sum {sum} matches no committed prefix"
                );
                asked += 1;
            }
            assert!(asked > 0, "{what}: churn loop never ran a query");
            feeder.join().unwrap();
        });

        // Quiesced: the final answer equals the oracle over everything.
        assert_same(
            &ask(&engine, &format!("{what} final")),
            &oracle(&catalog, catalog.snapshots().current()),
            &format!("{what} final"),
        );
        let stats = engine.stats().ingest;
        assert_eq!(stats.commits, BATCHES as u64, "{what}");
        assert!(stats.records_appended >= BATCHES as u64, "{what}");
        engine.shutdown();
        let _ = std::fs::remove_file(&path);
    }
}

/// Tail compaction equivalence: with a tiny threshold, sustained appends must
/// trigger replica rebuilds (counted in `tail_compactions`) — and answers
/// before, across and after the swap stay oracle-exact.
#[test]
fn tail_compaction_preserves_answers_and_is_counted() {
    let path = temp_wal("compaction");
    let catalog = warehouse(40);
    let config = wal_config()
        .with_wal(&path)
        .with_columnar_scan(true)
        .with_tail_compaction_rows(4);
    let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();

    for batch in 0..4 {
        let mut session = engine.ingest_session();
        session
            .append_fact(vec![Value::int(1), Value::int(batch * 2)])
            .append_fact(vec![Value::int(2), Value::int(batch * 2 + 1)]);
        session.commit().unwrap();
        assert_same(
            &ask(&engine, "between compactions"),
            &oracle(&catalog, catalog.snapshots().current()),
            "between compactions",
        );
    }
    let stats = engine.stats();
    assert!(
        stats.ingest.tail_compactions >= 1,
        "8 ingested rows never crossed the 4-row compaction threshold: {:?}",
        stats.ingest
    );
    assert!(stats.columnar.is_some(), "columnar replica active");
    engine.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Snapshot isolation across dimension churn: a query admitted before an
/// upsert that *re-keys* the red dimension must answer from the old dimension
/// version for its whole pass — never a mix — while a query admitted after
/// sees only the new version.
#[test]
fn dimension_upsert_mid_pass_never_mixes_versions() {
    let catalog = warehouse(3_000);
    // Slow each scan batch slightly so the pinned query is reliably still
    // mid-pass when the dimension mutates under it.
    let plan = FaultPlan::seeded(3)
        .delay(FaultSite::ScanWorker, 1_500)
        .build();
    let config = wal_config()
        .with_wal(temp_wal("dim-churn"))
        .with_fault_plan(plan);
    let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();

    let pinned_snapshot = catalog.snapshots().current();
    let expected_pinned = oracle(&catalog, pinned_snapshot);
    let pinned = submit_with_retry(&engine, &red_sum_query(), "pinned query");

    // Re-key "red": key 1 stops being red, key 2 (green's facts) becomes red,
    // and a new fact lands on key 1 — all in one atomic batch.
    let mut session = engine.ingest_session();
    session.upsert_dimension("color", 0, vec![Value::int(1), Value::str("teal")]);
    session.upsert_dimension("color", 0, vec![Value::int(2), Value::str("red")]);
    session.append_fact(vec![Value::int(1), Value::int(500_000)]);
    session.commit().unwrap();

    match wait_bounded(&pinned, "pinned query") {
        Ok(result) => assert_same(
            &result,
            &expected_pinned,
            "pinned query leaked post-upsert dimension state",
        ),
        Err(err) => panic!("pinned query failed: {err}"),
    }

    // A fresh query sees the new world exactly: red is now the old green
    // facts, and the new fact (on the no-longer-red key 1) is excluded.
    let fresh = ask(&engine, "post-upsert query");
    assert_same(
        &fresh,
        &oracle(&catalog, catalog.snapshots().current()),
        "post-upsert query",
    );
    assert_ne!(
        sum_of(&fresh),
        sum_of(&expected_pinned),
        "the re-key must actually change the answer for new queries"
    );
    engine.shutdown();
}
