//! Churn stress test: sustained admission/finalization traffic with interleaved
//! updates, exercising query-id recycling, dimension-table garbage collection,
//! progress reporting and non-blocking result polling under load.
//!
//! This is the workload pattern the paper's always-on design targets: queries keep
//! arriving while others finish, the warehouse keeps growing, and the shared pipeline
//! must never return a stale or partial answer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cjoin_repro::cjoin::dimension::DimensionTable;
use cjoin_repro::cjoin::filter::{apply_filter, FilterChain};
use cjoin_repro::cjoin::tuple::{Batch, InFlightTuple};
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::common::{splitmix64, QueryId, QuerySet};
use cjoin_repro::query::reference;
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};
use cjoin_repro::storage::{Row, RowId, Value};

#[test]
fn sustained_query_churn_with_interleaved_updates_stays_correct() {
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.001, 401));
    let catalog = data.catalog();
    // A small maxConc forces heavy id recycling across the churn.
    let config = CjoinConfig::default()
        .with_worker_threads(2)
        .with_max_concurrency(16)
        .with_batch_size(256);
    let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
    let fact = catalog.fact_table().unwrap();
    let template_row = fact.row(RowId(0)).unwrap();

    // Three waves of queries; between waves the warehouse grows by an update batch.
    // Every query is pinned to the snapshot current at its submission so the expected
    // answer is well defined even though the table keeps growing.
    for wave in 0..3u64 {
        let snapshot = catalog.snapshots().current();
        let workload = Workload::generate(&data, WorkloadConfig::new(10, 0.05, 77 + wave));

        let queries: Vec<_> = workload
            .queries()
            .iter()
            .map(|q| {
                let mut q = q.clone();
                q.snapshot = Some(snapshot);
                q.name = format!("wave{wave}-{}", q.name);
                q
            })
            .collect();

        // Submit the whole wave, then immediately start the next load batch so the
        // updates overlap with the in-flight queries.
        let handles: Vec<_> = queries
            .iter()
            .map(|q| engine.submit(q.clone()).unwrap())
            .collect();

        let load_snapshot = catalog.snapshots().commit();
        fact.insert_batch_unchecked(
            (0..200).map(|_| Row::new(template_row.values().to_vec())),
            load_snapshot,
        );

        for (query, handle) in queries.iter().zip(handles) {
            // Exercise the non-blocking and progress APIs while waiting.
            let progress = Arc::clone(handle.progress());
            let mut polled_result = None;
            for _ in 0..10_000 {
                assert!(progress.fraction() <= 1.0);
                if let Some(result) = handle.try_result() {
                    polled_result = Some(result);
                    break;
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            let result = match polled_result {
                Some(outcome) => outcome.unwrap(),
                None => handle.wait().unwrap(),
            };
            assert!(progress.is_completed());

            let expected = reference::evaluate(&catalog, query, snapshot).unwrap();
            assert!(
                result.approx_eq(&expected),
                "{} diverged under churn: {:?}",
                query.name,
                result.diff(&expected)
            );
        }
    }

    let stats = engine.stats();
    assert_eq!(stats.queries_admitted, 30);
    assert_eq!(stats.queries_completed, 30);
    // Give the manager a moment to finish Algorithm 2 for the last wave, then the
    // pipeline must be fully clean: no registered queries left behind.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while engine.active_queries() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        engine.active_queries(),
        0,
        "all ids recycled after the churn"
    );
    engine.shutdown();
}

/// Probe-under-mutation stress: Filter workers run the batched `probe_batch` hot
/// path while a Pipeline-Manager thread concurrently registers/unregisters queries
/// and the optimizer-style reordering permutes the chain (all from one fixed seed).
///
/// During the churn every surviving tuple must satisfy the filtering invariants
/// (bits only ever shrink, survivors are non-empty, survivor order is stable);
/// after the mutator quiesces, one batch processed under *both* settings of the
/// `batched_probing` knob must exactly match a single-threaded `apply_filter`
/// oracle over the final registered state.
#[test]
fn probe_batch_under_concurrent_registration_matches_oracle() {
    const MAXC: usize = 32;
    const DIMS: usize = 3;
    const KEYS: i64 = 40;
    // Queries 0..3 are permanently registered (they keep the chain populated and
    // tuples alive); ids 4..8 churn throughout the test.
    const STABLE_QUERIES: u32 = 4;
    const CHURN_IDS: std::ops::Range<u32> = 4..8;

    let empty = QuerySet::new(MAXC);
    let chain = Arc::new(FilterChain::new());
    let dims: Vec<Arc<DimensionTable>> = (0..DIMS)
        .map(|j| Arc::new(DimensionTable::new(format!("d{j}"), j, j, 0, MAXC, &empty)))
        .collect();
    let mut seed = 0xC70_2024u64;
    let selected_rows = |rng: &mut u64, j: usize| -> Vec<(i64, Row)> {
        (0..KEYS)
            .filter(|_| splitmix64(rng).is_multiple_of(3))
            .map(|k| (k, Row::new(vec![Value::int(k), Value::int(j as i64)])))
            .collect()
    };
    for (j, dim) in dims.iter().enumerate() {
        for q in 0..STABLE_QUERIES {
            dim.register_query(QueryId(q), &selected_rows(&mut seed, j));
        }
        chain.push(Arc::clone(dim));
    }

    // A template batch relevant to every id the test ever uses.
    let all_bits = QuerySet::from_bits(MAXC, 0..CHURN_IDS.end as usize);
    let template: Batch = (0..256)
        .map(|i| {
            let values: Vec<Value> = (0..DIMS)
                .map(|_| Value::int((splitmix64(&mut seed) % (KEYS as u64 * 2)) as i64))
                .collect();
            InFlightTuple::new(RowId(i), Row::new(values), all_bits.clone(), DIMS)
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let probers: Vec<_> = (0..3)
        .map(|w| {
            let chain = Arc::clone(&chain);
            let template = template.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut passes = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let mut batch = template.clone();
                    let snapshot = chain.snapshot();
                    FilterChain::process_batch(&snapshot, &mut batch, true, true);
                    // Invariants that hold under any interleaving with the manager:
                    // bits only shrink, survivors are non-empty, order is stable.
                    let mut last_row = None;
                    for t in batch.iter() {
                        assert!(!t.bits.is_empty(), "worker {w}: empty survivor");
                        assert!(
                            t.bits.is_subset_of(&template[t.row_id.0 as usize].bits),
                            "worker {w}: bits grew under churn"
                        );
                        if let Some(last) = last_row {
                            assert!(t.row_id.0 > last, "worker {w}: survivor order broke");
                        }
                        last_row = Some(t.row_id.0);
                    }
                    passes += 1;
                }
                passes
            })
        })
        .collect();

    // Manager thread: seeded churn of registrations, unregistrations and reorders.
    let mutator = {
        let chain = Arc::clone(&chain);
        let dims: Vec<Arc<DimensionTable>> = dims.clone();
        std::thread::spawn(move || {
            let mut rng = 0xFEED_5EEDu64;
            let mut registered: Vec<Option<bool>> = vec![None; CHURN_IDS.end as usize];
            for _ in 0..400 {
                let id = CHURN_IDS.start
                    + (splitmix64(&mut rng) % u64::from(CHURN_IDS.end - CHURN_IDS.start)) as u32;
                match registered[id as usize] {
                    None => {
                        // Register: referencing (with per-dim selections) or not.
                        let referencing = splitmix64(&mut rng).is_multiple_of(2);
                        for (j, dim) in dims.iter().enumerate() {
                            if referencing {
                                let rows: Vec<(i64, Row)> = (0..KEYS)
                                    .filter(|_| splitmix64(&mut rng).is_multiple_of(4))
                                    .map(|k| {
                                        (k, Row::new(vec![Value::int(k), Value::int(j as i64)]))
                                    })
                                    .collect();
                                dim.register_query(QueryId(id), &rows);
                            } else {
                                dim.register_unreferencing_query(QueryId(id));
                            }
                        }
                        registered[id as usize] = Some(referencing);
                    }
                    Some(referencing) => {
                        for dim in &dims {
                            dim.unregister_query(QueryId(id), referencing);
                        }
                        registered[id as usize] = None;
                    }
                }
                if splitmix64(&mut rng).is_multiple_of(4) {
                    // Optimizer-style reorder: a seeded permutation of the chain.
                    let mut order: Vec<String> = (0..DIMS).map(|j| format!("d{j}")).collect();
                    for i in (1..order.len()).rev() {
                        order.swap(i, (splitmix64(&mut rng) % (i as u64 + 1)) as usize);
                    }
                    chain.reorder(&order);
                }
                std::thread::yield_now();
            }
            // Quiesce deterministically: unregister every churn id.
            for id in CHURN_IDS {
                if let Some(referencing) = registered[id as usize].take() {
                    for dim in &dims {
                        dim.unregister_query(QueryId(id), referencing);
                    }
                }
            }
        })
    };

    mutator.join().unwrap();
    stop.store(true, Ordering::Release);
    let total_passes: u64 = probers.into_iter().map(|p| p.join().unwrap()).sum();
    assert!(total_passes > 0, "probers made progress during the churn");

    // Post-quiesce determinism: both hot paths against the per-tuple oracle.
    let snapshot = chain.snapshot();
    let oracle: Vec<(u64, Vec<usize>)> = {
        let mut batch = template.clone();
        let live = batch.len();
        let mut out = Vec::new();
        let mut splits = Vec::new();
        for i in 0..live {
            let t = &mut batch[i];
            if snapshot
                .iter()
                .all(|dim| apply_filter(dim, t, true, &mut splits))
            {
                out.push((t.row_id.0, t.bits.iter().collect()));
            }
        }
        // Query churn never creates multiple content versions of a key, so the
        // claimed-split path must stay cold here.
        assert!(splits.is_empty(), "churn produced versioned-key splits");
        out
    };
    assert!(!oracle.is_empty(), "stable queries keep some tuples alive");
    for batched in [true, false] {
        let mut batch = template.clone();
        FilterChain::process_batch(&snapshot, &mut batch, true, batched);
        let got: Vec<(u64, Vec<usize>)> = batch
            .iter()
            .map(|t| (t.row_id.0, t.bits.iter().collect()))
            .collect();
        assert_eq!(got, oracle, "batched={batched} diverges from the oracle");
    }
}
