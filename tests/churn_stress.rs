//! Churn stress test: sustained admission/finalization traffic with interleaved
//! updates, exercising query-id recycling, dimension-table garbage collection,
//! progress reporting and non-blocking result polling under load.
//!
//! This is the workload pattern the paper's always-on design targets: queries keep
//! arriving while others finish, the warehouse keeps growing, and the shared pipeline
//! must never return a stale or partial answer.

use std::sync::Arc;
use std::time::Duration;

use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::query::reference;
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};
use cjoin_repro::storage::{Row, RowId};

#[test]
fn sustained_query_churn_with_interleaved_updates_stays_correct() {
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.001, 401));
    let catalog = data.catalog();
    // A small maxConc forces heavy id recycling across the churn.
    let config = CjoinConfig::default()
        .with_worker_threads(2)
        .with_max_concurrency(16)
        .with_batch_size(256);
    let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
    let fact = catalog.fact_table().unwrap();
    let template_row = fact.row(RowId(0)).unwrap();

    // Three waves of queries; between waves the warehouse grows by an update batch.
    // Every query is pinned to the snapshot current at its submission so the expected
    // answer is well defined even though the table keeps growing.
    for wave in 0..3u64 {
        let snapshot = catalog.snapshots().current();
        let workload = Workload::generate(&data, WorkloadConfig::new(10, 0.05, 77 + wave));

        let queries: Vec<_> = workload
            .queries()
            .iter()
            .map(|q| {
                let mut q = q.clone();
                q.snapshot = Some(snapshot);
                q.name = format!("wave{wave}-{}", q.name);
                q
            })
            .collect();

        // Submit the whole wave, then immediately start the next load batch so the
        // updates overlap with the in-flight queries.
        let handles: Vec<_> = queries
            .iter()
            .map(|q| engine.submit(q.clone()).unwrap())
            .collect();

        let load_snapshot = catalog.snapshots().commit();
        fact.insert_batch_unchecked(
            (0..200).map(|_| Row::new(template_row.values().to_vec())),
            load_snapshot,
        );

        for (query, handle) in queries.iter().zip(handles) {
            // Exercise the non-blocking and progress APIs while waiting.
            let progress = Arc::clone(handle.progress());
            let mut polled_result = None;
            for _ in 0..10_000 {
                assert!(progress.fraction() <= 1.0);
                if let Some(result) = handle.try_result() {
                    polled_result = Some(result);
                    break;
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            let result = match polled_result {
                Some(r) => r,
                None => handle.wait().unwrap(),
            };
            assert!(progress.is_completed());

            let expected = reference::evaluate(&catalog, query, snapshot).unwrap();
            assert!(
                result.approx_eq(&expected),
                "{} diverged under churn: {:?}",
                query.name,
                result.diff(&expected)
            );
        }
    }

    let stats = engine.stats();
    assert_eq!(stats.queries_admitted, 30);
    assert_eq!(stats.queries_completed, 30);
    // Give the manager a moment to finish Algorithm 2 for the last wave, then the
    // pipeline must be fully clean: no registered queries left behind.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while engine.active_queries() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        engine.active_queries(),
        0,
        "all ids recycled after the churn"
    );
    engine.shutdown();
}
