//! Galaxy-schema integration tests (§5 "Galaxy Schemata"): fact-to-fact join queries
//! decomposed into star sub-queries over two CJOIN pipelines must produce exactly the
//! answers of an independent nested hash-join oracle, including when several galaxy
//! queries and plain star queries share the pipelines concurrently.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cjoin_repro::cjoin::CjoinConfig;
use cjoin_repro::galaxy::{
    reference, GalaxyAggregateSpec, GalaxyEngine, GalaxyQuery, Side, SideSpec,
};
use cjoin_repro::query::{AggFunc, AggregateSpec, ColumnRef, Predicate, StarQuery};
use cjoin_repro::storage::{Catalog, Column, Row, Schema, SnapshotId, Table, Value};

const REGIONS: [&str; 4] = ["ASIA", "EUROPE", "AMERICA", "AFRICA"];
const CHANNELS: [&str; 3] = ["web", "store", "phone"];

/// A randomized two-fact galaxy: `purchases` and `support_calls` share `customer` and
/// `channel` dimensions and join on the customer key.
fn random_galaxy(seed: u64, purchases_rows: usize, calls_rows: usize) -> Arc<Catalog> {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = Catalog::new();

    let num_customers = 60i64;
    let customer = Table::new(Schema::new(
        "customer",
        vec![Column::int("c_custkey"), Column::str("c_region")],
    ));
    for k in 0..num_customers {
        let region = REGIONS[rng.gen_range(0..REGIONS.len())];
        customer
            .insert(vec![Value::int(k), Value::str(region)], SnapshotId::INITIAL)
            .unwrap();
    }
    catalog.add_table(Arc::new(customer));

    let channel = Table::new(Schema::new(
        "channel",
        vec![Column::int("ch_key"), Column::str("ch_name")],
    ));
    for (k, name) in CHANNELS.iter().enumerate() {
        channel
            .insert(
                vec![Value::int(k as i64), Value::str(*name)],
                SnapshotId::INITIAL,
            )
            .unwrap();
    }
    catalog.add_table(Arc::new(channel));

    let purchases = Table::new(Schema::new(
        "purchases",
        vec![
            Column::int("p_custkey"),
            Column::int("p_chkey"),
            Column::int("p_amount"),
            Column::int("p_day"),
        ],
    ));
    purchases.insert_batch_unchecked(
        (0..purchases_rows).map(|_| {
            Row::new(vec![
                Value::int(rng.gen_range(0..num_customers)),
                Value::int(rng.gen_range(0..CHANNELS.len() as i64)),
                Value::int(rng.gen_range(1..500)),
                Value::int(rng.gen_range(1..366)),
            ])
        }),
        SnapshotId::INITIAL,
    );
    catalog.add_table(Arc::new(purchases));

    let calls = Table::new(Schema::new(
        "support_calls",
        vec![
            Column::int("sc_custkey"),
            Column::int("sc_chkey"),
            Column::int("sc_minutes"),
        ],
    ));
    calls.insert_batch_unchecked(
        (0..calls_rows).map(|_| {
            Row::new(vec![
                // Slightly different customer range so some customers never call.
                Value::int(rng.gen_range(0..num_customers + 10)),
                Value::int(rng.gen_range(0..CHANNELS.len() as i64)),
                Value::int(rng.gen_range(1..90)),
            ])
        }),
        SnapshotId::INITIAL,
    );
    catalog.add_table(Arc::new(calls));

    Arc::new(catalog)
}

fn config() -> CjoinConfig {
    CjoinConfig::default()
        .with_worker_threads(2)
        .with_max_concurrency(32)
        .with_batch_size(256)
}

/// A pool of structurally different galaxy queries over the random schema.
fn query_pool(seed: u64) -> Vec<GalaxyQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::new();
    for i in 0..8 {
        let region = REGIONS[rng.gen_range(0..REGIONS.len())];
        let channel = CHANNELS[rng.gen_range(0..CHANNELS.len())];
        let day_lo = rng.gen_range(1..200);
        let day_hi = day_lo + rng.gen_range(30..160);

        let side_a = SideSpec::new("purchases", "p_custkey")
            .fact_predicate(Predicate::between("p_day", day_lo, day_hi))
            .join_dimension(
                "customer",
                "p_custkey",
                "c_custkey",
                Predicate::eq("c_region", region),
            );
        let side_b = if i % 2 == 0 {
            SideSpec::new("support_calls", "sc_custkey").join_dimension(
                "channel",
                "sc_chkey",
                "ch_key",
                Predicate::eq("ch_name", channel),
            )
        } else {
            SideSpec::new("support_calls", "sc_custkey")
        };

        let mut builder = GalaxyQuery::builder(format!("g{i}"))
            .side_a(side_a)
            .side_b(side_b)
            .aggregate(GalaxyAggregateSpec::count_star())
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Sum,
                Side::A,
                ColumnRef::fact("p_amount"),
            ))
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Avg,
                Side::B,
                ColumnRef::fact("sc_minutes"),
            ))
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Max,
                Side::B,
                ColumnRef::fact("sc_minutes"),
            ))
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Min,
                Side::A,
                ColumnRef::fact("p_amount"),
            ));
        if i % 3 == 0 {
            builder = builder.group_by(Side::A, ColumnRef::dim("customer", "c_region"));
        }
        if i % 2 == 0 {
            builder = builder.group_by(Side::B, ColumnRef::dim("channel", "ch_name"));
        }
        queries.push(builder.build());
    }
    queries
}

#[test]
fn concurrent_galaxy_queries_match_the_oracle() {
    let catalog = random_galaxy(7, 4_000, 2_500);
    let engine =
        GalaxyEngine::start(Arc::clone(&catalog), "purchases", "support_calls", config()).unwrap();

    let queries = query_pool(11);
    let expected: Vec<_> = queries
        .iter()
        .map(|q| reference::evaluate(&catalog, q, SnapshotId::INITIAL).unwrap())
        .collect();

    // Submit everything before waiting so the star sub-queries genuinely share the
    // two always-on pipelines.
    let handles: Vec<_> = queries
        .iter()
        .map(|q| engine.submit(q.clone()).unwrap())
        .collect();
    for ((query, handle), expected) in queries.iter().zip(handles).zip(expected) {
        let result = handle.wait().unwrap();
        assert!(
            result.approx_eq(&expected),
            "{}: {:?}",
            query.name,
            result.diff(&expected)
        );
    }

    // Each pipeline served all eight galaxy sub-queries.
    assert_eq!(engine.engine(Side::A).stats().queries_admitted, 8);
    assert_eq!(engine.engine(Side::B).stats().queries_admitted, 8);
    engine.shutdown();
}

#[test]
fn galaxy_and_star_queries_share_the_same_pipelines() {
    let catalog = random_galaxy(23, 3_000, 2_000);
    let engine =
        GalaxyEngine::start(Arc::clone(&catalog), "purchases", "support_calls", config()).unwrap();

    let galaxy_query = query_pool(29).remove(0);
    let star_a = StarQuery::builder("purchases_by_region")
        .join_dimension("customer", "p_custkey", "c_custkey", Predicate::True)
        .group_by(ColumnRef::dim("customer", "c_region"))
        .aggregate(AggregateSpec::over(
            AggFunc::Sum,
            ColumnRef::fact("p_amount"),
        ))
        .build();
    let star_b = StarQuery::builder("calls_by_channel")
        .join_dimension("channel", "sc_chkey", "ch_key", Predicate::True)
        .group_by(ColumnRef::dim("channel", "ch_name"))
        .aggregate(AggregateSpec::over(
            AggFunc::Avg,
            ColumnRef::fact("sc_minutes"),
        ))
        .aggregate(AggregateSpec::count_star())
        .build();

    let expected_galaxy =
        reference::evaluate(&catalog, &galaxy_query, SnapshotId::INITIAL).unwrap();
    let expected_a = cjoin_repro::query::reference::evaluate(
        engine.engine(Side::A).catalog(),
        &star_a,
        SnapshotId::INITIAL,
    )
    .unwrap();
    let expected_b = cjoin_repro::query::reference::evaluate(
        engine.engine(Side::B).catalog(),
        &star_b,
        SnapshotId::INITIAL,
    )
    .unwrap();

    let galaxy_handle = engine.submit(galaxy_query).unwrap();
    let star_a_handle = engine.engine(Side::A).submit(star_a).unwrap();
    let star_b_handle = engine.engine(Side::B).submit(star_b).unwrap();

    assert!(galaxy_handle.wait().unwrap().approx_eq(&expected_galaxy));
    assert!(star_a_handle.wait().unwrap().approx_eq(&expected_a));
    assert!(star_b_handle.wait().unwrap().approx_eq(&expected_b));
    engine.shutdown();
}

#[test]
fn galaxy_queries_respect_snapshot_isolation() {
    let catalog = random_galaxy(41, 1_500, 1_000);
    let engine =
        GalaxyEngine::start(Arc::clone(&catalog), "purchases", "support_calls", config()).unwrap();
    let query = query_pool(43).remove(1);

    // Result pinned to the initial snapshot.
    let mut pinned = query.clone();
    pinned.snapshot = Some(SnapshotId::INITIAL);
    let before_insert = engine.execute(pinned.clone()).unwrap();

    // Commit new purchases rows at a later snapshot.
    let later = catalog.snapshots().commit();
    let purchases = catalog.table("purchases").unwrap();
    purchases.insert_batch_unchecked(
        (0..500).map(|i| {
            Row::new(vec![
                Value::int(i % 60),
                Value::int(i % 3),
                Value::int(100),
                Value::int(50),
            ])
        }),
        later,
    );

    // Re-running the pinned query still matches the initial-snapshot oracle exactly.
    let after_insert = engine.execute(pinned.clone()).unwrap();
    let expected_initial = reference::evaluate(&catalog, &pinned, SnapshotId::INITIAL).unwrap();
    assert!(before_insert.approx_eq(&expected_initial));
    assert!(after_insert.approx_eq(&expected_initial));

    // An unpinned query sees the new snapshot and matches its oracle too.
    let mut latest = query;
    latest.snapshot = Some(later);
    let expected_latest = reference::evaluate(&catalog, &latest, SnapshotId::INITIAL).unwrap();
    let result_latest = engine.execute(latest).unwrap();
    assert!(result_latest.approx_eq(&expected_latest));
    engine.shutdown();
}

#[test]
fn resubmission_recycles_ids_across_both_pipelines() {
    let catalog = random_galaxy(53, 1_200, 900);
    let tight = CjoinConfig::default()
        .with_worker_threads(1)
        .with_max_concurrency(4)
        .with_batch_size(128);
    let engine =
        GalaxyEngine::start(Arc::clone(&catalog), "purchases", "support_calls", tight).unwrap();

    // More sequential galaxy queries than maxConc on either side: ids must recycle.
    let queries = query_pool(59);
    for round in 0..2 {
        for query in &queries {
            let expected = reference::evaluate(&catalog, query, SnapshotId::INITIAL).unwrap();
            let result = engine.execute(query.clone()).unwrap();
            assert!(
                result.approx_eq(&expected),
                "round {round}, {}: {:?}",
                query.name,
                result.diff(&expected)
            );
        }
    }
    engine.shutdown();
}
