//! Oracle-backed tests for the compressed columnar scan front-end
//! (`CjoinConfig::columnar_scan`).
//!
//! Four suites pin down the in-pipeline columnar path:
//!
//! 1. **Zone-map skip oracle** — an independently computed per-group min/max
//!    over the raw fact rows predicts *exactly* how many rows a clustered range
//!    query must skip via zone maps; the engine's `rows_predicate_skipped`
//!    counter must match it row for row over a single scan pass.
//! 2. **Per-run predicate evaluation** — on a run-length-encoded column, the
//!    kernel answers whole runs with one probe, so `predicate_rows /
//!    predicate_probes` must be far above 1 (the row path's implicit ratio).
//! 3. **Late materialization** — only the columns the active query's predicate
//!    and aggregates touch may accrue bytes; every other fact column must stay
//!    at zero, and the per-column bills must sum to the total scan volume.
//! 4. **Mid-scan admission, exactly once** — full-table COUNT/SUM probes
//!    admitted while background churn keeps all four segment cursors busy must
//!    equal the reference exactly: a duplicated row-group row inflates the
//!    aggregate, a zone-map-skipped visible row deflates it.

use std::sync::Arc;

use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::query::reference;
use cjoin_repro::ssb::{SsbConfig, SsbDataSet, Workload, WorkloadConfig};
use cjoin_repro::storage::{Catalog, Column, Row, Schema, Table, Value, DEFAULT_ROW_GROUP_ROWS};
use cjoin_repro::{AggFunc, AggregateSpec, ColumnRef, Predicate, SnapshotId, StarQuery};

fn config(scan_workers: usize) -> CjoinConfig {
    CjoinConfig::default()
        .with_worker_threads(2)
        .with_max_concurrency(32)
        .with_batch_size(256)
        .with_scan_workers(scan_workers)
        .with_columnar_scan(true)
}

#[test]
fn zone_map_skipping_matches_the_min_max_oracle_exactly() {
    // Cluster the fact table by lo_orderdate so row groups have tight date
    // ranges — the setup under which zone maps earn their keep.
    let data = SsbDataSet::generate(SsbConfig {
        cluster_by_orderdate: true,
        ..SsbConfig::for_tests(0.005, 601)
    });
    let catalog = data.catalog();
    let fact = catalog.fact_table().unwrap();

    let (lo, hi) = (19_930_101i64, 19_931_231i64);
    let query = StarQuery::builder("year93")
        .fact_predicate(Predicate::between("lo_orderdate", lo, hi))
        .aggregate(AggregateSpec::count_star())
        .aggregate(AggregateSpec::over(
            AggFunc::Sum,
            ColumnRef::fact("lo_revenue"),
        ))
        .build();
    let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();

    // Independent oracle: per DEFAULT_ROW_GROUP_ROWS-row group, the min/max of
    // lo_orderdate over the raw rows decides skippability; every row of a
    // disjoint group must be skipped, every other row must be scanned.
    let date_col = fact.schema().column_index("lo_orderdate").unwrap();
    let mut dates = Vec::with_capacity(fact.len());
    fact.for_each_visible(SnapshotId(u64::MAX), |_, row| {
        dates.push(row.int(date_col));
    });
    let expected_skipped: u64 = dates
        .chunks(DEFAULT_ROW_GROUP_ROWS)
        .map(|group| {
            let min = *group.iter().min().unwrap();
            let max = *group.iter().max().unwrap();
            if max < lo || min > hi {
                group.len() as u64
            } else {
                0
            }
        })
        .sum();
    assert!(
        expected_skipped > 0,
        "test setup must produce skippable groups"
    );

    // A fresh engine idles at scan position 0 until the query is admitted and
    // stops scanning once it finalizes, so the counters cover exactly one pass.
    let engine = CjoinEngine::start(Arc::clone(&catalog), config(1)).unwrap();
    let result = engine.execute(query).unwrap();
    assert!(result.approx_eq(&expected), "{:?}", result.diff(&expected));

    let columnar = engine.stats().columnar.expect("columnar stats present");
    assert_eq!(
        columnar.rows_predicate_skipped, expected_skipped,
        "zone-map skipping must match the min/max oracle row for row"
    );
    assert!(columnar.row_groups_skipped > 0);
    assert_eq!(
        columnar.rows_scanned + columnar.rows_predicate_skipped,
        fact.len() as u64,
        "scanned and skipped rows partition the single pass"
    );
    engine.shutdown();
}

#[test]
fn rle_predicates_evaluate_per_run_not_per_row() {
    // A fact column with 256-row runs: adaptive compression picks RLE, and the
    // encoded kernel must answer each run with a single probe.
    let catalog = Catalog::new();
    let fact = Table::new(Schema::new(
        "events",
        vec![Column::int("grp"), Column::int("rev")],
    ));
    fact.insert_batch_unchecked(
        (0..16_384i64).map(|i| Row::new(vec![Value::int(i / 256), Value::int(i % 97)])),
        SnapshotId::INITIAL,
    );
    catalog.add_fact_table(Arc::new(fact));
    let catalog = Arc::new(catalog);

    // 22..=41 straddles run values mid-group, so some groups are Maybe (probed
    // per run), some Always (no probes) and some Never (skipped outright).
    let query = StarQuery::builder("grp_range")
        .fact_predicate(Predicate::between("grp", 22, 41))
        .aggregate(AggregateSpec::count_star())
        .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("rev")))
        .build();
    let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();

    let engine = CjoinEngine::start(Arc::clone(&catalog), config(1)).unwrap();
    let result = engine.execute(query).unwrap();
    assert!(result.approx_eq(&expected), "{:?}", result.diff(&expected));

    let columnar = engine.stats().columnar.expect("columnar stats present");
    assert!(columnar.row_groups_skipped > 0, "Never groups are skipped");
    assert!(columnar.predicate_probes > 0, "Maybe groups are probed");
    assert!(
        columnar.rows_per_probe() > 32.0,
        "one probe must cover a whole RLE run, got {} rows/probe",
        columnar.rows_per_probe()
    );
    engine.shutdown();
}

#[test]
fn late_materialization_touches_only_the_needed_columns() {
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.002, 603));
    let catalog = data.catalog();
    let fact = catalog.fact_table().unwrap();
    let schema = fact.schema();

    let query = StarQuery::builder("narrow")
        .fact_predicate(Predicate::between("lo_orderdate", 19_940_101, 19_941_231))
        .aggregate(AggregateSpec::count_star())
        .aggregate(AggregateSpec::over(
            AggFunc::Sum,
            ColumnRef::fact("lo_revenue"),
        ))
        .build();
    let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();

    let engine = CjoinEngine::start(Arc::clone(&catalog), config(1)).unwrap();
    let result = engine.execute(query).unwrap();
    assert!(result.approx_eq(&expected), "{:?}", result.diff(&expected));

    let columnar = engine.stats().columnar.expect("columnar stats present");
    let needed = [
        schema.column_index("lo_orderdate").unwrap(),
        schema.column_index("lo_revenue").unwrap(),
    ];
    for (col, &bytes) in columnar.column_bytes.iter().enumerate() {
        if needed.contains(&col) {
            assert!(bytes > 0, "needed column {col} must be read");
        } else {
            assert_eq!(
                bytes,
                0,
                "column {col} ({}) is not needed by the query and must never be decoded",
                schema.column(col).name
            );
        }
    }
    assert_eq!(
        columnar.column_bytes.iter().sum::<u64>(),
        columnar.bytes_scanned,
        "per-column bills sum to the total scan volume"
    );
    engine.shutdown();
}

#[test]
fn mid_scan_admission_is_exactly_once_across_columnar_segments() {
    let data = SsbDataSet::generate(SsbConfig::for_tests(0.001, 604));
    let catalog = data.catalog();
    let engine = CjoinEngine::start(Arc::clone(&catalog), config(4)).unwrap();

    // Background churn keeps every segment cursor mid-pass while the probes
    // are admitted, so query-start boundaries land in the middle of row groups
    // and zone-map decisions interleave with per-query admission state.
    let background = Workload::generate(&data, WorkloadConfig::new(12, 0.05, 605));
    let mut in_flight = std::collections::VecDeque::new();
    let mut background_iter = background.queries().iter();
    for query in background_iter.by_ref().take(4) {
        in_flight.push_back(engine.submit(query.clone()).unwrap());
    }

    let mut probe_handles = Vec::new();
    let mut expected = Vec::new();
    for round in 0..6 {
        let probe = StarQuery::builder(format!("probe{round}"))
            .aggregate(AggregateSpec::count_star())
            .aggregate(AggregateSpec::over(
                AggFunc::Sum,
                ColumnRef::fact("lo_revenue"),
            ))
            .build();
        expected.push(reference::evaluate(&catalog, &probe, SnapshotId::INITIAL).unwrap());
        probe_handles.push(engine.submit(probe).unwrap());
        if let Some(handle) = in_flight.pop_front() {
            handle.wait().unwrap();
        }
        if let Some(query) = background_iter.next() {
            in_flight.push_back(engine.submit(query.clone()).unwrap());
        }
    }

    for (round, (handle, expected)) in probe_handles.into_iter().zip(expected).enumerate() {
        let result = handle.wait().unwrap();
        assert!(
            result.approx_eq(&expected),
            "probe {round} did not see every fact row exactly once: {:?}",
            result.diff(&expected)
        );
    }
    for handle in in_flight {
        handle.wait().unwrap();
    }
    engine.shutdown();
}
