//! Protocol-hardening and admission-policy tests for `cjoin-server`.
//!
//! The contract under test: whatever bytes arrive — seeded random garbage,
//! torn writes, hostile lengths — the server never panics and, wherever a
//! response is still possible, answers a *typed* protocol error while staying
//! fully serviceable. On top of that, per-tenant admission is observable:
//! shed-vs-queue decisions, backpressure queueing, deadline sheds at the front
//! door, and wire-level cancellation.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine, FaultPlan, FaultSite};
use cjoin_repro::client::RemoteEngine;
use cjoin_repro::query::wire::{
    read_frame, write_frame, AdmissionPolicy, ProtocolErrorKind, Request, Response, MAX_FRAME_LEN,
};
use cjoin_repro::query::{reference, JoinEngine, QueryError};
use cjoin_repro::server::{CjoinServer, ServerConfig};
use cjoin_repro::ssb::{SsbConfig, SsbDataSet};
use cjoin_repro::{AggregateSpec, SnapshotId, StarQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_data(seed: u64) -> SsbDataSet {
    SsbDataSet::generate(SsbConfig::for_tests(0.0005, seed))
}

fn cjoin_config() -> CjoinConfig {
    CjoinConfig::default()
        .with_worker_threads(2)
        .with_max_concurrency(32)
        .with_batch_size(256)
}

fn count_star(name: &str) -> StarQuery {
    StarQuery::builder(name)
        .aggregate(AggregateSpec::count_star())
        .build()
}

fn read_response(stream: &mut TcpStream) -> Response {
    let payload = read_frame(stream)
        .expect("reading server response")
        .expect("server closed instead of answering");
    Response::decode(&payload).expect("server response decodes")
}

#[test]
fn malformed_frames_answer_typed_errors_and_the_server_survives() {
    let data = small_data(91);
    let catalog = data.catalog();
    let engine: Arc<dyn JoinEngine> =
        Arc::new(CjoinEngine::start(Arc::clone(&catalog), cjoin_config()).unwrap());
    let server = CjoinServer::start(engine, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // (a) Seeded random payloads, all on one connection: every frame gets a
    // typed protocol error and the connection stays usable.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC101);
    for round in 0..200 {
        let len = rng.gen_range(0usize..64);
        let mut payload = vec![0u8; len];
        for byte in payload.iter_mut() {
            *byte = rng.gen_range(0u64..256) as u8;
        }
        // Keep the fuzz on the malformed path: a random first byte that hits a
        // real request tag could legitimately parse (or shut the server down).
        if let Some(first) = payload.first_mut() {
            if (0x01..=0x06).contains(first) {
                *first = 0xAA;
            }
        }
        write_frame(&mut stream, &payload).unwrap();
        let response = read_response(&mut stream);
        assert!(
            matches!(response, Response::Protocol { .. }),
            "round {round}: expected a typed protocol error, got {response:?}"
        );
    }
    // Same connection, real request: still answered.
    write_frame(&mut stream, &Request::Stats.encode()).unwrap();
    assert!(matches!(read_response(&mut stream), Response::Stats(_)));

    // (b) Torn writes: cut a valid submit frame at hostile offsets (mid-header,
    // exactly after the header, mid-payload) and hang up. The server must shrug
    // each one off.
    let submit = Request::Submit {
        tenant: "torn".into(),
        policy: AdmissionPolicy::Shed,
        query: Box::new(count_star("torn")),
    }
    .encode();
    let mut framed = (submit.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&submit);
    for cut in [1usize, 3, 4, 5, framed.len() - 1] {
        let mut torn = TcpStream::connect(addr).unwrap();
        torn.write_all(&framed[..cut]).unwrap();
        drop(torn);
    }

    // (c) A declared length over the frame cap: answered with a typed
    // FrameTooLarge, then the connection is closed (no way to resynchronize).
    let mut oversize = TcpStream::connect(addr).unwrap();
    oversize
        .write_all(&(MAX_FRAME_LEN + 1).to_le_bytes())
        .unwrap();
    match read_response(&mut oversize) {
        Response::Protocol { kind, .. } => assert_eq!(kind, ProtocolErrorKind::FrameTooLarge),
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    assert!(
        read_frame(&mut oversize).unwrap().is_none(),
        "server closes the connection after an oversized frame"
    );

    // (d) After all the abuse, a real query still round-trips correctly.
    let client = RemoteEngine::connect(addr).unwrap().with_tenant("sanity");
    let query = count_star("after_abuse");
    let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();
    let got = client.execute(&query).unwrap();
    assert!(got.approx_eq(&expected), "{:?}", got.diff(&expected));

    server.shutdown();
}

#[test]
fn per_tenant_cap_sheds_or_queues_by_policy() {
    let data = small_data(92);
    let catalog = data.catalog();
    let engine: Arc<dyn JoinEngine> =
        Arc::new(CjoinEngine::start(Arc::clone(&catalog), cjoin_config()).unwrap());
    let server = CjoinServer::start(
        engine,
        ServerConfig::default()
            .with_tenant_inflight_cap(1)
            .with_tenant_queue_cap(1)
            .with_poll_interval(Duration::from_millis(5)),
    )
    .unwrap();
    let addr = server.local_addr();

    // Fill the tenant's single in-flight slot (submitted, not yet waited).
    let shed_client = RemoteEngine::connect(addr)
        .unwrap()
        .with_tenant("acme")
        .with_policy(AdmissionPolicy::Shed);
    let first = shed_client.submit(count_star("first")).unwrap();

    // Shed policy at the cap: immediate typed refusal.
    let refused = shed_client.submit(count_star("refused")).unwrap();
    match refused.wait() {
        Err(QueryError::Engine(e)) => {
            assert!(e.to_string().contains("in-flight cap"), "{e}");
        }
        other => panic!("expected a cap shed, got {other:?}"),
    }

    // Queue policy at the cap: the submission parks as backpressure and is
    // admitted once the slot frees.
    let queue_client = RemoteEngine::connect(addr)
        .unwrap()
        .with_tenant("acme")
        .with_policy(AdmissionPolicy::Queue);
    let queued = thread::spawn(move || queue_client.execute(&count_star("queued")));
    thread::sleep(Duration::from_millis(150));
    let mid = server.stats();
    let acme = mid.tenants.iter().find(|t| t.tenant == "acme").unwrap();
    assert_eq!(acme.in_flight, 1, "first submission still holds the slot");
    assert_eq!(acme.queued, 1, "queued submission is parked");
    assert_eq!(acme.shed_at_cap, 1, "shed-policy refusal was counted");

    // A second queued submission overflows the size-1 queue and sheds.
    let overflow_client = RemoteEngine::connect(addr)
        .unwrap()
        .with_tenant("acme")
        .with_policy(AdmissionPolicy::Queue);
    let overflow = overflow_client.submit(count_star("overflow")).unwrap();
    match overflow.wait() {
        Err(QueryError::Engine(e)) => {
            assert!(e.to_string().contains("queue is full"), "{e}");
        }
        other => panic!("expected a queue-overflow shed, got {other:?}"),
    }

    // Deliver the first outcome; the parked submission gets the slot and runs.
    assert!(first.wait().is_ok());
    assert!(queued.join().unwrap().is_ok());

    let end = server.stats();
    let acme = end.tenants.iter().find(|t| t.tenant == "acme").unwrap();
    assert_eq!(acme.admitted, 2);
    assert_eq!(acme.completed, 2);
    assert_eq!(acme.queued, 1);
    assert_eq!(acme.shed_at_cap, 2);
    assert_eq!(acme.in_flight, 0);

    server.shutdown();
}

#[test]
fn unreachable_deadline_is_shed_at_the_front_door() {
    let data = small_data(93);
    let catalog = data.catalog();
    let engine: Arc<dyn JoinEngine> =
        Arc::new(CjoinEngine::start(Arc::clone(&catalog), cjoin_config()).unwrap());
    let server = CjoinServer::start(Arc::clone(&engine), ServerConfig::default()).unwrap();
    let client = RemoteEngine::connect(server.local_addr())
        .unwrap()
        .with_tenant("deadline");

    // Warm the engine's ETA model: one completed query records a full pass.
    client.execute(&count_star("warm")).unwrap();
    let quote = engine.quote_eta().expect("pass time recorded after warmup");

    // A deadline below any honest quote is shed at admission, server-side.
    let doomed = StarQuery::builder("doomed")
        .aggregate(AggregateSpec::count_star())
        .deadline(Duration::from_nanos(1))
        .build();
    match client.submit(doomed).unwrap().wait() {
        Err(QueryError::ShedAtAdmission {
            deadline,
            estimated,
        }) => {
            assert_eq!(deadline, Duration::from_nanos(1));
            assert!(estimated >= quote.min(estimated));
        }
        other => panic!("expected ShedAtAdmission, got {other:?}"),
    }

    // A comfortable deadline sails through and completes.
    let relaxed = StarQuery::builder("relaxed")
        .aggregate(AggregateSpec::count_star())
        .deadline(quote + Duration::from_secs(5))
        .build();
    assert!(client.submit(relaxed).unwrap().wait().is_ok());

    let stats = server.stats();
    let tenant = stats
        .tenants
        .iter()
        .find(|t| t.tenant == "deadline")
        .unwrap();
    assert_eq!(tenant.shed_deadline, 1);
    assert_eq!(tenant.completed, 2);

    server.shutdown();
}

#[test]
fn cancel_over_the_wire_resolves_to_cancelled() {
    let data = small_data(94);
    let catalog = data.catalog();
    // Slow the scan down so cancellation deterministically beats completion.
    let config = cjoin_config().with_fault_plan(
        FaultPlan::seeded(7)
            .delay(FaultSite::ScanWorker, 50_000)
            .build(),
    );
    let engine: Arc<dyn JoinEngine> =
        Arc::new(CjoinEngine::start(Arc::clone(&catalog), config).unwrap());
    let server = CjoinServer::start(engine, ServerConfig::default()).unwrap();
    let client = RemoteEngine::connect(server.local_addr())
        .unwrap()
        .with_tenant("cancel");

    let ticket = client.submit(count_star("slow")).unwrap();
    ticket.cancel();
    match ticket.wait() {
        Err(QueryError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }

    server.shutdown();
}

/// Ingestion over the wire: the receipt arrives only after the batch is
/// durable and visible server-side, so a query on the same client immediately
/// observes it — and a schema-invalid batch is refused with nothing applied.
#[test]
fn ingest_over_the_wire_is_durable_visible_and_atomic() {
    use cjoin_repro::query::{DimUpsert, IngestBatch};
    use cjoin_repro::storage::{Column, Schema, Table, Value};
    use cjoin_repro::Catalog;

    let catalog = Arc::new(Catalog::new());
    let dim = Table::new(Schema::new(
        "region",
        vec![Column::int("k"), Column::str("name")],
    ));
    dim.insert(vec![Value::int(1), Value::str("EU")], SnapshotId::INITIAL)
        .unwrap();
    catalog.add_table(Arc::new(dim));
    let fact = Table::new(Schema::new(
        "orders",
        vec![Column::int("fk"), Column::int("amount")],
    ));
    for i in 0..10 {
        fact.insert(vec![Value::int(1), Value::int(i)], SnapshotId::INITIAL)
            .unwrap();
    }
    catalog.add_fact_table(Arc::new(fact));

    let mut wal = std::env::temp_dir();
    wal.push(format!("cjoin-served-ingest-{}", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    let engine: Arc<dyn JoinEngine> =
        Arc::new(CjoinEngine::start(Arc::clone(&catalog), cjoin_config().with_wal(&wal)).unwrap());
    let server = CjoinServer::start(engine, ServerConfig::default()).unwrap();
    let client = RemoteEngine::connect(server.local_addr())
        .unwrap()
        .with_tenant("feed");

    let count = |name: &str| {
        let result = client.execute(&count_star(name)).unwrap();
        let value = result.rows().next().unwrap().1[0].clone();
        value
    };
    let before = count("before_ingest");

    let receipt = client
        .ingest(IngestBatch {
            facts: vec![
                vec![Value::int(1), Value::int(100)],
                vec![Value::int(2), Value::int(200)],
            ],
            dim_upserts: vec![DimUpsert {
                table: "region".into(),
                key_column: 0,
                row: vec![Value::int(2), Value::str("APAC")],
            }],
            dim_deletes: vec![],
        })
        .unwrap();
    assert!(receipt.epoch > 0 && receipt.records >= 2 && receipt.wal_bytes > 0);

    // The receipt means durable *and* visible: the very next query sees both
    // fact rows.
    assert_eq!(
        count("after_ingest"),
        cjoin_repro::query::AggValue::Int(12),
        "served count must include the ingested rows (was {before:?} before)"
    );

    // A schema-invalid batch (wrong arity) is a typed refusal with nothing
    // applied — atomic over the wire too.
    let err = client
        .ingest(IngestBatch {
            facts: vec![vec![Value::int(1)]],
            dim_upserts: vec![],
            dim_deletes: vec![],
        })
        .unwrap_err();
    assert!(!err.to_string().is_empty());
    assert_eq!(
        count("after_refused"),
        cjoin_repro::query::AggValue::Int(12)
    );

    server.shutdown();
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn shutdown_request_stops_admission_and_joins_cleanly() {
    let data = small_data(95);
    let catalog = data.catalog();
    let engine: Arc<dyn JoinEngine> =
        Arc::new(CjoinEngine::start(Arc::clone(&catalog), cjoin_config()).unwrap());
    let server = CjoinServer::start(
        engine,
        ServerConfig::default().with_poll_interval(Duration::from_millis(5)),
    )
    .unwrap();
    let addr = server.local_addr();

    let client = RemoteEngine::connect(addr).unwrap();
    client.execute(&count_star("before")).unwrap();

    // Client-initiated shutdown: acknowledged, then the front door closes.
    client.shutdown();
    thread::sleep(Duration::from_millis(50));
    assert!(
        RemoteEngine::connect(addr).is_err(),
        "new sessions must be refused after a shutdown request"
    );

    // Owner-side shutdown is idempotent and joins every thread (a hang here
    // fails the test by timeout).
    server.shutdown();
    server.shutdown();
}
