//! The central correctness oracle: for generated SSB workloads, every query answered
//! by the shared CJOIN pipeline must produce exactly the same result as (a) the
//! query-at-a-time baseline engine and (b) the single-threaded reference evaluator.
//!
//! This is the cross-engine equivalent of the paper's implicit claim that CJOIN is a
//! drop-in physical operator: sharing changes performance, never answers.
//!
//! Both engines are driven exclusively through the shared [`JoinEngine`] trait —
//! the oracle harness does not know which engine it is talking to, so any future
//! engine plugs into the same assertions.

use std::sync::Arc;

use cjoin_repro::baseline::{BaselineConfig, BaselineEngine};
use cjoin_repro::cjoin::{CjoinConfig, CjoinEngine};
use cjoin_repro::query::{reference, JoinEngine};
use cjoin_repro::ssb::{classic_queries, SsbConfig, SsbDataSet, Workload, WorkloadConfig};
use cjoin_repro::{SnapshotId, StarQuery};

fn data(sf: f64, seed: u64) -> SsbDataSet {
    SsbDataSet::generate(SsbConfig::for_tests(sf, seed))
}

fn cjoin_config() -> CjoinConfig {
    CjoinConfig::default()
        .with_worker_threads(3)
        .with_max_concurrency(64)
        .with_batch_size(512)
}

/// Runs `queries` through all evaluation paths and asserts agreement. The engines
/// are consumed only as `&dyn JoinEngine`; the shared CJOIN pipeline is exercised
/// under **both** settings of the `batched_probing` hot-path knob.
fn assert_all_engines_agree(data: &SsbDataSet, queries: &[StarQuery]) {
    let catalog = data.catalog();
    let baseline = BaselineEngine::new(Arc::clone(&catalog), BaselineConfig::default());
    let oracle: &dyn JoinEngine = &baseline;

    // The reference and baseline answers do not depend on the CJOIN hot-path knob:
    // compute them once per query, then compare both CJOIN arms against them.
    let expected: Vec<_> = queries
        .iter()
        .map(|q| {
            let reference = reference::evaluate(&catalog, q, SnapshotId::INITIAL).unwrap();
            let baseline_result = oracle.execute(q).unwrap();
            assert!(
                baseline_result.approx_eq(&reference),
                "{}: baseline vs reference: {:?}",
                q.name,
                baseline_result.diff(&reference)
            );
            reference
        })
        .collect();

    for batched_probing in [true, false] {
        let cjoin = CjoinEngine::start(
            Arc::clone(&catalog),
            cjoin_config().with_batched_probing(batched_probing),
        )
        .unwrap();
        let shared: &dyn JoinEngine = &cjoin;

        // Submit everything to CJOIN first so the queries genuinely share the pipeline.
        let tickets: Vec<_> = queries
            .iter()
            .map(|q| shared.submit(q.clone()).unwrap())
            .collect();

        for ((query, expected), ticket) in queries.iter().zip(&expected).zip(tickets) {
            let cjoin_result = ticket.wait().unwrap();
            assert!(
                cjoin_result.approx_eq(expected),
                "{} (batched_probing={batched_probing}): cjoin vs reference: {:?}",
                query.name,
                cjoin_result.diff(expected)
            );
        }
        shared.shutdown();
    }
}

#[test]
fn classic_ssb_queries_agree_across_engines() {
    let data = data(0.002, 101);
    assert_all_engines_agree(&data, &classic_queries());
}

#[test]
fn generated_workload_agrees_across_engines() {
    let data = data(0.002, 102);
    let workload = Workload::generate(&data, WorkloadConfig::new(24, 0.03, 55));
    assert_all_engines_agree(&data, workload.queries());
}

#[test]
fn high_selectivity_workload_agrees_across_engines() {
    // 20 % selectivity loads many more dimension tuples into the shared hash tables.
    let data = data(0.002, 103);
    let workload = Workload::generate(&data, WorkloadConfig::new(12, 0.20, 56));
    assert_all_engines_agree(&data, workload.queries());
}

#[test]
fn single_template_workload_agrees_across_engines() {
    let data = data(0.002, 104);
    let workload = Workload::generate(
        &data,
        WorkloadConfig::new(16, 0.05, 57).with_template("Q4.2"),
    );
    assert_all_engines_agree(&data, workload.queries());
}

#[test]
fn sequential_resubmission_reuses_ids_and_stays_correct() {
    // Run the same workload twice through one engine instance: query-id recycling,
    // dimension-table garbage collection and re-admission must not corrupt results.
    let data = data(0.001, 105);
    let catalog = data.catalog();
    let workload = Workload::generate(&data, WorkloadConfig::new(8, 0.05, 58));
    let cjoin = CjoinEngine::start(Arc::clone(&catalog), cjoin_config()).unwrap();
    let engine: &dyn JoinEngine = &cjoin;

    for round in 0..2 {
        for query in workload.queries() {
            let expected = reference::evaluate(&catalog, query, SnapshotId::INITIAL).unwrap();
            let result = engine.execute(query).unwrap();
            assert!(
                result.approx_eq(&expected),
                "round {round}, {}: {:?}",
                query.name,
                result.diff(&expected)
            );
        }
    }
    assert_eq!(engine.stats().queries_completed, 16);
    engine.shutdown();
}

#[test]
fn queries_arriving_mid_scan_get_complete_answers() {
    // Stagger submissions so later queries latch onto a scan that is already moving;
    // each must still see exactly one full pass (§3.3.1).
    let data = data(0.002, 106);
    let catalog = data.catalog();
    let workload = Workload::generate(&data, WorkloadConfig::new(10, 0.05, 59));
    let cjoin = CjoinEngine::start(Arc::clone(&catalog), cjoin_config()).unwrap();
    let engine: &dyn JoinEngine = &cjoin;

    let mut tickets = Vec::new();
    for (i, query) in workload.queries().iter().enumerate() {
        tickets.push(engine.submit(query.clone()).unwrap());
        if i % 3 == 0 {
            // Give the scan time to advance so admissions land mid-pass.
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    for (query, ticket) in workload.queries().iter().zip(tickets) {
        let expected = reference::evaluate(&catalog, query, SnapshotId::INITIAL).unwrap();
        let result = ticket.wait().unwrap();
        assert!(
            result.approx_eq(&expected),
            "{}: {:?}",
            query.name,
            result.diff(&expected)
        );
    }
    engine.shutdown();
}
